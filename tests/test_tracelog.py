"""Tests for packet-level trace capture and persistence."""

import pytest

from repro.experiments.tracelog import (
    KNOWN_EVENTS,
    TraceRecorder,
    read_jsonl,
    summarize,
    write_jsonl,
)
from repro.ndn.name import Name
from repro.ndn.packets import Interest

from tests.conftest import attach_client, build_mini_net


@pytest.fixture
def captured_run():
    net = build_mini_net()
    recorder = TraceRecorder(net.sim)
    client = attach_client(net, "alice")
    client.start(at=0.0, until=2.0)
    net.run(until=4.0)
    recorder.stop()
    return net, recorder


class TestRecorder:
    def test_captures_all_packet_kinds(self, captured_run):
        net, recorder = captured_run
        summary = summarize(recorder.records)
        assert summary.by_event.get("node.rx.interest", 0) > 0
        assert summary.by_event.get("node.rx.data", 0) > 0

    def test_records_are_time_ordered(self, captured_run):
        net, recorder = captured_run
        times = [r.time for r in recorder.records]
        assert times == sorted(times)

    def test_filter_by_node(self, captured_run):
        net, recorder = captured_run
        edge_records = recorder.filter(node="edge-0")
        assert edge_records
        assert all(r.payload["node"] == "edge-0" for r in edge_records)

    def test_filter_by_event(self, captured_run):
        net, recorder = captured_run
        data_records = recorder.filter(name="node.rx.data")
        assert all(r.name == "node.rx.data" for r in data_records)

    def test_stop_detaches(self):
        net = build_mini_net()
        recorder = TraceRecorder(net.sim)
        recorder.stop()
        net.sim.schedule(
            0.0,
            net.core1.receive,
            Interest(name=Name("/prov-0/obj-0/chunk-0")),
            net.core1.faces[0],
        )
        net.run(until=1.0)
        assert len(recorder) == 0

    def test_limit_counts_overflow(self):
        net = build_mini_net()
        recorder = TraceRecorder(net.sim, limit=5)
        client = attach_client(net, "alice")
        client.start(at=0.0, until=1.0)
        net.run(until=2.0)
        recorder.stop()
        assert len(recorder) == 5
        assert recorder.dropped > 0

    def test_selective_events(self):
        net = build_mini_net()
        recorder = TraceRecorder(net.sim, events=("node.rx.nack",))
        client = attach_client(net, "alice")
        client.start(at=0.0, until=1.0)
        net.run(until=2.0)
        recorder.stop()
        assert all(r.name == "node.rx.nack" for r in recorder.records)

    def test_drop_events_emitted(self):
        net = build_mini_net()
        for link in net.network.links:
            link.queue_bytes = 1500
        recorder = TraceRecorder(net.sim, events=("link.drop",))
        client = attach_client(net, "alice")
        client.start(at=0.0, until=3.0)
        net.run(until=4.0)
        recorder.stop()
        assert net.network.total_drops() == len(recorder)


class TestPersistence:
    def test_jsonl_roundtrip(self, captured_run, tmp_path):
        net, recorder = captured_run
        path = tmp_path / "trace.jsonl"
        written = write_jsonl(recorder.records, str(path))
        loaded = read_jsonl(str(path))
        assert written == len(loaded) == len(recorder)
        assert loaded[0].name == recorder.records[0].name
        assert loaded[0].time == recorder.records[0].time
        assert loaded[0].payload == recorder.records[0].payload

    def test_summary_fields(self, captured_run):
        net, recorder = captured_run
        summary = summarize(recorder.records)
        assert summary.total == len(recorder)
        assert summary.first_time <= summary.last_time
        assert summary.rate() > 0
        assert sum(summary.by_event.values()) == summary.total

    def test_empty_summary(self):
        summary = summarize([])
        assert summary.total == 0
        assert summary.rate() == 0.0


class TestOverheadWhenDisabled:
    def test_no_subscribers_means_no_records(self):
        # TraceHub.emit early-outs when nothing listens; a run without a
        # recorder behaves identically (checked via event counts).
        net1 = build_mini_net()
        client1 = attach_client(net1, "alice")
        client1.start(at=0.0, until=1.0)
        net1.run(until=2.0)

        net2 = build_mini_net()
        recorder = TraceRecorder(net2.sim)
        client2 = attach_client(net2, "alice")
        client2.start(at=0.0, until=1.0)
        net2.run(until=2.0)
        recorder.stop()

        assert net1.sim.events_executed == net2.sim.events_executed
        assert KNOWN_EVENTS  # sanity: the constant stays non-empty


class TestNewSubstrateEvents:
    """The tx/aggregation/cache/timeout events added to the catalog."""

    def _linear(self, *node_ids):
        from repro.ndn.network import Network
        from repro.ndn.node import Node
        from repro.sim.engine import Simulator

        sim = Simulator(seed=1)
        net = Network(sim)
        nodes = [net.add_node(Node(sim, nid)) for nid in node_ids]
        for a, b in zip(nodes, nodes[1:]):
            net.connect(a, b, bandwidth_bps=500e6, latency=0.001)
        return sim, net, nodes

    def test_tx_events_mirror_rx_events(self):
        from repro.ndn.packets import Data
        from repro.ndn.name import Name as N

        sim, net, (a, b, c) = self._linear("a", "b", "c")
        net.announce_prefix("/prov", c)
        c.cs.insert(Data(name=N("/prov/1"), payload=b"p"))
        recorder = TraceRecorder(sim)
        sim.schedule(0.0, a.faces[0].send, Interest(name=N("/prov/1")))
        sim.run()
        recorder.stop()
        summary = summarize(recorder.records)
        assert summary.by_event["node.tx.interest"] > 0
        assert summary.by_event["node.tx.data"] > 0
        assert summary.by_event["cs.hit"] == 1  # served at c

    def test_pit_aggregate_event(self):
        from repro.ndn.name import Name as N

        sim, net, (x, y, z) = self._linear("x", "y", "z")
        net.announce_prefix("/prov", z)
        recorder = TraceRecorder(sim)
        for nonce in (101, 102):
            sim.schedule(
                0.0, y.receive, Interest(name=N("/prov/1"), nonce=nonce),
                y.face_toward(x),
            )
        sim.run()
        recorder.stop()
        aggregates = recorder.filter(name="pit.aggregate")
        assert len(aggregates) == 1
        assert aggregates[0].payload["node"] == "y"
        assert aggregates[0].payload["nonce"] == 102

    def test_pit_timeout_event(self):
        from repro.ndn.name import Name as N

        sim, net, (x, y, z) = self._linear("x", "y", "z")
        net.announce_prefix("/prov", z)  # z never answers
        recorder = TraceRecorder(sim)
        sim.schedule(
            0.0, y.receive, Interest(name=N("/prov/1"), nonce=7),
            y.face_toward(x),
        )
        sim.run()
        sim.schedule(10.0, lambda: None)  # advance past entry lifetime
        sim.run()
        y.pit.purge_expired(sim.now)
        recorder.stop()
        timeouts = recorder.filter(name="pit.timeout")
        assert len(timeouts) == 1
        assert timeouts[0].payload["node"] == "y"
        assert timeouts[0].payload["records"] == 1
