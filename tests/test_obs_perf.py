"""The perf observatory: nestable phase accounting, the observed engine
loop, zero-behaviour-change guarantees, flamegraph sampling, fleet
merges, and the benchmark diff CLI."""

from __future__ import annotations

import json

import pytest

from repro.exec import ExperimentEngine, ScenarioSpec
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.obs.history import RunHistory, diff_entries
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import (
    PERF_PHASES,
    PerfObservatory,
    compare_reports,
    main as perf_main,
    merge_perf_reports,
)
from repro.obs.profiler import (
    SimProfiler,
    StackSampler,
    merge_collapsed,
    write_collapsed,
)
from repro.obs.session import TelemetryConfig, set_default_telemetry
from repro.qa.simsan import SimSan
from repro.sim.engine import Simulator


class FakeClock:
    """Deterministic clock: each read advances by ``tick``."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        value = self.now
        self.now += self.tick
        return value


def _tiny_scenario(seed=2):
    return Scenario.paper_topology(1, duration=2.0, seed=seed, scale=0.1)


# ---------------------------------------------------------------------------
# Phase arithmetic (fake clock, exact numbers)
# ---------------------------------------------------------------------------
class TestPhaseAccounting:
    def test_flat_phase_self_equals_cum(self):
        perf = PerfObservatory(clock=FakeClock())
        with perf.phase("ndn.pit"):
            pass
        # push reads t=0, pop reads t=1 -> elapsed 1.0
        assert perf.calls == {"ndn.pit": 1}
        assert perf.self_seconds["ndn.pit"] == pytest.approx(1.0)
        assert perf.cum_seconds["ndn.pit"] == pytest.approx(1.0)

    def test_nested_phase_debits_parent_self(self):
        perf = PerfObservatory(clock=FakeClock())
        # outer: push@0 ... inner push@1, pop@2 ... outer pop@3.
        with perf.phase("engine.dispatch"):
            with perf.phase("filters.bloom"):
                pass
        assert perf.cum_seconds["engine.dispatch"] == pytest.approx(3.0)
        assert perf.cum_seconds["filters.bloom"] == pytest.approx(1.0)
        # Outer self = 3 - 1 (child elapsed); selves partition the wall.
        assert perf.self_seconds["engine.dispatch"] == pytest.approx(2.0)
        assert perf.self_seconds["filters.bloom"] == pytest.approx(1.0)

    def test_account_is_leaf_and_debits_parent(self):
        perf = PerfObservatory(clock=FakeClock())
        with perf.phase("engine.dispatch"):  # push@0 ... pop@1
            perf.account("engine.push", 0.25)
        assert perf.self_seconds["engine.push"] == pytest.approx(0.25)
        assert perf.cum_seconds["engine.push"] == pytest.approx(0.25)
        assert perf.self_seconds["engine.dispatch"] == pytest.approx(0.75)
        assert perf.cum_seconds["engine.dispatch"] == pytest.approx(1.0)

    def test_handler_attribution_on_pop(self):
        perf = PerfObservatory(clock=FakeClock())

        def deliver():
            pass

        perf._push("engine.dispatch")
        elapsed = perf._pop(handler=deliver)
        assert elapsed == pytest.approx(1.0)
        key = deliver.__qualname__
        assert perf.handler_calls[key] == 1
        assert perf.handler_seconds[key] == pytest.approx(1.0)

    def test_timeline_snapshots_every_interval(self):
        perf = PerfObservatory(clock=FakeClock(), timeline_interval=2)
        for virtual in (0.5, 1.0, 1.5, 2.0):
            perf.note_event(virtual)
        assert [entry[0] for entry in perf.timeline] == [1.0, 2.0]
        assert [entry[1] for entry in perf.timeline] == [2, 4]

    def test_report_shares_sum_to_one(self):
        perf = PerfObservatory(clock=FakeClock())
        with perf.phase("engine.dispatch"):
            with perf.phase("ndn.cs"):
                pass
        perf.account("engine.push", 0.5)
        report = perf.report()
        shares = [row["self_share"] for row in report["phases"].values()]
        assert sum(shares) == pytest.approx(1.0)
        assert set(report["phases"]) <= set(PERF_PHASES)

    def test_phase_handles_are_cached(self):
        perf = PerfObservatory()
        assert perf.phase("ndn.pit") is perf.phase("ndn.pit")


# ---------------------------------------------------------------------------
# The observed engine loop
# ---------------------------------------------------------------------------
class TestObservedLoop:
    def _sim_with_work(self, perf=None, events=10):
        sim = Simulator(seed=1)
        if perf is not None:
            sim.perf = perf
        log = []
        for index in range(events):
            sim.schedule_at(float(index), log.append, index)
        return sim, log

    def test_observed_run_charges_engine_phases(self):
        perf = PerfObservatory()
        sim, log = self._sim_with_work(perf=perf)
        perf.start()
        sim.run()
        perf.stop()
        assert log == list(range(10))
        assert perf.events == 10
        assert perf.calls["engine.loop"] == 1
        assert perf.calls["engine.pop"] == 10
        assert perf.calls["engine.dispatch"] == 10
        assert perf.calls["engine.push"] == 10  # setup-time schedules
        assert perf.handler_calls.get("list.append") == 10

    def test_observed_run_skips_cancelled(self):
        perf = PerfObservatory()
        sim, log = self._sim_with_work(perf=perf, events=5)
        victim = sim.schedule_at(2.5, log.append, 99)
        sim.cancel(victim)
        sim.run()
        assert log == list(range(5))
        assert perf.events == 5
        # The cancelled skip still pays a heap pop.
        assert perf.calls["engine.pop"] == 6

    def test_observed_until_matches_plain_run(self):
        plain_sim, plain_log = self._sim_with_work()
        plain_sim.run(until=4.5)
        perf = PerfObservatory()
        obs_sim, obs_log = self._sim_with_work(perf=perf)
        obs_sim.run(until=4.5)
        assert obs_log == plain_log
        assert obs_sim.events_executed == plain_sim.events_executed
        assert obs_sim.now == plain_sim.now
        assert perf.events == plain_sim.events_executed

    def test_observed_composes_with_sanitizer_digest(self):
        reference = SimSan(mode="collect")
        sim, _ = self._sim_with_work()
        reference.install(sim)
        sim.run()

        observed = SimSan(mode="collect")
        perf = PerfObservatory()
        sim2, _ = self._sim_with_work(perf=perf)
        observed.install(sim2)
        sim2.run()

        assert observed.stream_digest() == reference.stream_digest()
        assert perf.events == 10

    def test_observed_composes_with_profiler(self):
        perf = PerfObservatory()
        profiler = SimProfiler()
        sim, _ = self._sim_with_work(perf=perf)
        sim.profiler = profiler
        sim.run()
        assert profiler.calls.get("list.append") == 10
        assert perf.handler_calls.get("list.append") == 10

    def test_trace_emit_charged_when_subscribed(self):
        perf = PerfObservatory()
        sim = Simulator(seed=1)
        sim.perf = perf
        sim.trace.perf = perf
        seen = []
        sim.trace.subscribe("tick", lambda record: seen.append(record.time))
        sim.schedule_at(1.0, lambda: sim.trace.emit("tick", sim.now))
        sim.run()
        assert seen == [1.0]
        assert perf.calls.get("trace.emit") == 1

    def test_step_observed_matches_run_phases(self):
        def run_all(step):
            perf = PerfObservatory()
            sim, log = self._sim_with_work(perf=perf, events=6)
            victim = sim.schedule_at(2.25, log.append, 99)
            sim.cancel(victim)
            sim.schedule_at(1.5, lambda: sim.schedule(0.1, log.append, -1))
            if step:
                while sim.step():
                    pass
            else:
                sim.run()
            return perf, log

        run_perf, run_log = run_all(step=False)
        step_perf, step_log = run_all(step=True)
        assert step_log == run_log
        assert step_perf.events == run_perf.events
        assert step_perf.handler_calls == run_perf.handler_calls
        # step() has no loop envelope — the only permitted difference.
        run_calls = dict(run_perf.calls)
        assert run_calls.pop("engine.loop") == 1
        assert "engine.loop" not in step_perf.calls
        assert step_perf.calls == run_calls


# ---------------------------------------------------------------------------
# Install / uninstall across the hot-path surface
# ---------------------------------------------------------------------------
class TestInstallation:
    def test_install_reaches_components_and_uninstall_detaches(self):
        result = run_scenario(_tiny_scenario())
        perf = PerfObservatory()
        perf.install(result.sim, network=result.network)
        assert result.sim.perf is perf
        assert result.sim.trace.perf is perf
        nodes = list(result.network.nodes.values())
        touched = 0
        for node in nodes:
            for attr in ("pit", "cs", "bloom", "cost_model"):
                component = getattr(node, attr, None)
                if component is not None and hasattr(component, "perf"):
                    assert component.perf is perf
                    touched += 1
        assert touched > 0
        for link in result.network.links:
            assert link.perf is perf
        perf.uninstall()
        assert result.sim.perf is None
        assert result.sim.trace.perf is None
        for link in result.network.links:
            assert link.perf is None

    def test_uninstall_never_clobbers_a_successor(self):
        sim = Simulator(seed=1)
        first = PerfObservatory()
        first.install(sim)
        second = PerfObservatory()
        second.install(sim)
        first.uninstall()  # stale: sim.perf now belongs to `second`
        assert sim.perf is second


# ---------------------------------------------------------------------------
# Zero behaviour change: figure quantities bit-identical with perf on
# ---------------------------------------------------------------------------
class TestZeroBehaviourChange:
    def test_metrics_identical_with_observatory_on(self):
        plain = run_scenario(_tiny_scenario())
        perf = PerfObservatory(timeline_interval=500)
        observed = run_scenario(_tiny_scenario(), perf=perf)

        assert observed.to_summary().metrics_dict() == \
            plain.to_summary().metrics_dict()
        assert observed.sim.events_executed == plain.sim.events_executed
        assert perf.events == plain.sim.events_executed
        # Component phases actually fired on the real workload.
        # (trace.emit is absent here: with no trace subscribers the hub
        # early-returns before the perf guard — delivery costs nothing,
        # so nothing is charged.)
        for name in ("ndn.pit", "ndn.cs", "filters.bloom", "crypto.cost"):
            assert perf.calls.get(name, 0) > 0, name
        # After the run the runner detached everything.
        assert observed.sim.perf is None

    def test_run_scenario_report_covers_the_loop(self):
        perf = PerfObservatory()
        run_scenario(_tiny_scenario(), perf=perf)
        report = perf.report()
        assert report["phase_coverage"] >= 0.9
        assert report["events"] > 0
        assert report["events_per_second"] > 0


# ---------------------------------------------------------------------------
# Fleet merging
# ---------------------------------------------------------------------------
class TestMerging:
    def _report(self, events=10, wall=2.0, self_s=1.0):
        return {
            "events": events,
            "wall_seconds": wall,
            "phases": {
                "engine.dispatch": {
                    "calls": events,
                    "self_seconds": self_s,
                    "cum_seconds": self_s,
                }
            },
            "handlers": [
                {"handler": "list.append", "calls": events, "seconds": self_s}
            ],
            "timeline": [[0.5, events, {}]],
        }

    def test_merge_sums_and_recomputes(self):
        into = {}
        merge_perf_reports(into, self._report(events=10, wall=2.0, self_s=1.0))
        merge_perf_reports(into, self._report(events=30, wall=2.0, self_s=2.0))
        assert into["events"] == 40
        assert into["wall_seconds"] == pytest.approx(4.0)
        assert into["events_per_second"] == pytest.approx(10.0)
        dispatch = into["phases"]["engine.dispatch"]
        assert dispatch["calls"] == 40
        assert dispatch["self_seconds"] == pytest.approx(3.0)
        assert dispatch["self_share"] == pytest.approx(1.0)
        assert into["phase_coverage"] == pytest.approx(0.75)
        assert into["handlers"]["list.append"]["calls"] == 40
        assert "timeline" not in into  # per-run, dropped on merge


# ---------------------------------------------------------------------------
# Stack sampling / flamegraphs
# ---------------------------------------------------------------------------
class TestStackSampler:
    def test_samples_own_thread_and_writes_collapsed(self, tmp_path):
        sampler = StackSampler(interval=0.001)
        sampler.start()
        deadline = 200_000
        total = 0
        while total < deadline or sampler.samples == 0:
            total += 1
            if total > 50_000_000:  # pragma: no cover - CI safety valve
                break
        sampler.stop()
        assert sampler.samples > 0
        assert sampler.collapsed
        for stack, count in sampler.collapsed.items():
            assert ";" in stack or "." in stack
            assert count >= 1
        out = tmp_path / "flame.txt"
        sampler.write_collapsed(str(out))
        lines = out.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) >= 1
        report = sampler.report()
        assert report["samples"] == sampler.samples
        assert report["stacks"] == sampler.collapsed

    def test_merge_collapsed_sums_counts(self):
        into = {"a;b": 2}
        merge_collapsed(into, {"a;b": 3, "c": 1})
        assert into == {"a;b": 5, "c": 1}

    def test_write_collapsed_module_fn_sorted(self, tmp_path):
        out = tmp_path / "flame.txt"
        write_collapsed(str(out), {"b;c": 1, "a;b": 2})
        assert out.read_text() == "a;b 2\nb;c 1\n"


# ---------------------------------------------------------------------------
# Benchmark diffing: compare_reports + CLI exit codes
# ---------------------------------------------------------------------------
class TestBenchmarkDiff:
    BASE = {
        "events_per_sec": 100_000.0,
        "phases": {"engine.dispatch": {"self_seconds": 1.0}},
    }

    def test_clean_within_tolerance(self):
        cand = dict(self.BASE, events_per_sec=95_000.0)
        problems, lines = compare_reports(self.BASE, cand, tolerance_pct=10.0)
        assert problems == []
        assert any("events/sec" in line for line in lines)

    def test_regression_beyond_tolerance(self):
        cand = dict(self.BASE, events_per_sec=50_000.0)
        problems, _ = compare_reports(self.BASE, cand, tolerance_pct=10.0)
        assert problems and "regressed" in problems[0]

    def test_improvement_is_clean(self):
        cand = dict(self.BASE, events_per_sec=200_000.0)
        problems, _ = compare_reports(self.BASE, cand, tolerance_pct=10.0)
        assert problems == []

    def test_accepts_raw_report_key(self):
        cand = {"events_per_second": 99_000.0, "phases": {}}
        problems, _ = compare_reports(self.BASE, cand, tolerance_pct=10.0)
        assert problems == []

    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_cli_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path / "a.json", self.BASE)
        good = self._write(
            tmp_path / "b.json", dict(self.BASE, events_per_sec=101_000.0)
        )
        bad = self._write(
            tmp_path / "c.json", dict(self.BASE, events_per_sec=10_000.0)
        )
        assert perf_main(["report", base, good]) == 0
        assert perf_main(["report", base, bad]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        # Wide tolerance lets the same pair pass.
        assert perf_main(["report", base, bad, "--tolerance", "95"]) == 0
        assert perf_main(["report", base, str(tmp_path / "missing.json")]) == 2


# ---------------------------------------------------------------------------
# History gate: append_benchmark + diff
# ---------------------------------------------------------------------------
class TestHistoryGate:
    def test_benchmark_entries_pair_and_gate(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append_benchmark(
            "simcore", label="paper-topo1",
            metrics={"events_per_sec": 100_000.0}, wall_seconds=1.0,
            timestamp=1.0,
        )
        history.append_benchmark(
            "simcore", label="paper-topo1",
            metrics={"events_per_sec": 99_000.0}, wall_seconds=1.0,
            timestamp=2.0,
        )
        entries = history.entries(figure="simcore")
        assert len(entries) == 2
        spec = entries[0]["specs"][0]
        assert spec["scheme"] == "benchmark"
        assert spec["fingerprint"] == entries[1]["specs"][0]["fingerprint"]
        assert diff_entries(entries[0], entries[1], rel_tol=0.05) == []
        problems = diff_entries(entries[0], entries[1], rel_tol=0.001)
        assert problems and "events_per_sec" in problems[0]


# ---------------------------------------------------------------------------
# Telemetry envelope + fleet round trip
# ---------------------------------------------------------------------------
class TestTelemetryEnvelope:
    def test_collect_mode_run_carries_perf_report(self):
        config = TelemetryConfig(collect=True, perf=True)
        result = run_scenario(_tiny_scenario(), telemetry=config)
        record = result.telemetry.record
        assert record["perf"] is not None
        assert record["perf"]["events"] == result.sim.events_executed
        assert record["perf"]["phases"]

    def test_collect_mode_flame_rides_envelope(self):
        config = TelemetryConfig(collect=True, flame=True, flame_interval=0.001)
        result = run_scenario(_tiny_scenario(), telemetry=config)
        flame = result.telemetry.record["flame"]
        assert flame is not None
        assert flame["samples"] >= 0
        assert isinstance(flame["stacks"], dict)

    def test_engine_merges_fleet_perf(self):
        set_default_telemetry(TelemetryConfig(collect=True, perf=True))
        try:
            engine = ExperimentEngine(
                registry=MetricsRegistry(), use_cache=False, jobs=1
            )
            specs = [
                ScenarioSpec.make(seed=seed, topology=1, duration=2.0, scale=0.1)
                for seed in (1, 2)
            ]
            summaries = engine.run_specs(specs)
        finally:
            set_default_telemetry(None)
        assert len(summaries) == 2
        assert engine.fleet_perf
        total = sum(
            summary.telemetry["perf"]["events"] for summary in summaries
        )
        assert engine.fleet_perf["events"] == total
        assert engine.fleet_perf["phases"]["engine.dispatch"]["calls"] > 0
