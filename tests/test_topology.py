"""Unit tests for topology plans and Table III presets."""

import networkx as nx
import pytest

from repro.topology import (
    PAPER_TOPOLOGIES,
    generate_scale_free_plan,
    paper_topology_plan,
)
from repro.topology.scale_free import (
    CORE_BANDWIDTH_BPS,
    CORE_LATENCY_S,
    EDGE_BANDWIDTH_BPS,
    EDGE_LATENCY_S,
)


class TestPresets:
    def test_table3_counts(self):
        expected = {
            1: (80, 20, 10, 35, 15),
            2: (180, 20, 10, 71, 29),
            3: (370, 30, 10, 143, 57),
            4: (560, 40, 10, 213, 87),
        }
        for index, (core, edge, prov, clients, attackers) in expected.items():
            preset = PAPER_TOPOLOGIES[index]
            assert preset.num_core == core
            assert preset.num_edge == edge
            assert preset.num_providers == prov
            assert preset.num_clients == clients
            assert preset.num_attackers == attackers

    def test_attackers_are_roughly_one_third(self):
        for preset in PAPER_TOPOLOGIES.values():
            total = preset.num_clients + preset.num_attackers
            assert 0.25 <= preset.num_attackers / total <= 0.40

    def test_plan_generation_matches_preset(self):
        plan = paper_topology_plan(1, seed=0)
        preset = PAPER_TOPOLOGIES[1]
        assert len(plan.core_ids) == preset.num_core
        assert len(plan.edge_ids) == preset.num_edge
        assert len(plan.provider_ids) == preset.num_providers
        assert len(plan.client_ids) == preset.num_clients
        assert len(plan.attacker_ids) == preset.num_attackers

    def test_unknown_index_rejected(self):
        with pytest.raises(KeyError):
            paper_topology_plan(9)

    def test_scaled_preset(self):
        scaled = PAPER_TOPOLOGIES[1].scaled(0.5)
        assert scaled.num_core == 40
        assert scaled.num_clients == 18
        tiny = PAPER_TOPOLOGIES[1].scaled(0.001)
        assert tiny.num_core >= 3 and tiny.num_clients >= 1


class TestPlanGeneration:
    def test_deterministic(self):
        a = generate_scale_free_plan(20, 4, 2, 8, 4, seed=7)
        b = generate_scale_free_plan(20, 4, 2, 8, 4, seed=7)
        assert a.links == b.links
        assert a.user_ap == b.user_ap

    def test_seed_changes_plan(self):
        a = generate_scale_free_plan(20, 4, 2, 8, 4, seed=1)
        b = generate_scale_free_plan(20, 4, 2, 8, 4, seed=2)
        assert a.links != b.links

    def test_connected(self):
        plan = generate_scale_free_plan(30, 5, 3, 10, 5, seed=3)
        graph = nx.Graph()
        for link in plan.links:
            graph.add_edge(link.a, link.b)
        assert nx.is_connected(graph)

    def test_link_parameters(self):
        plan = generate_scale_free_plan(20, 4, 2, 8, 4, seed=0)
        for link in plan.links:
            if link.kind == "core":
                assert link.bandwidth_bps == CORE_BANDWIDTH_BPS
                assert link.latency == CORE_LATENCY_S
            else:
                assert link.bandwidth_bps == EDGE_BANDWIDTH_BPS
                assert link.latency == EDGE_LATENCY_S

    def test_every_user_attached(self):
        plan = generate_scale_free_plan(20, 4, 2, 8, 4, seed=0)
        for user in plan.user_ids:
            ap = plan.user_ap[user]
            assert ap in plan.ap_ids
            assert plan.ap_edge[ap] in plan.edge_ids
            assert plan.edge_of_user(user) in plan.edge_ids

    def test_providers_anchor_at_core(self):
        plan = generate_scale_free_plan(20, 4, 2, 8, 4, seed=0)
        for provider, anchor in plan.provider_core.items():
            assert anchor in plan.core_ids

    def test_providers_prefer_hubs(self):
        plan = generate_scale_free_plan(50, 4, 1, 8, 4, seed=5)
        graph = nx.Graph()
        for link in plan.links:
            if link.a.startswith("core") and link.b.startswith("core"):
                graph.add_edge(link.a, link.b)
        anchor = plan.provider_core["prov-0"]
        degrees = dict(graph.degree)
        assert degrees[anchor] == max(degrees.values())

    def test_scale_free_degree_distribution(self):
        # A BA graph must have hubs: max degree well above the median.
        plan = generate_scale_free_plan(200, 4, 2, 8, 4, seed=1)
        graph = nx.Graph()
        for link in plan.links:
            if link.kind == "core" and link.a.startswith("core") and link.b.startswith("core"):
                graph.add_edge(link.a, link.b)
        degrees = sorted(d for _, d in graph.degree)
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_scale_free_plan(2, 1, 1, 1, 1, seed=0)
        with pytest.raises(ValueError):
            generate_scale_free_plan(10, 0, 1, 1, 1, seed=0)

    def test_validation_catches_orphan(self):
        plan = generate_scale_free_plan(20, 4, 2, 8, 4, seed=0)
        plan.client_ids.append("client-orphan")
        with pytest.raises(ValueError):
            plan.validate()
