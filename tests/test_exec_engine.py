"""The repro.exec engine: spec canonicalisation, summary round-trips,
serial/parallel equivalence, and the content-addressed run cache."""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.exec import (
    ExperimentEngine,
    RunCache,
    RunSummary,
    ScenarioSpec,
    cache_key,
    canonical_value,
    resolve_jobs,
    run_specs,
)
from repro.exec.engine import _execute_spec
from repro.obs.metrics import MetricsRegistry

#: Small enough for CI, large enough that every figure quantity is
#: non-trivial (clients request, attackers probe, filters fill).
FAST = dict(topology=1, duration=2.0, scale=0.1)


def fast_spec(seed=1, **kwargs):
    params = dict(FAST)
    params.update(kwargs)
    return ScenarioSpec.make(seed=seed, **params)


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------
class TestScenarioSpec:
    def test_canonical_is_json_stable(self):
        spec = fast_spec(overrides=dict(tag_expiry=5.0, bf_capacity=8))
        blob = json.dumps(spec.canonical(), sort_keys=True)
        again = json.dumps(fast_spec(
            overrides=dict(bf_capacity=8, tag_expiry=5.0)
        ).canonical(), sort_keys=True)
        assert blob == again  # override order must not matter

    def test_different_specs_differ(self):
        assert fast_spec(seed=1).canonical() != fast_spec(seed=2).canonical()

    def test_pickle_round_trip(self):
        spec = fast_spec(overrides=dict(tag_expiry=5.0), hash_events=True)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_with_overrides_merges(self):
        spec = fast_spec(overrides=dict(tag_expiry=5.0))
        widened = spec.with_overrides(bf_capacity=8)
        assert dict(widened.overrides) == {"tag_expiry": 5.0, "bf_capacity": 8}
        assert dict(spec.overrides) == {"tag_expiry": 5.0}

    def test_build_applies_overrides(self):
        scenario = fast_spec(overrides=dict(tag_expiry=7.5)).build()
        assert scenario.config.tag_expiry == 7.5
        assert scenario.config.seed == 1

    def test_canonical_value_handles_nested(self):
        assert canonical_value({"b": (1, 2), "a": 1}) == {"a": 1, "b": [1, 2]}


# ---------------------------------------------------------------------------
# RunSummary
# ---------------------------------------------------------------------------
class TestRunSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return _execute_spec(fast_spec(hash_events=True))

    def test_json_round_trip_is_exact(self, summary):
        restored = RunSummary.from_json_dict(
            json.loads(json.dumps(summary.to_json_dict()))
        )
        assert restored == summary
        assert restored.metrics_dict() == summary.metrics_dict()

    def test_accessors_mirror_run_result(self, summary):
        from repro.experiments.runner import run_scenario

        result = run_scenario(fast_spec().build())
        assert summary.client_delivery_ratio() == result.client_delivery_ratio()
        assert summary.tag_rates() == result.tag_rates()
        assert summary.mean_latency() == result.mean_latency()
        assert summary.latency_series(1.0) == result.latency_series(1.0)
        assert summary.operation_counts(edge=True) == result.operation_counts(edge=True)
        assert summary.reset_threshold(edge=False) == result.reset_threshold(edge=False)
        assert summary.delivery_table_row() == result.delivery_table_row()

    def test_to_summary_on_run_result(self):
        from repro.experiments.runner import run_scenario

        result = run_scenario(fast_spec().build())
        assert result.to_summary() == _execute_spec(fast_spec())

    def test_provenance_excluded_from_equality(self, summary):
        twin = RunSummary.from_json_dict(summary.to_json_dict())
        twin.wall_seconds = 99.0
        twin.cached = True
        twin.worker_pid = 1
        assert twin == summary
        assert "wall_seconds" not in twin.metrics_dict()

    def test_wrong_latency_bucket_rejected(self, summary):
        with pytest.raises(ValueError):
            summary.latency_series(bucket=2.0)


# ---------------------------------------------------------------------------
# Serial / parallel equivalence (the tentpole's correctness bar)
# ---------------------------------------------------------------------------
class TestSerialParallelEquivalence:
    def test_jobs4_matches_jobs1_bit_for_bit(self):
        specs = [fast_spec(seed=seed, hash_events=True) for seed in (1, 2)]
        serial = run_specs(specs, jobs=1, use_cache=False,
                           registry=MetricsRegistry())
        parallel = run_specs(specs, jobs=4, use_cache=False,
                             registry=MetricsRegistry())
        assert [s.metrics_dict() for s in serial] == \
            [p.metrics_dict() for p in parallel]
        assert [s.event_digest for s in serial] == \
            [p.event_digest for p in parallel]
        assert all(s.event_digest for s in serial)

    def test_sweep_jobs1_matches_jobs4(self):
        from repro.experiments.sweeps import SweepSpec, run_sweep

        sweep = SweepSpec(
            base=dict(FAST),
            grid={"tag_expiry": [5.0, 50.0]},
            seeds=[1, 2],
            metrics={
                "q_rate": lambda r: r.tag_rates()[0],
                "delivery": lambda r: r.client_delivery_ratio(),
            },
        )
        serial = run_sweep(sweep, jobs=1, use_cache=False, hash_events=True)
        parallel = run_sweep(sweep, jobs=4, use_cache=False, hash_events=True)
        assert [p.samples for p in serial] == [p.samples for p in parallel]

    def test_results_keep_submission_order(self, tmp_path):
        specs = [fast_spec(seed=seed) for seed in (3, 1, 2)]
        summaries = run_specs(specs, jobs=1, cache_dir=tmp_path,
                              registry=MetricsRegistry())
        assert [s.seed for s in summaries] == [3, 1, 2]


# ---------------------------------------------------------------------------
# Run cache
# ---------------------------------------------------------------------------
class TestRunCache:
    def test_hit_returns_without_executing(self, tmp_path, monkeypatch):
        spec = fast_spec()
        first = run_specs([spec], cache_dir=tmp_path, registry=MetricsRegistry())

        def explode(_spec):
            raise AssertionError("cache hit must not execute the scenario")

        monkeypatch.setattr("repro.exec.engine._execute_spec", explode)
        engine = ExperimentEngine(cache_dir=tmp_path, registry=MetricsRegistry())
        second = engine.run_specs([spec])
        assert second == first  # provenance excluded; measurements equal
        assert second[0].cached and not first[0].cached
        assert engine.stats.cache_hits == 1
        assert engine.stats.serial_runs == engine.stats.parallel_runs == 0

    def test_cache_round_trips_exactly(self, tmp_path):
        spec = fast_spec(hash_events=True)
        first = run_specs([spec], cache_dir=tmp_path, registry=MetricsRegistry())
        cached = run_specs([spec], cache_dir=tmp_path, registry=MetricsRegistry())
        assert cached[0].metrics_dict() == first[0].metrics_dict()
        assert cached[0].event_digest == first[0].event_digest

    def test_stale_code_fingerprint_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "build-1")
        spec = fast_spec()
        run_specs([spec], cache_dir=tmp_path, registry=MetricsRegistry())

        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "build-2")
        engine = ExperimentEngine(cache_dir=tmp_path, registry=MetricsRegistry())
        engine.run_specs([spec])
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 1
        assert engine.stats.serial_runs == 1

    def test_no_cache_bypasses(self, tmp_path):
        spec = fast_spec()
        run_specs([spec], cache_dir=tmp_path, registry=MetricsRegistry())
        engine = ExperimentEngine(cache_dir=tmp_path, use_cache=False,
                                  registry=MetricsRegistry())
        engine.run_specs([spec])
        assert engine.cache is None
        assert engine.stats.serial_runs == 1
        assert engine.stats.cache_hits == engine.stats.cache_misses == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = fast_spec()
        cache = RunCache(tmp_path)
        key = cache_key(spec, fingerprint="pinned")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_key_depends_on_spec_and_code(self):
        base = cache_key(fast_spec(), fingerprint="f1")
        assert cache_key(fast_spec(), fingerprint="f1") == base
        assert cache_key(fast_spec(seed=2), fingerprint="f1") != base
        assert cache_key(fast_spec(), fingerprint="f2") != base


# ---------------------------------------------------------------------------
# Worker telemetry round-trip (fleet observability)
# ---------------------------------------------------------------------------
class TestFleetTelemetry:
    def _engine(self, **kwargs):
        kwargs.setdefault("use_cache", False)
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("collect_telemetry", True)
        return ExperimentEngine(**kwargs)

    def test_serial_and_parallel_fleet_registries_bit_for_bit(self):
        specs = [fast_spec(seed=seed) for seed in (1, 2)]
        serial = self._engine(jobs=1)
        parallel = self._engine(jobs=4)
        s = serial.run_specs(specs)
        p = parallel.run_specs(specs)
        assert all(x.telemetry is not None for x in s + p)
        # The merged registries — counters, gauges, histogram buckets —
        # must be bit-identical between execution modes.
        assert serial.fleet_registry.to_json() == parallel.fleet_registry.to_json()
        assert "tactic_router_ops_total" in serial.fleet_registry.snapshot()
        # exec counters live in the merged parent view for both modes,
        # and count the same number of executions.
        merged_s, merged_p = serial.merged_snapshot(), parallel.merged_snapshot()

        def runs(snap):
            return sum(
                sample["value"] for sample in snap["exec_runs_total"]["samples"]
            )

        assert runs(merged_s) == runs(merged_p) == len(specs)

    def test_envelope_metrics_match_in_process_session(self):
        # The shipped envelope is the same finalize record an in-process
        # session would produce: bridged router ops equal OpCounters.
        summary = _execute_spec(fast_spec(), {"profile": False,
                                              "sample_interval": None})
        envelope = summary.telemetry
        assert envelope is not None
        ops = envelope["metrics"]["tactic_router_ops_total"]["samples"]
        edge_lookups = sum(
            s["value"] for s in ops
            if s["labels"]["role"] == "edge" and s["labels"]["op"] == "bf_lookups"
        )
        assert edge_lookups == summary.edge_ops["bf_lookups"]
        assert envelope["events_executed"] == summary.events_executed

    def test_cache_hit_replays_telemetry_without_executing(
        self, tmp_path, monkeypatch
    ):
        spec = fast_spec()
        first = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path)
        original = first.run_specs([spec])

        def explode(_spec, _telemetry_args=None):
            raise AssertionError("cache hit must not execute the scenario")

        monkeypatch.setattr("repro.exec.engine._execute_spec", explode)
        second = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path)
        replayed = second.run_specs([spec])
        assert replayed[0].cached
        assert replayed[0].telemetry == original[0].telemetry
        assert second.fleet_registry.to_json() == first.fleet_registry.to_json()

    def test_cache_counter_parity_across_modes(self, tmp_path):
        specs = [fast_spec(seed=seed) for seed in (1, 2)]
        self._engine(jobs=1, use_cache=True, cache_dir=tmp_path).run_specs(specs)
        serial = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path)
        serial.run_specs(specs)
        parallel = self._engine(jobs=4, use_cache=True, cache_dir=tmp_path)
        parallel.run_specs(specs)

        def cache_events(engine):
            snap = engine.merged_snapshot()["exec_cache_events_total"]
            return {
                tuple(sorted(s["labels"].items())): s["value"]
                for s in snap["samples"]
            }

        expected = {(("result", "hit"),): 2}
        assert cache_events(serial) == cache_events(parallel) == expected
        assert serial.fleet_registry.to_json() == parallel.fleet_registry.to_json()

    def test_collect_off_ships_no_envelope(self):
        engine = self._engine(jobs=1, collect_telemetry=False)
        summaries = engine.run_specs([fast_spec()])
        assert summaries[0].telemetry is None
        assert engine.fleet_registry.snapshot() == {}

    def test_env_flag_resolution(self, monkeypatch):
        from repro.exec.engine import FLEET_TELEMETRY_ENV

        monkeypatch.delenv(FLEET_TELEMETRY_ENV, raising=False)
        assert ExperimentEngine(registry=MetricsRegistry()).collect_telemetry is None
        monkeypatch.setenv(FLEET_TELEMETRY_ENV, "1")
        assert ExperimentEngine(registry=MetricsRegistry()).collect_telemetry is True
        monkeypatch.setenv(FLEET_TELEMETRY_ENV, "0")
        assert ExperimentEngine(registry=MetricsRegistry()).collect_telemetry is False
        engine = ExperimentEngine(registry=MetricsRegistry(),
                                  collect_telemetry=True)
        assert engine.collect_telemetry is True

    def test_telemetry_excluded_from_equality_and_metrics(self):
        with_telemetry = _execute_spec(fast_spec(), {"profile": False,
                                                     "sample_interval": None})
        without = _execute_spec(fast_spec())
        assert with_telemetry == without
        assert "telemetry" not in without.metrics_dict()
        restored = RunSummary.from_json_dict(
            json.loads(json.dumps(with_telemetry.to_json_dict()))
        )
        assert restored.telemetry == with_telemetry.telemetry


# ---------------------------------------------------------------------------
# Fleet decision auditing
# ---------------------------------------------------------------------------
class TestFleetAudit:
    def _engine(self, **kwargs):
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("use_cache", False)
        return ExperimentEngine(**kwargs)

    def test_serial_and_parallel_fleet_audit_bit_for_bit(self):
        specs = [fast_spec(seed=seed) for seed in (1, 2)]
        serial = self._engine(jobs=1, audit=True)
        parallel = self._engine(jobs=4, audit=True)
        first = serial.run_specs(specs)
        second = parallel.run_specs(specs)
        assert [s.audit for s in first] == [p.audit for p in second]
        assert json.dumps(serial.fleet_audit, sort_keys=True) == \
            json.dumps(parallel.fleet_audit, sort_keys=True)
        assert serial.fleet_audit["totals"]["decisions"] > 0
        assert serial.fleet_audit["totals"]["false_positive"] == 0

    def test_cache_hit_replays_audit_summary(self, tmp_path):
        spec = fast_spec()
        first = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path,
                             audit=True)
        first.run_specs([spec])
        second = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path,
                              audit=True)
        summaries = second.run_specs([spec])
        assert summaries[0].cached is True
        assert summaries[0].audit is not None
        assert second.fleet_audit == first.fleet_audit

    def test_audit_out_writes_fleet_report(self, tmp_path):
        out = tmp_path / "audit-report.json"
        engine = self._engine(jobs=1, audit_out=str(out))
        assert engine.audit is True  # audit_out implies auditing
        engine.run_specs([fast_spec()], figure="fig6")
        payload = json.loads(out.read_text())
        assert payload["figure"] == "fig6"
        assert payload["summary"]["totals"]["decisions"] > 0
        assert payload["confidence"]["fleet"]["within_ci"] is True
        assert any("fleet" in line for line in payload["report"])

    def test_audit_off_by_default(self):
        engine = self._engine(jobs=1)
        summaries = engine.run_specs([fast_spec()])
        assert engine.audit is False
        assert summaries[0].audit is None
        assert engine.fleet_audit == {}

    def test_audit_excluded_from_equality_and_metrics(self):
        audited = _execute_spec(fast_spec(), audit=True)
        plain = _execute_spec(fast_spec())
        assert audited == plain
        assert "audit" not in plain.metrics_dict()
        restored = RunSummary.from_json_dict(
            json.loads(json.dumps(audited.to_json_dict()))
        )
        assert restored.audit == audited.audit

    def test_env_flag_resolution(self, monkeypatch):
        from repro.obs.audit import AUDIT_ENV, AUDIT_OUT_ENV

        monkeypatch.delenv(AUDIT_ENV, raising=False)
        monkeypatch.delenv(AUDIT_OUT_ENV, raising=False)
        assert ExperimentEngine(registry=MetricsRegistry()).audit is False
        monkeypatch.setenv(AUDIT_ENV, "1")
        assert ExperimentEngine(registry=MetricsRegistry()).audit is True
        monkeypatch.delenv(AUDIT_ENV)
        monkeypatch.setenv(AUDIT_OUT_ENV, "report.json")
        engine = ExperimentEngine(registry=MetricsRegistry())
        assert engine.audit is True
        assert engine.audit_out == "report.json"
        # An explicit False wins over the env opt-ins.
        assert ExperimentEngine(registry=MetricsRegistry(),
                                audit=False).audit is False


# ---------------------------------------------------------------------------
# Fleet state accounting
# ---------------------------------------------------------------------------
class TestFleetStateScope:
    def _engine(self, **kwargs):
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("use_cache", False)
        return ExperimentEngine(**kwargs)

    def test_serial_and_parallel_fleet_statescope_bit_for_bit(self):
        specs = [fast_spec(seed=seed) for seed in (1, 2)]
        serial = self._engine(jobs=1, statescope=True)
        parallel = self._engine(jobs=4, statescope=True)
        first = serial.run_specs(specs)
        second = parallel.run_specs(specs)
        assert [s.statescope for s in first] == [p.statescope for p in second]
        assert json.dumps(serial.fleet_statescope, sort_keys=True) == \
            json.dumps(parallel.fleet_statescope, sort_keys=True)
        assert serial.fleet_statescope["runs"] == 2
        assert serial.fleet_statescope["conformance"]["pass"] is True
        total = serial.fleet_statescope["series"]["state.total.bytes"]
        assert total["peak"] > 0

    def test_cache_hit_replays_statescope_record(self, tmp_path):
        spec = fast_spec()
        first = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path,
                             statescope=True)
        first.run_specs([spec])
        second = self._engine(jobs=1, use_cache=True, cache_dir=tmp_path,
                              statescope=True)
        summaries = second.run_specs([spec])
        assert summaries[0].cached is True
        assert summaries[0].statescope is not None
        assert second.fleet_statescope == first.fleet_statescope

    def test_statescope_out_writes_fleet_report(self, tmp_path):
        out = tmp_path / "statescope-report.json"
        engine = self._engine(jobs=1, statescope_out=str(out))
        assert engine.statescope is True  # out-path implies accounting
        engine.run_specs([fast_spec()], figure="fig6")
        payload = json.loads(out.read_text())
        assert payload["figure"] == "fig6"
        assert payload["record"]["runs"] == 1
        assert payload["record"]["conformance"]["pass"] is True
        assert any("conformance" in line for line in payload["report"])

    def test_statescope_off_by_default(self):
        engine = self._engine(jobs=1)
        summaries = engine.run_specs([fast_spec()])
        assert engine.statescope is False
        assert summaries[0].statescope is None
        assert engine.fleet_statescope == {}

    def test_statescope_excluded_from_equality_and_metrics(self):
        scoped = _execute_spec(fast_spec(), statescope=True)
        plain = _execute_spec(fast_spec())
        assert scoped.statescope is not None
        assert "statescope" not in plain.metrics_dict()
        assert "statescope" not in scoped.metrics_dict()
        restored = RunSummary.from_json_dict(
            json.loads(json.dumps(scoped.to_json_dict()))
        )
        assert restored.statescope == scoped.statescope
        # compare=False: two summaries differing only in the statescope
        # record still compare equal.
        other = dataclasses.replace(scoped, statescope=None)
        assert other == scoped

    def test_env_flag_resolution(self, monkeypatch):
        from repro.obs.statescope import STATESCOPE_ENV, STATESCOPE_OUT_ENV

        monkeypatch.delenv(STATESCOPE_ENV, raising=False)
        monkeypatch.delenv(STATESCOPE_OUT_ENV, raising=False)
        assert ExperimentEngine(registry=MetricsRegistry()).statescope is False
        monkeypatch.setenv(STATESCOPE_ENV, "1")
        assert ExperimentEngine(registry=MetricsRegistry()).statescope is True
        monkeypatch.delenv(STATESCOPE_ENV)
        monkeypatch.setenv(STATESCOPE_OUT_ENV, "scope.json")
        engine = ExperimentEngine(registry=MetricsRegistry())
        assert engine.statescope is True
        assert engine.statescope_out == "scope.json"
        # An explicit False wins over the env opt-ins.
        assert ExperimentEngine(registry=MetricsRegistry(),
                                statescope=False).statescope is False


# ---------------------------------------------------------------------------
# Knob resolution and telemetry
# ---------------------------------------------------------------------------
class TestEngineKnobs:
    def test_resolve_jobs_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert resolve_jobs(None) == 1

    def test_cache_dir_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        engine = ExperimentEngine(registry=MetricsRegistry())
        assert engine.cache is not None
        assert engine.cache.directory == tmp_path

    def test_registry_counters_move(self, tmp_path):
        registry = MetricsRegistry()
        spec = fast_spec()
        run_specs([spec], cache_dir=tmp_path, registry=registry)
        run_specs([spec], cache_dir=tmp_path, registry=registry)
        snap = registry.snapshot()
        flat = {
            (name, tuple(sorted(sample["labels"].items()))): sample.get("value")
            for name, family in snap.items()
            for sample in family["samples"]
        }
        assert flat[("exec_runs_total", (("mode", "serial"),))] == 1
        assert flat[("exec_cache_events_total", (("result", "miss"),))] == 1
        assert flat[("exec_cache_events_total", (("result", "hit"),))] == 1
        wall = snap["exec_worker_wall_seconds"]["samples"][0]
        assert wall["count"] == 1 and wall["sum"] > 0.0
