"""The state-footprint observatory: deep sizeof, trend fitting, the
``state_cost()`` protocol, conformance checks, fleet merge parity, and
the ``python -m repro.obs.statescope`` CLI exit contract."""

from __future__ import annotations

import json
import sys
from types import SimpleNamespace

import pytest

from repro.experiments import Scenario, run_scenario
from repro.filters.bloom import BloomFilter
from repro.ndn.cs import ContentStore
from repro.ndn.fib import Fib
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.ndn.pit import Pit, PitRecord
from repro.obs.audit import DecisionAudit
from repro.obs.spans import SpanRecorder
from repro.obs.statescope import (
    GROWTH_SERIES,
    STATESCOPE_ENV,
    STATESCOPE_INTERVAL_ENV,
    STATESCOPE_OUT_ENV,
    STATESCOPE_SERIES,
    StateScope,
    deep_sizeof,
    fit_trend,
    growth_finding,
    main,
    maybe_statescope,
    merge_statescope,
    render_statescope_report,
    statescope_enabled,
    statescope_metrics,
)
from repro.sim.engine import Simulator


def fast_scenario(**kwargs):
    params = dict(duration=5.0, seed=1, scale=0.1)
    params.update(kwargs)
    return Scenario.paper_topology(1, **params)


# ---------------------------------------------------------------------------
# deep_sizeof
# ---------------------------------------------------------------------------
class TestDeepSizeof:
    def test_counts_container_contents(self):
        payload = "x" * 4096
        assert deep_sizeof([payload]) >= sys.getsizeof(payload)
        assert deep_sizeof({"k": payload}) >= sys.getsizeof(payload)

    def test_shared_substructure_counted_once(self):
        inner = ["x" * 256, "y" * 256]
        outer = [inner, inner]
        assert (
            deep_sizeof(outer) - sys.getsizeof(outer) == deep_sizeof(inner)
        )

    def test_seen_set_memoizes_across_calls(self):
        seen = set()
        inner = ["x" * 256]
        assert deep_sizeof(inner, seen) > 0
        assert deep_sizeof(inner, seen) == 0

    def test_slots_instances_traversed(self):
        # PitRecord is a __slots__ dataclass: its tag payload must be
        # billed even though the instance has no __dict__.
        record = PitRecord(
            tag="t" * 2048, flag_f=0.0, in_face=None, arrived_at=0.0
        )
        assert deep_sizeof(record) >= sys.getsizeof("t" * 2048)

    def test_ownership_boundary_stops_at_backrefs(self):
        # An object carrying a node_id backref (faces, nodes) is a
        # boundary: counted shallow, never traversed.
        class _Face:
            def __init__(self):
                self.node_id = "r1"
                self.payload = "z" * 100000

        _Face.__module__ = "repro._fixture"
        face = _Face()
        record = PitRecord(tag=None, flag_f=0.0, in_face=face, arrived_at=0.0)
        assert deep_sizeof(record) < 50000

    def test_foreign_objects_counted_shallow(self):
        class _Foreign:
            def __init__(self):
                self.payload = "z" * 100000

        obj = _Foreign()  # module is not repro.* -> shallow
        assert deep_sizeof([obj]) < 50000


# ---------------------------------------------------------------------------
# Trend fitting and growth findings
# ---------------------------------------------------------------------------
class TestTrends:
    def test_fit_exact_line(self):
        samples = [(float(t), 2.0 * t + 1.0) for t in range(5)]
        trend = fit_trend(samples)
        assert trend["slope"] == pytest.approx(2.0)
        assert trend["intercept"] == pytest.approx(1.0)
        assert trend["r2"] == pytest.approx(1.0)

    def test_flat_series_has_zero_slope(self):
        trend = fit_trend([(float(t), 7.0) for t in range(5)])
        assert trend["slope"] == 0.0
        assert trend["r2"] == 0.0

    def test_degenerate_inputs(self):
        assert fit_trend([])["slope"] == 0.0
        assert fit_trend([(1.0, 2.0)])["slope"] == 0.0
        # All samples at one instant: no time axis to regress on.
        assert fit_trend([(1.0, 2.0), (1.0, 9.0)])["slope"] == 0.0

    def test_linear_growth_is_a_finding(self):
        samples = [(float(t), 10.0 * t) for t in range(10)]
        finding = growth_finding("state.pit.entries", samples)
        assert finding is not None
        assert finding["kind"] == "state.growth"
        assert finding["series"] == "state.pit.entries"
        assert "state.pit.entries" in finding["detail"]

    def test_oscillation_is_not_a_finding(self):
        samples = [(float(t), 5.0 if t % 2 else 0.0) for t in range(10)]
        assert growth_finding("state.pit.entries", samples) is None

    def test_short_series_is_not_a_finding(self):
        samples = [(float(t), 10.0 * t) for t in range(4)]
        assert growth_finding("state.pit.entries", samples) is None

    def test_small_rise_is_not_a_finding(self):
        samples = [(float(t), float(t)) for t in range(6)]  # rise 5 < 8
        assert growth_finding("state.pit.entries", samples) is None

    def test_growth_series_are_registered(self):
        assert set(GROWTH_SERIES) <= set(STATESCOPE_SERIES)


# ---------------------------------------------------------------------------
# The state_cost() protocol
# ---------------------------------------------------------------------------
class TestStateCost:
    def test_pit(self):
        pit = Pit(entry_lifetime=100.0)
        rec = lambda: PitRecord(tag=None, flag_f=0.0, in_face=None, arrived_at=0.0)
        pit.insert("/a/1", rec(), now=0.0)
        pit.insert("/a/1", rec(), now=0.0)  # aggregated
        pit.insert("/b/1", rec(), now=0.0)
        cost = pit.state_cost()
        assert cost["entries"] == 2
        assert cost["records"] == 3
        assert cost["bytes"] > 0

    def test_content_store(self):
        cs = ContentStore(capacity=4)
        empty = cs.state_cost()["bytes"]
        cs.insert(Data(name=Name("/a/1"), payload=b"x" * 512))
        cost = cs.state_cost()
        assert cost["entries"] == 1
        assert cost["bytes"] > empty

    def test_fib(self):
        fib = Fib()
        fib.add("/a", face=None, cost=1.0)
        cost = fib.state_cost()
        assert cost["entries"] == 1
        assert cost["bytes"] > 0

    def test_bloom(self):
        bloom = BloomFilter(capacity=64)
        assert bloom.state_cost()["bits_set"] == 0
        bloom.insert(b"tag-1")
        cost = bloom.state_cost()
        assert 0 < cost["bits_set"] <= bloom.num_hashes
        assert cost["size_bits"] == bloom.size_bits
        assert cost["bytes"] >= len(bloom._bits)

    def test_audit(self):
        cost = DecisionAudit().state_cost()
        assert set(cost) == {"shadow", "issued", "revoked", "bytes"}
        assert cost["shadow"] == 0

    def test_span_recorder(self):
        recorder = SpanRecorder(Simulator(seed=1))
        cost = recorder.state_cost()
        assert cost["open"] == 0
        assert cost["bytes"] > 0


# ---------------------------------------------------------------------------
# StateScope lifecycle
# ---------------------------------------------------------------------------
def leaky_pit_scope(horizon=20.0, interval=1.0):
    """A run whose PIT gains one never-consumed entry per second —
    the seeded-leak fixture the acceptance gate detects."""
    sim = Simulator(seed=1)
    pit = Pit(entry_lifetime=1e9)
    counter = {"n": 0}

    def leak():
        counter["n"] += 1
        pit.insert(
            f"/leak/{counter['n']}",
            PitRecord(tag=None, flag_f=0.0, in_face=None, arrived_at=sim.now),
            now=sim.now,
        )
        if sim.now + 0.5 <= horizon:
            sim.schedule(0.5, leak)

    sim.schedule(0.5, leak)
    network = SimpleNamespace(nodes={"r0": SimpleNamespace(pit=pit)})
    scope = StateScope(interval=interval)
    scope.install(sim, network=network, label="leaky")
    scope.start(horizon=horizon)
    sim.run(until=horizon)
    return scope


class TestStateScope:
    def test_interval_env_and_validation(self, monkeypatch):
        monkeypatch.setenv(STATESCOPE_INTERVAL_ENV, "0.25")
        assert StateScope().interval == 0.25
        monkeypatch.delenv(STATESCOPE_INTERVAL_ENV)
        assert StateScope().interval == 1.0
        with pytest.raises(ValueError):
            StateScope(interval=0.0)

    def test_start_requires_install(self):
        with pytest.raises(RuntimeError):
            StateScope().start()

    def test_env_gating(self, monkeypatch):
        monkeypatch.delenv(STATESCOPE_ENV, raising=False)
        monkeypatch.delenv(STATESCOPE_OUT_ENV, raising=False)
        assert statescope_enabled() is False
        assert maybe_statescope() is None
        monkeypatch.setenv(STATESCOPE_ENV, "1")
        assert statescope_enabled() is True
        assert isinstance(maybe_statescope(), StateScope)
        monkeypatch.setenv(STATESCOPE_ENV, "0")
        assert statescope_enabled() is False
        monkeypatch.delenv(STATESCOPE_ENV)
        monkeypatch.setenv(STATESCOPE_OUT_ENV, "scope.json")
        assert statescope_enabled() is True  # out-path implies on

    def test_scoped_run_produces_clean_record(self):
        scope = StateScope()
        run_scenario(fast_scenario(), statescope=scope)
        record = scope.record()
        assert set(record["series"]) == set(STATESCOPE_SERIES)
        assert record["series"]["state.total.bytes"]["samples"] >= 5
        assert record["series"]["state.total.bytes"]["peak"] > 0
        assert record["findings"] == []
        conf = record["conformance"]
        assert conf["checks_total"] > 0
        assert conf["pass"] is True
        checks = {c["check"] for c in conf["checks"]}
        assert {"bf_fill", "bf_resets", "cs_hit", "pit_occupancy"} <= checks

    def test_finalize_is_idempotent(self):
        scope = StateScope()
        run_scenario(fast_scenario(), statescope=scope)
        assert scope.finalize() is scope.finalize()

    def test_scope_does_not_change_figure_values(self):
        # The tick itself executes as an event, so events_executed moves;
        # every published figure value must not.
        plain = run_scenario(fast_scenario()).to_summary().metrics_dict()
        scoped = (
            run_scenario(fast_scenario(), statescope=StateScope())
            .to_summary()
            .metrics_dict()
        )
        plain.pop("events_executed")
        scoped.pop("events_executed")
        assert scoped == plain

    def test_seeded_pit_leak_detected(self):
        scope = leaky_pit_scope()
        record = scope.record()
        series = [f["series"] for f in record["findings"]]
        assert "state.pit.entries" in series
        assert "state.pit.records" in series
        assert record["conformance"]["pass"] is False
        occupancy = [
            c for c in record["conformance"]["checks"]
            if c["check"] == "pit_occupancy"
        ]
        assert occupancy and occupancy[0]["within_ci"] is False

    def test_flush_samples_partial_tail(self):
        sim = Simulator(seed=1)
        scope = StateScope(interval=1.0)
        scope.install(sim, network=SimpleNamespace(nodes={}))
        scope.start(horizon=10.0)
        sim.run(until=2.5)  # 2 ticks; tail 2.0..2.5 unsampled
        assert len(scope.series["state.total.bytes"]) == 2
        scope.finalize()
        samples = scope.record()["series"]["state.total.bytes"]["samples"]
        assert samples == 3  # flush added the 2.5 tail sample

    def test_off_state_schedules_nothing(self):
        sim = Simulator(seed=1)
        baseline = sim.pending()
        StateScope(interval=1.0)  # constructed but never installed
        assert sim.pending() == baseline


# ---------------------------------------------------------------------------
# Merge + metrics
# ---------------------------------------------------------------------------
class TestMergeAndMetrics:
    def _record(self, label="run-a", leak=False):
        scope = leaky_pit_scope() if leak else StateScope()
        if not leak:
            run_scenario(fast_scenario(), statescope=scope)
        record = dict(scope.record())
        record["label"] = label
        return record

    def test_merge_sums_series_and_stamps_labels(self):
        a = self._record("run-a")
        b = self._record("run-b", leak=True)
        merged = {}
        merge_statescope(merged, a)
        merge_statescope(merged, b)
        assert merged["runs"] == 2
        total = merged["series"]["state.total.bytes"]
        assert total["peak"] == pytest.approx(
            a["series"]["state.total.bytes"]["peak"]
            + b["series"]["state.total.bytes"]["peak"]
        )
        assert all(f["run"] == "run-b" for f in merged["findings"])
        assert merged["conformance"]["pass"] is False
        assert merged["conformance"]["checks_total"] == (
            a["conformance"]["checks_total"] + b["conformance"]["checks_total"]
        )

    def test_merge_is_deterministic_and_drops_tracemalloc(self):
        a = self._record("run-a")
        a["tracemalloc"] = {"current_bytes": 123, "peak_bytes": 456}
        first, second = {}, {}
        merge_statescope(first, a)
        merge_statescope(second, json.loads(json.dumps(a)))
        assert "tracemalloc" not in first
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_metrics_are_flat_and_deterministic(self):
        record = self._record()
        metrics = statescope_metrics(record)
        for name in STATESCOPE_SERIES:
            assert f"{name}.peak" in metrics
            assert f"{name}.last" in metrics
        assert metrics["state.findings"] == 0.0
        assert metrics["model.pass"] == 1.0
        assert metrics["model.failures"] == 0.0
        assert metrics["model.cs_hit.within"] == 1.0
        assert metrics["mem.deep_bytes.peak"] > 0
        assert all(isinstance(v, float) for v in metrics.values())

    def test_metrics_exclude_tracemalloc(self):
        record = self._record()
        record["tracemalloc"] = {"current_bytes": 123}
        assert not any("tracemalloc" in k for k in statescope_metrics(record))


# ---------------------------------------------------------------------------
# Rendering + CLI
# ---------------------------------------------------------------------------
class TestReportCli:
    def _clean_record(self):
        scope = StateScope()
        run_scenario(fast_scenario(), statescope=scope)
        return scope.record()

    def test_render_mentions_series_and_verdict(self):
        lines = render_statescope_report(self._clean_record())
        text = "\n".join(lines)
        assert "state.total.bytes" in text
        assert "conformance: PASS" in text
        assert "findings: none" in text

    def test_cli_clean_record_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "scope.json"
        path.write_text(json.dumps(self._clean_record()))
        assert main(["report", str(path)]) == 0
        assert "conformance: PASS" in capsys.readouterr().out

    def test_cli_leak_exits_one(self, tmp_path, capsys):
        path = tmp_path / "scope.json"
        path.write_text(json.dumps(leaky_pit_scope().record()))
        assert main(["report", str(path)]) == 1
        out = capsys.readouterr().out
        assert "state.growth" in out
        assert "conformance: FAIL" in out

    def test_cli_reads_engine_report_wrapper(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"figure": "fig6",
                                    "record": self._clean_record()}))
        assert main(["report", str(path)]) == 0

    def test_cli_bad_input_exits_two(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing.json")]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("[]")
        assert main(["report", str(garbage)]) == 2
        not_a_record = tmp_path / "not-a-record.json"
        not_a_record.write_text(json.dumps({"foo": 1}))
        assert main(["report", str(not_a_record)]) == 2
        assert capsys.readouterr().err  # errors land on stderr
