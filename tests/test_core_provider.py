"""Behavioural tests for the provider: registration, publishing, keys."""

import pytest

from repro.core.access_path import ZERO_PATH, expected_access_path
from repro.crypto.keywrap import unwrap_key
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Interest

from tests.conftest import build_mini_net


class Probe(Node):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.datas = []

    def on_data(self, data, in_face):
        self.datas.append(data)


@pytest.fixture
def net():
    return build_mini_net()


@pytest.fixture
def probe(net):
    probe = Probe(net.sim, "probe")
    net.network.add_node(probe, routable=False)
    net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
    return probe


class TestCatalog:
    def test_publish_counts(self, net):
        assert len(net.provider.catalog) == net.config.objects_per_provider
        obj = net.provider.catalog[0]
        assert obj.num_chunks == net.config.chunks_per_object
        assert obj.prefix == Name("/prov-0/obj-0")

    def test_levels_cycle(self, net):
        levels = [obj.access_level for obj in net.provider.catalog[:6]]
        assert levels == [1, 2, 3, 1, 2, 3]

    def test_chunk_payload_deterministic(self, net):
        obj = net.provider.catalog[0]
        name = obj.chunk_name(0)
        assert net.provider._chunk_payload(obj, name) == net.provider._chunk_payload(
            obj, name
        )
        assert len(net.provider._chunk_payload(obj, name)) == net.config.chunk_size_bytes

    def test_encrypted_payloads_decrypt_with_master_key(self):
        net = build_mini_net()
        net.config.encrypt_payloads = True
        from repro.crypto.chacha20 import chacha20_decrypt

        obj = net.provider.catalog[0]
        name = obj.chunk_name(3)
        ciphertext = net.provider._chunk_payload(obj, name)
        key = net.provider.content_key_for(obj)
        plaintext = chacha20_decrypt(key, obj.key_nonce, ciphertext)
        import hashlib

        expected = hashlib.sha256(name.to_uri().encode()).digest() * (
            obj.chunk_size // 32
        )
        assert plaintext == expected[: obj.chunk_size]


class TestRegistration:
    def register(self, net, probe, user="probe", credentials=None, level=2):
        secret = net.provider.directory.enroll(user, level)
        creds = secret if credentials is None else credentials
        net.sim.schedule(
            0.0,
            probe.faces[0].send,
            Interest(name=Name(f"/prov-0/register/{user}/1"), credentials=creds),
        )
        net.run()
        return secret

    def test_valid_credentials_get_signed_tag(self, net, probe):
        self.register(net, probe)
        assert len(probe.datas) == 1
        tag = probe.datas[0].tag_response
        assert tag.verify_signature(net.provider.keypair.public)
        assert tag.access_level == 2
        assert tag.expiry == pytest.approx(net.config.tag_expiry, abs=1.0)
        assert net.provider.stats.tags_issued == 1

    def test_tag_binds_observed_access_path(self, net, probe):
        self.register(net, probe)
        tag = probe.datas[0].tag_response
        # The AP folded its identity in transit; the provider copied it.
        assert tag.access_path == expected_access_path(["ap-0"])

    def test_bad_credentials_refused(self, net, probe):
        self.register(net, probe, credentials=b"wrong")
        assert probe.datas == []
        assert net.provider.stats.registrations_refused == 1

    def test_unknown_user_refused(self, net, probe):
        net.sim.schedule(
            0.0,
            probe.faces[0].send,
            Interest(name=Name("/prov-0/register/ghost/1"), credentials=b"x"),
        )
        net.run()
        assert probe.datas == []
        assert net.provider.stats.registrations_refused == 1

    def test_revoked_user_refused(self, net, probe):
        secret = net.provider.directory.enroll("probe", 2)
        net.provider.directory.revoke("probe")
        net.sim.schedule(
            0.0,
            probe.faces[0].send,
            Interest(name=Name("/prov-0/register/probe/1"), credentials=secret),
        )
        net.run()
        assert probe.datas == []

    def test_malformed_registration_name_refused(self, net, probe):
        net.sim.schedule(
            0.0, probe.faces[0].send, Interest(name=Name("/prov-0/register"))
        )
        net.run()
        assert probe.datas == []

    def test_wrapped_key_unwraps_for_enrolled_client(self, net, probe):
        keypair = SimulatedKeyPair.generate(net.sim.rng.stream("client-key"))
        secret = net.provider.directory.enroll("probe", 2, public_key=keypair.public)
        net.sim.schedule(
            0.0,
            probe.faces[0].send,
            Interest(name=Name("/prov-0/register/probe/1"), credentials=secret),
        )
        net.run()
        blob = probe.datas[0].wrapped_key
        assert blob is not None
        assert unwrap_key(keypair, blob) == net.provider.master_key

    def test_no_public_key_no_wrapped_key(self, net, probe):
        self.register(net, probe)
        assert probe.datas[0].wrapped_key is None


class TestOriginServing:
    def test_unknown_content_dropped(self, net, probe):
        before = net.provider.unroutable_drops
        net.sim.schedule(
            0.0, probe.faces[0].send, Interest(name=Name("/prov-0/obj-999/chunk-0"))
        )
        net.run()
        assert net.provider.unroutable_drops == before + 1

    def test_origin_validates_like_content_router(self, net, probe):
        net.provider.directory.enroll("probe", 3)
        tag = net.provider.issue_tag_direct("probe", expected_access_path(["ap-0"]))
        net.sim.schedule(
            0.0,
            probe.faces[0].send,
            Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag),
        )
        net.run()
        assert len(probe.datas) == 1
        assert probe.datas[0].access_level == 1
        assert probe.datas[0].provider_key_locator == net.provider.key_locator
        assert net.provider.stats.chunks_served == 1

    def test_issue_tag_direct_requires_enrollment(self, net):
        assert net.provider.issue_tag_direct("nobody", ZERO_PATH) is None
