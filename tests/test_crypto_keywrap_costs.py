"""Unit tests for key wrapping, the cost model, and hashing utilities."""

import random

import pytest

from repro.crypto.cost_model import (
    PAPER_COST_MODEL,
    ZERO_COST_MODEL,
    ComputationCostModel,
    OpCost,
    benchmark_local_costs,
)
from repro.crypto.hashing import (
    entity_identity_hash,
    rolling_xor_hash,
    sha256,
    sha256_int,
    xor_fold,
)
from repro.crypto.keywrap import KeyWrapError, unwrap_key, wrap_key
from repro.crypto.rsa import generate_keypair
from repro.crypto.sim_signature import SimulatedKeyPair


class TestKeyWrap:
    def test_roundtrip_simulated(self):
        kp = SimulatedKeyPair.generate(random.Random(1))
        blob = wrap_key(kp.public, b"C" * 32)
        assert unwrap_key(kp, blob) == b"C" * 32

    def test_roundtrip_rsa(self):
        kp = generate_keypair(bits=512, rng=random.Random(2))
        blob = wrap_key(kp.public, b"K" * 32)
        assert unwrap_key(kp, blob) == b"K" * 32

    def test_wrong_recipient_fails(self):
        a = SimulatedKeyPair.generate(random.Random(3))
        b = SimulatedKeyPair.generate(random.Random(4))
        blob = wrap_key(a.public, b"K" * 32)
        with pytest.raises(KeyWrapError):
            unwrap_key(b, blob)

    def test_corrupted_blob_fails(self):
        kp = SimulatedKeyPair.generate(random.Random(5))
        blob = bytearray(wrap_key(kp.public, b"K" * 32))
        blob[-1] ^= 0xFF
        with pytest.raises(KeyWrapError):
            unwrap_key(kp, bytes(blob))

    def test_truncated_blob_fails(self):
        kp = SimulatedKeyPair.generate(random.Random(6))
        with pytest.raises(KeyWrapError):
            unwrap_key(kp, b"\x00")

    def test_unsupported_key_type_rejected(self):
        with pytest.raises(TypeError):
            wrap_key(object(), b"K" * 32)
        with pytest.raises(TypeError):
            unwrap_key(object(), b"\x00\x0a" + b"x" * 40)

    def test_wraps_are_randomized(self):
        kp = SimulatedKeyPair.generate(random.Random(7))
        assert wrap_key(kp.public, b"K" * 32) != wrap_key(kp.public, b"K" * 32)


class TestCostModel:
    def test_paper_model_has_published_means(self):
        assert PAPER_COST_MODEL.mean("bf_lookup") == pytest.approx(9.14e-7)
        assert PAPER_COST_MODEL.mean("bf_insert") == pytest.approx(3.35e-7)
        assert PAPER_COST_MODEL.mean("signature_verify") == pytest.approx(1.12e-5)

    def test_sampling_never_negative(self):
        rng = random.Random(0)
        cost = OpCost(mean=1e-7, std=1e-5)  # huge spread forces clamping
        assert all(cost.sample(rng) >= 0.0 for _ in range(1000))

    def test_zero_std_returns_mean(self):
        rng = random.Random(0)
        assert OpCost(mean=5.0, std=0.0).sample(rng) == 5.0

    def test_unknown_op_costs_zero(self):
        rng = random.Random(0)
        assert ZERO_COST_MODEL.sample("anything", rng) == 0.0
        assert PAPER_COST_MODEL.sample("nonexistent-op", rng) == 0.0

    def test_with_overrides_does_not_mutate(self):
        override = PAPER_COST_MODEL.with_overrides(bf_lookup=OpCost(1.0, 0.0))
        assert override.mean("bf_lookup") == 1.0
        assert PAPER_COST_MODEL.mean("bf_lookup") == pytest.approx(9.14e-7)
        assert override.mean("bf_insert") == PAPER_COST_MODEL.mean("bf_insert")

    def test_sample_mean_tracks_configured_mean(self):
        rng = random.Random(42)
        cost = OpCost(mean=1e-3, std=1e-5)
        samples = [cost.sample(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(1e-3, rel=0.01)

    def test_local_benchmark_produces_positive_costs(self):
        model = benchmark_local_costs(iterations=50)
        for op in ("bf_lookup", "bf_insert", "signature_verify"):
            assert model.mean(op) > 0.0

    def test_empty_model_is_useful(self):
        model = ComputationCostModel()
        assert model.mean("x") == 0.0


class TestHashing:
    def test_sha256_str_and_bytes_agree(self):
        assert sha256("abc") == sha256(b"abc")

    def test_sha256_int_positive(self):
        assert sha256_int("abc") > 0

    def test_rolling_hash_empty_is_zero(self):
        assert rolling_xor_hash([]) == b"\x00" * 32

    def test_rolling_hash_order_independent(self):
        assert rolling_xor_hash(["a", "b", "c"]) == rolling_xor_hash(["c", "a", "b"])

    def test_rolling_hash_self_inverse(self):
        # XOR-folding an entity twice cancels it out.
        assert rolling_xor_hash(["a", "b", "b"]) == rolling_xor_hash(["a"])

    def test_single_entity_equals_identity_hash(self):
        assert rolling_xor_hash(["ap-1"]) == entity_identity_hash("ap-1")

    def test_xor_fold_roundtrip(self):
        a, b = sha256("x"), sha256("y")
        assert xor_fold(xor_fold(a, b), b) == a

    def test_xor_fold_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_fold(b"\x00" * 4, b"\x00" * 8)
