"""Tests for Shamir secret sharing and the AccConF-style baseline."""

import random

import pytest

from repro.crypto.shamir import (
    PRIME_256,
    BroadcastEnclosure,
    Share,
    recover_secret,
    split_secret,
)
from repro.experiments import Scenario, run_scenario


class TestShamir:
    def test_threshold_reconstruction(self):
        rng = random.Random(1)
        secret = rng.randrange(PRIME_256)
        shares = split_secret(secret, threshold=3, num_shares=6, rng=rng)
        assert recover_secret(shares[:3]) == secret
        assert recover_secret(shares[3:]) == secret
        assert recover_secret([shares[0], shares[2], shares[5]]) == secret

    def test_below_threshold_reveals_nothing(self):
        rng = random.Random(2)
        secret = 424242
        shares = split_secret(secret, threshold=3, num_shares=5, rng=rng)
        # Interpolating two shares of a degree-2 polynomial is just wrong.
        assert recover_secret(shares[:2]) != secret

    def test_more_than_threshold_still_exact(self):
        rng = random.Random(3)
        secret = 99
        shares = split_secret(secret, threshold=2, num_shares=5, rng=rng)
        assert recover_secret(shares) == secret

    def test_threshold_one_is_plain_replication(self):
        shares = split_secret(7, threshold=1, num_shares=3, rng=random.Random(0))
        assert all(s.y == 7 for s in shares)

    def test_duplicate_shares_rejected(self):
        share = Share(x=1, y=10)
        with pytest.raises(ValueError):
            recover_secret([share, share])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            recover_secret([])

    def test_parameter_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            split_secret(PRIME_256, 2, 3, rng)  # out of field
        with pytest.raises(ValueError):
            split_secret(1, 0, 3, rng)
        with pytest.raises(ValueError):
            split_secret(1, 4, 3, rng)  # fewer shares than threshold


class TestBroadcastEnclosure:
    def test_enrolled_client_recovers_secret(self):
        enclosure = BroadcastEnclosure(secret=12345, threshold=3, rng=random.Random(5))
        share = enclosure.enroll("alice")
        assert BroadcastEnclosure.combine(share, enclosure.enclosure) == 12345

    def test_outsider_with_only_enclosure_fails(self):
        enclosure = BroadcastEnclosure(secret=12345, threshold=3, rng=random.Random(5))
        # The public enclosure alone is t-1 shares: interpolating them
        # (with any fabricated extra point) misses the secret.
        fabricated = Share(x=77, y=123456789)
        assert (
            BroadcastEnclosure.combine(fabricated, enclosure.enclosure) != 12345
        )

    def test_enroll_is_idempotent(self):
        enclosure = BroadcastEnclosure(secret=1, threshold=2, rng=random.Random(0))
        assert enclosure.enroll("a") == enclosure.enroll("a")

    def test_revocation_invalidates_old_share(self):
        enclosure = BroadcastEnclosure(secret=999, threshold=3, rng=random.Random(9))
        bob_old = enclosure.enroll("bob")
        enclosure.enroll("carol")
        fresh = enclosure.revoke("bob")
        # Bob is gone from the rekey set; Carol got a new share.
        assert "bob" not in fresh
        assert "carol" in fresh
        # Bob's stale share no longer combines with the new enclosure.
        assert BroadcastEnclosure.combine(bob_old, enclosure.enclosure) != 999
        # Carol's fresh one does.
        assert BroadcastEnclosure.combine(fresh["carol"], enclosure.enclosure) == 999

    def test_rekey_cost_scales_with_survivors(self):
        enclosure = BroadcastEnclosure(secret=5, threshold=3, rng=random.Random(4))
        for i in range(10):
            enclosure.enroll(f"user-{i}")
        fresh = enclosure.revoke("user-0")
        assert len(fresh) == 9  # every survivor must be re-provisioned

    def test_generation_increments(self):
        enclosure = BroadcastEnclosure(secret=5, threshold=2, rng=random.Random(4))
        g0 = enclosure.generation
        enclosure.enroll("a")
        enclosure.revoke("a")
        assert enclosure.generation == g0 + 1

    def test_trivial_threshold_rejected(self):
        with pytest.raises(ValueError):
            BroadcastEnclosure(secret=5, threshold=1)


class TestAccConfScheme:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(
            Scenario.paper_topology(1, duration=6.0, seed=2, scale=0.2, scheme="accconf")
        )

    def test_everyone_receives(self, result):
        # Client-side enforcement: the network delivers to all comers.
        assert result.client_delivery_ratio() > 0.95
        assert result.attacker_delivery_ratio() > 0.9

    def test_only_clients_can_decrypt(self, result):
        assert result.metrics.usable_ratio(attackers=False) > 0.95
        assert result.metrics.usable_ratio(attackers=True) == 0.0

    def test_clients_performed_real_combines(self, result):
        combines = sum(c.lagrange_combines for c in result.clients)
        assert combines > 100

    def test_enclosure_inflates_every_data_packet(self, result):
        provider = result.providers[0]
        assert provider.enclosure_bytes() > 0
        # Compare wire bytes against a TACTIC run on the same workload.
        tactic = run_scenario(
            Scenario.paper_topology(1, duration=6.0, seed=2, scale=0.2)
        )
        delivered = result.metrics.total_received(False) or 1
        delivered_tactic = tactic.metrics.total_received(False) or 1
        per_chunk = result.network_bytes() / delivered
        per_chunk_tactic = tactic.network_bytes() / delivered_tactic
        assert per_chunk > per_chunk_tactic  # the "Moderate" comm overhead

    def test_rekey_storm_on_revocation(self, result):
        provider = result.providers[0]
        enrolled = len(provider.enclosure._client_shares)
        if enrolled < 2:
            pytest.skip("not enough enrolled clients in this tiny run")
        victim = next(iter(provider.enclosure._client_shares))
        cost = provider.revoke_and_rekey(victim)
        assert cost == enrolled - 1  # vs. TACTIC's zero

    def test_stale_generation_forces_refresh(self):
        # Revoke mid-run: surviving clients hit generation mismatches,
        # re-register, and resume decrypting.
        scenario = Scenario.paper_topology(
            1, duration=10.0, seed=3, scale=0.2, scheme="accconf"
        )
        from repro.experiments.runner import build_assembly

        assembly = build_assembly(scenario)
        start_rng = assembly.sim.rng.stream("start-offsets")
        for client in assembly.clients:
            client.start(at=start_rng.uniform(0.0, 0.5), until=10.0)
        provider = assembly.providers[0]

        def revoke_first_enrolled():
            enrolled = list(provider.enclosure._client_shares)
            if enrolled:
                provider.revoke_and_rekey(enrolled[0])

        assembly.sim.schedule(4.0, revoke_first_enrolled)
        assembly.sim.run(until=12.0)
        stale = sum(c.stale_generation_misses for c in assembly.clients)
        assert stale > 0
        # Survivors recover: usable chunks exist after the rekey point.
        late_usable = [
            t
            for user in assembly.metrics.users.values()
            if not user.is_attacker
            for t, _ in user.latency_samples
            if t > 6.0
        ]
        assert late_usable
