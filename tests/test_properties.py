"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.access_level import satisfies
from repro.core.tag import Tag, make_tag
from repro.crypto.chacha20 import chacha20_decrypt, chacha20_encrypt
from repro.crypto.hashing import rolling_xor_hash, xor_fold
from repro.filters.bloom import BloomFilter
from repro.filters.params import estimate_fpp, size_for_capacity
from repro.ndn.name import Name
from repro.sim.engine import Simulator
from repro.workload.zipf import ZipfSampler

# Keys shared across examples (generation is the expensive part).
_SIGNER = None


def signer():
    global _SIGNER
    if _SIGNER is None:
        from repro.crypto.sim_signature import SimulatedKeyPair

        _SIGNER = SimulatedKeyPair.generate(random.Random(424242))
    return _SIGNER


name_components = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
        min_size=1,
        max_size=8,
    ),
    max_size=6,
)


class TestNameProperties:
    @given(name_components)
    def test_uri_roundtrip(self, components):
        name = Name(components)
        assert Name(name.to_uri()) == name

    @given(name_components, name_components)
    def test_concatenation_prefix(self, a, b):
        combined = Name(list(a) + list(b))
        assert Name(a).is_prefix_of(combined)

    @given(name_components)
    def test_prefix_of_self(self, components):
        name = Name(components)
        assert name.is_prefix_of(name)

    @given(name_components)
    def test_hash_consistent_with_equality(self, components):
        assert hash(Name(components)) == hash(Name(list(components)))


class TestBloomProperties:
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=300))
    def test_no_false_negatives_ever(self, items):
        bloom = BloomFilter(capacity=300)
        for item in items:
            bloom.insert(item)
        assert all(bloom.contains(item) for item in items)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.floats(min_value=1e-6, max_value=0.5),
        st.integers(min_value=1, max_value=10),
    )
    def test_sizing_meets_target(self, capacity, fpp, k):
        m = size_for_capacity(capacity, fpp, k)
        assert estimate_fpp(m, k, capacity) <= fpp * 1.001

    @given(st.integers(min_value=1, max_value=1000))
    def test_fpp_estimate_in_unit_interval(self, n):
        assert 0.0 <= estimate_fpp(1000, 5, n) <= 1.0


class TestXorPathProperties:
    @given(st.lists(st.text(min_size=1, max_size=10), max_size=8))
    def test_permutation_invariant(self, ids):
        shuffled = list(ids)
        random.Random(0).shuffle(shuffled)
        assert rolling_xor_hash(ids) == rolling_xor_hash(shuffled)

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_xor_fold_involution(self, a, b):
        assert xor_fold(xor_fold(a, b), b) == a


class TestChaChaProperties:
    @given(st.binary(max_size=512), st.integers(min_value=0, max_value=2**31))
    def test_roundtrip(self, plaintext, counter):
        key, nonce = b"K" * 32, b"N" * 12
        ciphertext = chacha20_encrypt(key, nonce, plaintext, counter)
        assert chacha20_decrypt(key, nonce, ciphertext, counter) == plaintext

    @given(st.binary(min_size=1, max_size=256))
    def test_ciphertext_differs_from_plaintext(self, plaintext):
        ciphertext = chacha20_encrypt(b"K" * 32, b"N" * 12, plaintext)
        assert len(ciphertext) == len(plaintext)
        # For non-degenerate inputs the keystream flips something.
        if len(plaintext) >= 8:
            assert ciphertext != plaintext


class TestTagProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(
        st.integers(min_value=0, max_value=10) | st.none(),
        st.binary(min_size=32, max_size=32),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_sign_verify_roundtrip(self, level, path, expiry):
        tag = make_tag(
            "/prov-x/KEY/pub", "/client-y/KEY/pub", level, path, expiry, signer()
        )
        assert tag.verify_signature(signer().public)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_distinct_paths_distinct_cache_keys(self, path_a, path_b):
        a = make_tag("/p/KEY/pub", "/c/KEY/pub", 1, path_a, 10.0, signer())
        b = make_tag("/p/KEY/pub", "/c/KEY/pub", 1, path_b, 10.0, signer())
        assert (a.cache_key() == b.cache_key()) == (path_a == path_b)


class TestAccessLevelProperties:
    @given(
        st.integers(min_value=0, max_value=100) | st.none(),
        st.integers(min_value=0, max_value=100) | st.none(),
        st.integers(min_value=0, max_value=100) | st.none(),
    )
    def test_hierarchy_transitivity(self, a, b, c):
        # If tag A dominates content B's level requirement and a tag at
        # B's level dominates C, then A dominates C (when defined).
        if a is not None and b is not None and c is not None:
            if satisfies(a, b) and satisfies(b, c):
                assert satisfies(a, c)

    @given(st.integers(min_value=0, max_value=100) | st.none())
    def test_public_always_accessible(self, tag_level):
        assert satisfies(tag_level, None)


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
    def test_execution_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    def test_samples_in_range_and_cdf_complete(self, n, alpha):
        sampler = ZipfSampler(n, alpha, random.Random(1))
        assert all(0 <= sampler.sample() < n for _ in range(20))
        assert sampler._cdf[-1] == 1.0

    @given(st.integers(min_value=2, max_value=500))
    def test_probability_monotone_decreasing(self, n):
        sampler = ZipfSampler(n, 0.7, random.Random(1))
        probs = [sampler.probability(i) for i in range(n)]
        assert all(x >= y - 1e-12 for x, y in zip(probs, probs[1:]))
