"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_sequence():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=1)
    sim.schedule(1.0, fired.append, "high", priority=0)
    sim.run()
    assert fired == ["high", "low"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 5.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    sim.cancel(event)
    sim.run()
    assert fired == ["kept"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, fired.append, "nested")

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "nested"]
    assert sim.now == 2.0


def test_stop_halts_run_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.pending() == 1


def test_step_executes_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_run_reentry_rejected():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_determinism_across_instances():
    def run_once():
        sim = Simulator(seed=42)
        values = []
        rng = sim.rng.stream("test")
        for i in range(10):
            sim.schedule(rng.random(), values.append, i)
        sim.run()
        return values

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# step() must route through the same hooks as run()
# ---------------------------------------------------------------------------
def _drain_by_stepping(sim):
    while sim.step():
        pass


def test_step_feeds_sanitizer_like_run():
    from repro.qa.simsan import SimSan

    def build(san=None):
        sim = Simulator(seed=7)
        if san is not None:
            sim.sanitizer = san
        rng = sim.rng.stream("load")
        for i in range(20):
            sim.schedule(rng.random() * 5.0, lambda: None)
        return sim

    ran = SimSan(mode="collect", hash_events=True)
    sim = build(ran)
    sim.run()

    stepped = SimSan(mode="collect", hash_events=True)
    sim2 = build(stepped)
    _drain_by_stepping(sim2)

    assert stepped.events_seen == ran.events_seen == 20
    assert stepped.stream_digest() == ran.stream_digest()


def test_step_feeds_profiler_like_run():
    from repro.obs.profiler import SimProfiler

    def build(profiler):
        sim = Simulator(seed=7)
        sim.profiler = profiler
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        return sim

    ran = SimProfiler()
    sim = build(ran)
    sim.run()

    stepped = SimProfiler()
    sim2 = build(stepped)
    _drain_by_stepping(sim2)

    assert stepped.events == ran.events == 5


def test_step_sanitizer_takes_precedence_over_profiler():
    from repro.obs.profiler import SimProfiler
    from repro.qa.simsan import SimSan

    sim = Simulator(seed=7)
    san = SimSan(mode="collect", hash_events=True)
    profiler = SimProfiler()
    sim.sanitizer = san
    sim.profiler = profiler
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None)
    _drain_by_stepping(sim)
    assert san.events_seen == 3
    assert profiler.events == 0


def test_step_feeds_perf_like_run():
    from repro.obs.perf import PerfObservatory

    def build(perf):
        sim = Simulator(seed=7)
        sim.perf = perf
        rng = sim.rng.stream("load")
        for i in range(12):
            sim.schedule(rng.random() * 5.0, lambda: None)
        victim = sim.schedule(2.5, lambda: None)
        sim.cancel(victim)
        return sim

    ran = PerfObservatory()
    sim = build(ran)
    sim.run()

    stepped = PerfObservatory()
    sim2 = build(stepped)
    _drain_by_stepping(sim2)

    assert stepped.events == ran.events == 12
    assert sim2.events_executed == sim.events_executed
    assert stepped.handler_calls == ran.handler_calls
    # The only permitted difference: run() wraps the whole loop in the
    # engine.loop envelope phase; step() has no loop to envelope.
    run_calls = dict(ran.calls)
    assert run_calls.pop("engine.loop") == 1
    assert "engine.loop" not in stepped.calls
    assert stepped.calls == run_calls


def test_step_perf_composes_with_sanitizer():
    from repro.obs.perf import PerfObservatory
    from repro.qa.simsan import SimSan

    sim = Simulator(seed=7)
    perf = PerfObservatory()
    san = SimSan(mode="collect", hash_events=True)
    sim.perf = perf
    sim.sanitizer = san
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None)
    _drain_by_stepping(sim)
    assert perf.events == 3
    assert san.events_seen == 3
