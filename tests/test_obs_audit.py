"""Decision auditing: the ground-truth oracle's labels, the shadow-set
Bloom mirror, summary determinism/merging, the binomial-CI check, and
the zero-cost-off guarantee (audited runs are bit-identical)."""

from __future__ import annotations

import json

from repro.core.access_path import expected_access_path
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Interest
from repro.obs.audit import (
    DECISION_KINDS,
    DecisionAudit,
    LABEL_CORRECT,
    LABEL_FALSE_NEGATIVE,
    LABEL_FALSE_POSITIVE,
    audit_enabled,
    audit_metrics,
    fp_confidence,
    maybe_audit,
    merge_audit_summaries,
    render_audit_report,
)

from tests.conftest import build_mini_net


class Probe(Node):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.datas = []
        self.nacks = []

    def on_data(self, data, in_face):
        self.datas.append(data)

    def on_nack(self, nack, in_face):
        self.nacks.append(nack)


def audited_net():
    net = build_mini_net()
    audit = DecisionAudit().attach(net.network)
    probe = Probe(net.sim, "probe")
    net.network.add_node(probe, routable=False)
    net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
    return net, audit, probe


def issue_tag(net, user_id="probe", level=3, ap_ids=("ap-0",)):
    net.provider.directory.enroll(user_id, level)
    return net.provider.issue_tag_direct(user_id, expected_access_path(ap_ids))


def request(net, probe, tag, name="/prov-0/obj-0/chunk-0"):
    net.sim.schedule(0.0, probe.faces[0].send, Interest(name=Name(name), tag=tag))
    net.run()


def decisions(summary, node_id):
    return summary["nodes"][node_id]["decisions"]


# ---------------------------------------------------------------------------
# Oracle labels on the live protocol path
# ---------------------------------------------------------------------------
class TestOracleEndToEnd:
    def test_valid_flow_is_all_correct(self):
        net, audit, probe = audited_net()
        request(net, probe, issue_tag(net))
        assert len(probe.datas) == 1
        totals = audit.summary()["totals"]
        assert totals["decisions"] > 0
        assert totals[LABEL_FALSE_POSITIVE] == 0
        assert totals[LABEL_FALSE_NEGATIVE] == 0
        assert totals[LABEL_CORRECT] == totals["decisions"]

    def test_edge_miss_then_hit_tracked_by_shadow(self):
        net, audit, probe = audited_net()
        tag = issue_tag(net)
        request(net, probe, tag)
        # First pass: the edge BF missed (tag not yet inserted).
        edge = decisions(audit.summary(), "edge-0")
        assert edge.get("bf_miss|miss|correct", 0) >= 1
        # Second pass: the content delivery inserted the tag, so the
        # next lookup is a *true* hit against the shadow.
        net.sim.schedule(0.0, probe.faces[0].send,
                         Interest(name=Name("/prov-0/obj-0/chunk-1"), tag=tag))
        net.run()
        edge = decisions(audit.summary(), "edge-0")
        assert edge.get("bf_hit|hit|correct", 0) >= 1
        assert audit.summary()["nodes"]["edge-0"]["bf_false_positives"] == 0

    def test_forged_tag_denial_is_correct_not_false_negative(self):
        net, audit, probe = audited_net()
        tag = issue_tag(net)
        forged = type(tag)(
            provider_key_locator=tag.provider_key_locator,
            client_key_locator=tag.client_key_locator,
            access_level=tag.access_level,
            access_path=tag.access_path,
            expiry=tag.expiry,
            signature=b"x" * 32,
        )
        request(net, probe, forged)
        assert probe.datas == []
        summary = audit.summary()
        totals = summary["totals"]
        # Denying a never-issued tag is the system working as intended.
        assert totals[LABEL_FALSE_NEGATIVE] == 0
        assert totals[LABEL_FALSE_POSITIVE] == 0
        invalid = [
            key
            for node in summary["nodes"].values()
            for key in node["decisions"]
            if key.startswith("sig_verify|invalid|")
        ]
        assert invalid == ["sig_verify|invalid|correct"]

    def test_roles_assigned_per_node(self):
        net, audit, probe = audited_net()
        request(net, probe, issue_tag(net))
        summary = audit.summary()
        assert summary["nodes"]["edge-0"]["role"] == "edge"
        assert summary["nodes"]["core-0"]["role"] == "core"
        assert summary["nodes"]["prov-0"]["role"] == "provider"
        assert summary["issued_tags"] == 1

    def test_provider_feeds_issuance_registry(self):
        net, audit, probe = audited_net()
        tag = issue_tag(net)
        assert audit._genuinely_valid(tag.cache_key())


# ---------------------------------------------------------------------------
# Oracle labels, site by site
# ---------------------------------------------------------------------------
class TestOracleLabels:
    """Direct hook-level checks against a live router node."""

    def _edge(self):
        net, audit, _ = audited_net()
        return net, audit, net.edge

    def test_bf_hit_without_shadow_membership_is_false_positive(self):
        net, audit, edge = self._edge()
        audit.note_bf_lookup(edge, b"never-inserted", found=True, cost=0.0)
        summary = audit.summary()
        assert decisions(summary, "edge-0")["bf_hit|hit|false_positive"] == 1
        assert summary["nodes"]["edge-0"]["bf_false_positives"] == 1
        assert summary["nodes"]["edge-0"]["bf_negative_lookups"] == 1

    def test_bf_negative_lookup_accumulates_theoretical_fpp(self):
        net, audit, edge = self._edge()
        edge.bloom.insert(b"k1")
        audit.note_bf_insert(edge, b"k1", reset_fired=False)
        audit.note_bf_lookup(edge, b"other", found=False, cost=0.0)
        state = audit.summary()["nodes"]["edge-0"]
        assert state["expected_fp_sum"] > 0.0
        assert 0.0 < state["expected_fp_var"] <= state["expected_fp_sum"]

    def test_saturation_reset_clears_the_shadow(self):
        net, audit, edge = self._edge()
        audit.note_bf_insert(edge, b"k1", reset_fired=False)
        audit.note_bf_insert(edge, b"k2", reset_fired=True)
        # The auto-reset wipes the filter after the insert, so neither
        # key survives: a subsequent miss on k1 is *correct*.
        audit.note_bf_lookup(edge, b"k1", found=False, cost=0.0)
        assert decisions(audit.summary(), "edge-0")["bf_miss|miss|correct"] == 1

    def test_nack_on_genuine_tag_is_false_negative(self):
        net, audit, edge = self._edge()
        tag = issue_tag(net, user_id="u1")
        audit.note_nack(edge, tag.cache_key(), "expired")
        audit.note_nack(edge, b"unknown", "invalid_signature")
        got = decisions(audit.summary(), "edge-0")
        assert got["nack|expired|false_negative"] == 1
        assert got["nack|invalid_signature|correct"] == 1

    def test_revoked_tag_denial_is_correct(self):
        net, audit, edge = self._edge()
        tag = issue_tag(net, user_id="u1")
        edge.revoke_tag_key(tag.cache_key())
        # Once revoked, NACKing the (formerly genuine) tag is correct.
        audit.note_nack(edge, tag.cache_key(), "revoked")
        got = decisions(audit.summary(), "edge-0")
        assert got["revoked|blacklist|correct"] == 1
        assert got["nack|revoked|correct"] == 1
        assert audit.summary()["revoked_tags"] == 1

    def test_f_recheck_skip_on_bogus_tag_is_false_positive(self):
        net, audit, edge = self._edge()
        genuine = issue_tag(net, user_id="u1")

        class FakeTag:
            def cache_key(self):
                return b"bogus"

        audit.note_f_recheck(edge, FakeTag(), fired=False, flag=0.01)
        audit.note_f_recheck(edge, genuine, fired=False, flag=0.01)
        audit.note_f_recheck(edge, FakeTag(), fired=True, flag=0.01)
        got = decisions(audit.summary(), "edge-0")
        assert got["f_recheck|skipped|false_positive"] == 1
        assert got["f_recheck|skipped|correct"] == 1
        assert got["f_recheck|fired|correct"] == 1

    def test_sig_verify_accepting_unissued_tag_is_false_positive(self):
        net, audit, edge = self._edge()

        class FakeTag:
            def cache_key(self):
                return b"forged"

        audit.note_sig_verify(edge, FakeTag(), valid=True, cost=0.0)
        got = decisions(audit.summary(), "edge-0")
        assert got["sig_verify|valid|false_positive"] == 1


# ---------------------------------------------------------------------------
# Record retention, sink, and trace emission
# ---------------------------------------------------------------------------
class TestRecordMaterialisation:
    def test_aggregate_only_by_default(self):
        net, audit, probe = audited_net()
        request(net, probe, issue_tag(net))
        assert audit.records == []
        assert audit.records_dropped == 0

    def test_max_records_caps_retention(self):
        net = build_mini_net()
        audit = DecisionAudit(max_records=3).attach(net.network)
        for i in range(5):
            audit.record_decision("bf_miss", net.edge, outcome="miss")
        assert len(audit.records) == 3
        assert audit.records_dropped == 2
        record = audit.records[0]
        assert record.kind == "bf_miss"
        assert record.role == "edge"
        assert json.dumps(record.to_json_dict())  # JSON-able

    def test_sink_sees_every_record(self):
        net = build_mini_net()
        seen = []
        audit = DecisionAudit(sink=seen.append).attach(net.network)
        audit.record_decision("nack", net.edge, outcome="expired")
        assert [r.kind for r in seen] == ["nack"]

    def test_trace_subscriber_gets_audit_decision_events(self):
        net, audit, probe = audited_net()
        events = []
        net.sim.trace.subscribe("audit.decision", events.append)
        request(net, probe, issue_tag(net))
        assert events
        payload = events[0].payload
        assert payload["decision"] in DECISION_KINDS
        assert payload["label"] == LABEL_CORRECT
        assert payload["node"]


# ---------------------------------------------------------------------------
# Summaries: determinism, merging, CI check, metrics
# ---------------------------------------------------------------------------
def _run_summary():
    net, audit, probe = audited_net()
    request(net, probe, issue_tag(net))
    return audit.summary()


class TestSummary:
    def test_summary_is_deterministic(self):
        first, second = _run_summary(), _run_summary()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_summary_json_round_trips(self):
        summary = _run_summary()
        assert json.loads(json.dumps(summary)) == summary

    def test_merge_into_empty_copies(self):
        summary = _run_summary()
        merged = merge_audit_summaries({}, summary)
        assert merged == summary
        merged["totals"]["decisions"] += 1
        assert merged != summary  # deep copy, not aliased

    def test_merge_doubles_counts(self):
        summary = _run_summary()
        merged = merge_audit_summaries({}, summary)
        merge_audit_summaries(merged, summary)
        assert merged["totals"]["decisions"] == 2 * summary["totals"]["decisions"]
        assert merged["issued_tags"] == 2 * summary["issued_tags"]
        for node_id, node in summary["nodes"].items():
            assert (
                merged["nodes"][node_id]["expected_fp_sum"]
                == 2 * node["expected_fp_sum"]
            )

    def test_merge_is_order_stable_for_counts(self):
        a, b = _run_summary(), _run_summary()
        b["nodes"]["edge-0"]["decisions"]["bf_miss|miss|correct"] = 99
        ab = merge_audit_summaries(merge_audit_summaries({}, a), b)
        ba = merge_audit_summaries(merge_audit_summaries({}, b), a)
        assert ab["totals"] == ba["totals"]

    def test_fleet_fp_within_binomial_ci(self):
        summary = _run_summary()
        confidence = fp_confidence(summary)
        assert confidence["fleet"]["within_ci"]
        assert confidence["fleet"]["lookups"] > 0
        for entry in confidence["nodes"].values():
            assert entry["within_ci"]

    def test_ci_flags_an_implausible_fp_count(self):
        summary = _run_summary()
        summary["nodes"]["edge-0"]["bf_false_positives"] = 1000
        confidence = fp_confidence(summary)
        assert not confidence["nodes"]["edge-0"]["within_ci"]

    def test_audit_metrics_flattens_for_history(self):
        summary = _run_summary()
        metrics = audit_metrics(summary)
        assert metrics["audit.decisions_total"] == summary["totals"]["decisions"]
        assert metrics["audit.false_positives"] == 0
        assert metrics["audit.edge-0.bf_misauth_rate"] == 0.0
        assert json.loads(json.dumps(metrics)) == metrics

    def test_render_report_covers_nodes_and_fleet(self):
        lines = render_audit_report(_run_summary())
        text = "\n".join(lines)
        assert "edge-0" in text and "fleet" in text
        assert "OUT-OF-CI" not in text


# ---------------------------------------------------------------------------
# Zero-cost off: audited runs are bit-identical to unaudited ones
# ---------------------------------------------------------------------------
class TestZeroCostOff:
    def test_audited_run_matches_unaudited_bit_for_bit(self):
        from repro.exec import ScenarioSpec
        from repro.exec.engine import _execute_spec

        spec = ScenarioSpec.make(
            seed=5, topology=1, duration=2.0, scale=0.1, hash_events=True
        )
        plain = _execute_spec(spec)
        audited = _execute_spec(spec, audit=True)
        assert plain.metrics_dict() == audited.metrics_dict()
        assert plain.event_digest == audited.event_digest
        assert plain.event_digest  # the digest actually covers events
        assert audited.audit is not None
        assert audited.audit["totals"]["decisions"] > 0
        assert plain.audit is None

    def test_runner_audit_matches_unaudited_metrics(self):
        scenario = Scenario.paper_topology(1, duration=2.0, seed=5, scale=0.1)
        plain = run_scenario(scenario)
        audited = run_scenario(scenario, audit=DecisionAudit())
        assert plain.to_summary().metrics_dict() == \
            audited.to_summary().metrics_dict()
        assert audited.audit is not None
        assert audited.audit.summary()["totals"]["decisions"] > 0
        assert plain.audit is None


# ---------------------------------------------------------------------------
# Telemetry bridge
# ---------------------------------------------------------------------------
class TestTelemetryBridge:
    def test_audit_tallies_become_labeled_metrics(self, tmp_path):
        from repro.obs.session import TelemetryConfig

        scenario = Scenario.paper_topology(1, duration=2.0, seed=5, scale=0.1)
        config = TelemetryConfig(metrics_path=str(tmp_path / "m.json"))
        result = run_scenario(scenario, telemetry=config,
                              audit=DecisionAudit())
        snapshot = result.telemetry.registry.snapshot()
        decisions = snapshot["audit_decisions_total"]["samples"]
        assert decisions
        assert sum(s["value"] for s in decisions) == \
            result.audit.summary()["totals"]["decisions"]
        rates = snapshot["audit_bf_misauth_rate"]["samples"]
        assert rates and all(s["value"] == 0.0 for s in rates)
        assert "audit_bf_expected_rate" in snapshot


# ---------------------------------------------------------------------------
# Environment gating
# ---------------------------------------------------------------------------
class TestEnvGating:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        monkeypatch.delenv("REPRO_AUDIT_OUT", raising=False)
        assert not audit_enabled()
        assert maybe_audit() is None

    def test_audit_env_opts_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert audit_enabled()
        assert isinstance(maybe_audit(), DecisionAudit)

    def test_falsey_values_stay_off(self, monkeypatch):
        for raw in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_AUDIT", raw)
            assert not audit_enabled()

    def test_audit_out_implies_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        monkeypatch.setenv("REPRO_AUDIT_OUT", "/tmp/report.json")
        assert audit_enabled()
