"""Golden-equivalence property tests for the sim-core speed overhaul.

The hot-path rewrite (precomputed TLV sizes, packed PIT/CS entries,
memoized FIB lookups, the restructured ``_drain`` dispatch loop, and
the optional ``SIM_KERNEL=c`` compiled loop) is only admissible if it
is *behavior-preserving*.  These tests pin that down property-style:
each optimized structure is driven with randomized workloads next to a
straightforward reference implementation of the seed semantics, and
every observable — sizes, occupancy traces, hit/miss sequences,
dispatch order — must match exactly.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.core.tag import Tag
from repro.ndn.cs import ContentStore
from repro.ndn.fib import Fib
from repro.ndn.name import Name
from repro.ndn.packets import (
    ACCESS_PATH_SIZE,
    DATA_BASE_SIZE,
    INTEREST_BASE_SIZE,
    NACK_BASE_SIZE,
    SIGNATURE_SIZE,
    Data,
    Interest,
    Nack,
    NackReason,
)
from repro.ndn.pit import Pit, PitRecord
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# TLV wire sizes: precomputed caches vs the seed formulas
# ----------------------------------------------------------------------

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-"


def _random_name(rng: random.Random, max_depth: int = 6) -> Name:
    depth = rng.randrange(0, max_depth + 1)
    components = [
        "".join(rng.choice(_ALPHABET) for _ in range(rng.randrange(1, 12)))
        for _ in range(depth)
    ]
    return Name("/" + "/".join(components)) if components else Name("/")


def _reference_name_size(name: Name) -> int:
    # The seed's per-call formula: 2 TLV bytes per component plus the
    # component payloads.
    return 2 * len(name.components) + sum(len(c) for c in name.components)


def _random_tag(rng: random.Random, signed: bool = True) -> Tag:
    tag = Tag(
        provider_key_locator=f"/prov-{rng.randrange(8)}/KEY/pub",
        client_key_locator=f"/client-{rng.randrange(32)}/KEY/pub",
        access_level=rng.choice([None, 0, 1, 2, 3]),
        access_path=bytes(rng.randrange(256) for _ in range(32)),
        expiry=rng.random() * 100.0,
        signature=bytes(rng.randrange(256) for _ in range(64)) if signed else b"",
    )
    return tag


def _reference_tag_size(tag: Tag) -> int:
    fixed = 8 + 4 + 32  # expiry + access level + access path
    return (
        len(tag.provider_key_locator)
        + len(tag.client_key_locator)
        + fixed
        + len(tag.signature)
    )


def test_name_size_cache_matches_seed_formula():
    rng = random.Random(101)
    for _ in range(300):
        name = _random_name(rng)
        assert name.encoded_size() == _reference_name_size(name)
        # Derived names carry their own (fresh) precomputed size.
        if len(name):
            prefix = name.prefix(rng.randrange(1, len(name) + 1))
            assert prefix.encoded_size() == _reference_name_size(prefix)


def test_tag_size_cache_matches_seed_formula():
    rng = random.Random(102)
    for _ in range(200):
        tag = _random_tag(rng, signed=rng.random() < 0.8)
        expected = _reference_tag_size(tag)
        assert tag.encoded_size() == expected
        assert tag.encoded_size() == expected  # cached second read


def test_packet_sizes_match_seed_formulas():
    rng = random.Random(103)
    for _ in range(200):
        name = _random_name(rng)
        tag = _random_tag(rng) if rng.random() < 0.5 else None
        credentials = (
            bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            if rng.random() < 0.3
            else None
        )
        signature = (
            bytes(rng.randrange(256) for _ in range(64))
            if rng.random() < 0.3
            else b""
        )
        interest = Interest(
            name=name, tag=tag, credentials=credentials,
            client_signature=signature,
        )
        expected = _reference_name_size(name) + INTEREST_BASE_SIZE + ACCESS_PATH_SIZE
        if tag is not None:
            expected += _reference_tag_size(tag)
        if credentials is not None:
            expected += len(credentials)
        expected += len(signature)
        assert interest.size_bytes() == expected

        payload = (
            bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
            if rng.random() < 0.5
            else b""
        )
        payload_size = rng.randrange(0, 1500)
        data = Data(
            name=name, payload=payload, payload_size=payload_size,
            tag=tag if rng.random() < 0.5 else None,
        )
        expected = (
            _reference_name_size(name)
            + DATA_BASE_SIZE
            + (len(payload) if payload else payload_size)
            + SIGNATURE_SIZE
        )
        if data.tag is not None:
            expected += _reference_tag_size(data.tag)
        assert data.size_bytes() == expected

        nack = Nack(name=name, reason=NackReason.NO_ROUTE)
        assert nack.size_bytes() == NACK_BASE_SIZE + _reference_name_size(name)

        # Copies used per-hop must preserve sizes exactly.
        assert interest.copy().size_bytes() == interest.size_bytes()
        assert data.copy().size_bytes() == data.size_bytes()


# ----------------------------------------------------------------------
# PIT: packed entries vs a plain-dict reference model
# ----------------------------------------------------------------------


class _ReferencePit:
    """The seed PIT semantics on plain dicts and tuples — no packing,
    no slots, no type guards.  Counters and return values must agree
    with :class:`repro.ndn.pit.Pit` on every operation."""

    def __init__(self, entry_lifetime: float, capacity: int) -> None:
        self.entry_lifetime = entry_lifetime
        self.capacity = capacity
        self.entries = {}  # name string -> dict(records, created, expires)
        self.expired_records = 0
        self.rejections = 0

    def find(self, name: str, now):
        entry = self.entries.get(name)
        if entry is None:
            return None
        if now is not None and now > entry["expires"]:
            self.expired_records += len(entry["records"])
            del self.entries[name]
            return None
        return entry

    def insert(self, name: str, record, now: float) -> bool:
        entry = self.find(name, now)
        if entry is None:
            if self.capacity and len(self.entries) >= self.capacity:
                self.purge_expired(now)
                if len(self.entries) >= self.capacity:
                    self.rejections += 1
                    return False
            self.entries[name] = {
                "records": [record],
                "created": now,
                "expires": now + self.entry_lifetime,
            }
            return True
        entry["records"].append(record)
        return False

    def consume(self, name: str, now):
        entry = self.find(name, now)
        if entry is not None:
            del self.entries[name]
        return entry

    def purge_expired(self, now: float) -> int:
        dead = [n for n, e in self.entries.items() if now > e["expires"]]
        dropped = 0
        for name in dead:
            dropped += len(self.entries[name]["records"])
            del self.entries[name]
        self.expired_records += dropped
        return dropped


def test_pit_occupancy_trace_matches_reference():
    rng = random.Random(201)
    pit = Pit(entry_lifetime=1.5, capacity=12)
    ref = _ReferencePit(entry_lifetime=1.5, capacity=12)
    names = [f"/prov-{i}/obj-{j}/chunk-{k}"
             for i in range(2) for j in range(4) for k in range(3)]
    now = 0.0
    for step in range(600):
        now += rng.random() * (0.8 if rng.random() < 0.9 else 3.0)
        name = rng.choice(names)
        op = rng.random()
        if op < 0.55:
            record = PitRecord(
                tag=None, flag_f=0.0, in_face=f"face-{step}",
                arrived_at=now, requester_id=f"client-{step % 5}",
            )
            created = pit.insert(name, record, now)
            ref_created = ref.insert(name, record, now)
            assert created == ref_created, f"step {step}: insert diverged"
        elif op < 0.8:
            entry = pit.consume(name, now)
            ref_entry = ref.consume(name, now)
            assert (entry is None) == (ref_entry is None)
            if entry is not None:
                assert len(entry.records) == len(ref_entry["records"])
                assert entry.created_at == ref_entry["created"]
                assert entry.expires_at == ref_entry["expires"]
        elif op < 0.95:
            entry = pit.find(name, now)
            ref_entry = ref.find(name, now)
            assert (entry is None) == (ref_entry is None)
            if entry is not None:
                assert [r.in_face for r in entry.records] == [
                    r.in_face for r in ref_entry["records"]
                ]
        else:
            assert pit.purge_expired(now) == ref.purge_expired(now)
        # Occupancy trace: same size, same keys, same counters.
        assert len(pit) == len(ref.entries), f"step {step}: occupancy diverged"
        assert {str(n) for n in pit._entries} == set(ref.entries)
        assert pit.expired_records == ref.expired_records
        assert pit.rejections == ref.rejections


# ----------------------------------------------------------------------
# CS: packed entries vs an order-list reference model, per policy
# ----------------------------------------------------------------------


class _ReferenceCs:
    """Seed content-store semantics on a plain dict + explicit order
    list (insertion/recency order, front = next victim)."""

    def __init__(self, capacity: int, policy: str) -> None:
        self.capacity = capacity
        self.policy = policy
        self.store = {}  # name string -> payload marker
        self.order = []  # front = oldest
        self.frequency = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def insert(self, name: str, marker) -> None:
        if self.capacity <= 0:
            return
        if name in self.store:
            if self.policy == "lru":
                self.order.remove(name)
                self.order.append(name)
            self.store[name] = marker
            return
        self.store[name] = marker
        self.order.append(name)
        self.frequency.setdefault(name, 0)
        if len(self.store) > self.capacity:
            if self.policy == "lfu":
                victim = min(self.store, key=lambda n: (self.frequency.get(n, 0),))
            else:
                victim = self.order[0]
            self.order.remove(victim)
            del self.store[victim]
            self.frequency.pop(victim, None)
            self.evictions += 1

    def lookup(self, name: str):
        marker = self.store.get(name)
        if marker is None:
            self.misses += 1
            return None
        if self.policy == "lru":
            self.order.remove(name)
            self.order.append(name)
        elif self.policy == "lfu":
            self.frequency[name] = self.frequency.get(name, 0) + 1
        self.hits += 1
        return marker


@pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
def test_cs_occupancy_trace_matches_reference(policy):
    rng = random.Random(301)
    cs = ContentStore(capacity=8, policy=policy)
    ref = _ReferenceCs(capacity=8, policy=policy)
    names = [f"/prov-0/obj-{i}/chunk-0" for i in range(20)]
    for step in range(500):
        name = rng.choice(names)
        if rng.random() < 0.5:
            cs.insert(Data(name=Name(name), payload=b"x" * (step % 7)))
            ref.insert(name, step)
        else:
            got = cs.lookup(name)
            ref_got = ref.lookup(name)
            assert (got is None) == (ref_got is None), f"step {step}"
        assert len(cs) == len(ref.store), f"step {step}: occupancy diverged"
        assert {str(n) for n in cs._store} == set(ref.store)
        assert (cs.hits, cs.misses, cs.evictions) == (
            ref.hits, ref.misses, ref.evictions,
        ), f"step {step}: counters diverged"


# ----------------------------------------------------------------------
# FIB: memoized longest-prefix match vs a fresh walk every time
# ----------------------------------------------------------------------


def _reference_lpm(entries, components):
    for length in range(len(components), -1, -1):
        hops = entries.get(components[:length])
        if hops is not None:
            return hops
    return []


def test_fib_memo_matches_unmemoized_walk():
    rng = random.Random(401)
    fib = Fib()
    shadow = {}  # component tuple -> list of (face, cost), seed order
    prefixes = ["/", "/prov-0", "/prov-0/premium", "/prov-1", "/prov-1/a/b"]
    faces = [f"face-{i}" for i in range(4)]
    for step in range(400):
        op = rng.random()
        if op < 0.25:
            prefix, face = rng.choice(prefixes), rng.choice(faces)
            cost = rng.randrange(10)
            fib.add(prefix, face=face, cost=cost)
            key = Name(prefix).components
            hops = [h for h in shadow.get(key, []) if h[0] is not face]
            hops.append((face, cost))
            hops.sort(key=lambda h: h[1])
            shadow[key] = hops
        elif op < 0.3:
            prefix = rng.choice(prefixes)
            fib.remove(prefix)
            shadow.pop(Name(prefix).components, None)
        else:
            name = rng.choice(prefixes) + rng.choice(
                ["", "/obj", "/obj/chunk", "/x/y/z"]
            )
            got = [(h.face, h.cost) for h in fib.lookup_nexthops(name)]
            expected = _reference_lpm(shadow, Name(name).components)
            assert got == [(f, c) for f, c in expected], f"step {step}: {name}"


# ----------------------------------------------------------------------
# Dispatch: restructured _drain (and the C kernel) vs the seed loop
# ----------------------------------------------------------------------


def _drain_seed_loop(sim: Simulator, until=None) -> None:
    """The seed repo's dispatch loop, verbatim (the reference the
    benchmark's replica also uses)."""
    heap = sim._heap
    while heap and not sim._stopped:
        event = heap[0][3]
        if event.cancelled:
            heapq.heappop(heap)
            continue
        if until is not None and event.time > until:
            break
        heapq.heappop(heap)
        sim._live -= 1
        event.on_cancel = None
        sim._now = event.time
        sim.events_executed += 1
        event.callback(*event.args)


def _build_workload(sim: Simulator, n: int = 200, seed: int = 7):
    """A self-randomizing event workload: callbacks reschedule, cancel,
    and collide on timestamps, driven by a per-simulator RNG.  If two
    loops dispatch in the same order they draw identically and produce
    identical traces; any order divergence amplifies immediately."""
    trace = []
    rng = random.Random(seed)
    pending = []

    def fire(tag):
        trace.append((round(sim._now, 9), tag))
        roll = rng.random()
        if roll < 0.5 and tag < n * 4:
            delay = round(rng.random() * 0.02, 6)
            pending.append(sim.schedule(delay, fire, tag + n))
        elif roll < 0.65 and pending:
            pending.pop(rng.randrange(len(pending))).cancel()

    for i in range(n):
        sim.schedule_at(
            round(rng.random(), 6), fire, i, priority=rng.randrange(3)
        )
    for i in range(25):  # same-timestamp burst with priority ties
        sim.schedule_at(0.5, fire, 10_000 + i, priority=i % 2)
    return trace


def _dispatch_digest(runner, until=None, n=200, seed=7):
    sim = Simulator(seed=3)
    trace = _build_workload(sim, n=n, seed=seed)
    runner(sim, until)
    return trace, sim.events_executed, sim._now, sim._live


def test_drain_matches_seed_loop():
    for until in (None, 0.6):
        got = _dispatch_digest(lambda sim, u: sim._drain(u), until)
        expected = _dispatch_digest(_drain_seed_loop, until)
        assert got == expected


def test_run_matches_seed_loop_full():
    got = _dispatch_digest(lambda sim, u: sim.run(), None)
    expected = _dispatch_digest(_drain_seed_loop, None)
    assert got == expected


def test_observed_loop_matches_seed_loop():
    from repro.obs.perf import PerfObservatory

    def observed(sim, until):
        sim.perf = PerfObservatory()
        sim.run(until)

    got = _dispatch_digest(observed, None)
    expected = _dispatch_digest(_drain_seed_loop, None)
    assert got == expected


def _load_ckernel():
    try:
        from repro.sim._ckernel import load_kernel

        return load_kernel()
    except Exception as exc:  # no compiler / headers on this host
        pytest.skip(f"compiled kernel unavailable: {exc}")


def test_c_kernel_matches_seed_loop():
    kernel = _load_ckernel()
    for until in (None, 0.6):
        got = _dispatch_digest(lambda sim, u: kernel(sim, u), until)
        expected = _dispatch_digest(_drain_seed_loop, until)
        assert got == expected


def test_c_kernel_matches_python_drain_on_larger_workload():
    kernel = _load_ckernel()
    got = _dispatch_digest(lambda sim, u: kernel(sim, u), None, n=800, seed=11)
    expected = _dispatch_digest(lambda sim, u: sim._drain(u), None, n=800, seed=11)
    assert got == expected
