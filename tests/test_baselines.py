"""Unit tests for the baseline scheme specs and their node classes."""

import pytest

from repro.baselines import (
    CLIENT_SIDE_SCHEME,
    NO_BLOOM_SCHEME,
    PROVIDER_AUTH_SCHEME,
    PlainProvider,
    PlainRouter,
)
from repro.core.config import TacticConfig
from repro.core.metrics import MetricsCollector
from repro.crypto.cost_model import ZERO_COST_MODEL
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.node import Node
from repro.ndn.packets import Interest
from repro.sim.engine import Simulator


@pytest.fixture
def config():
    return TacticConfig(cost_model=ZERO_COST_MODEL)


class TestConfigTransforms:
    def test_no_bloom_disables_filters(self, config):
        transformed = NO_BLOOM_SCHEME.config_transform(config)
        assert transformed.use_bloom_filters is False
        assert config.use_bloom_filters is True  # original untouched

    def test_provider_auth_disables_caching(self, config):
        transformed = PROVIDER_AUTH_SCHEME.config_transform(config)
        assert transformed.cs_capacity == 0
        assert transformed.edge_cs_capacity == 0
        assert transformed.use_bloom_filters is False

    def test_client_side_keeps_caching(self, config):
        transformed = CLIENT_SIDE_SCHEME.config_transform(config)
        assert transformed.cs_capacity == config.cs_capacity
        assert CLIENT_SIDE_SCHEME.clients_register is False


class TestPlainRouter:
    def test_edge_factory_disables_cache(self, config):
        sim = Simulator()
        store = CertificateStore()
        edge = CLIENT_SIDE_SCHEME.make_edge_router(sim, "e", config, store, None)
        core = CLIENT_SIDE_SCHEME.make_core_router(sim, "c", config, store, None)
        assert isinstance(edge, PlainRouter) and isinstance(core, PlainRouter)
        assert edge.cs.capacity == 0
        assert core.cs.capacity == config.cs_capacity


class TestPlainProvider:
    def build(self, config):
        sim = Simulator(seed=1)
        net = Network(sim)
        store = CertificateStore()
        keypair = SimulatedKeyPair.generate(sim.rng.stream("k"))
        provider = PlainProvider(sim, "prov-0", config, store, keypair)
        provider.publish_catalog([1, 2, 3])
        consumer = Node(sim, "consumer", cs_capacity=0)
        net.add_node(provider)
        net.add_node(consumer, routable=False)
        net.connect(consumer, provider)
        return sim, provider, consumer

    def test_serves_private_content_without_tag(self, config):
        sim, provider, consumer = self.build(config)
        got = []
        consumer.on_data = lambda d, f: got.append(d)
        sim.schedule(
            0.0, consumer.faces[0].send, Interest(name=Name("/prov-0/obj-0/chunk-0"))
        )
        sim.run()
        assert len(got) == 1
        assert got[0].nack is None
        assert got[0].access_level == 1  # level still stamped, just unenforced

    def test_registration_still_issues_tags(self, config):
        sim, provider, consumer = self.build(config)
        secret = provider.directory.enroll("consumer", 2)
        got = []
        consumer.on_data = lambda d, f: got.append(d)
        sim.schedule(
            0.0,
            consumer.faces[0].send,
            Interest(name=Name("/prov-0/register/consumer/1"), credentials=secret),
        )
        sim.run()
        assert got[0].is_tag_response()

    def test_unknown_content_dropped(self, config):
        sim, provider, consumer = self.build(config)
        sim.schedule(
            0.0, consumer.faces[0].send, Interest(name=Name("/prov-0/obj-99/chunk-0"))
        )
        sim.run()
        assert provider.unroutable_drops == 1


class TestSchemeSpecShape:
    @pytest.mark.parametrize(
        "spec", [CLIENT_SIDE_SCHEME, NO_BLOOM_SCHEME, PROVIDER_AUTH_SCHEME]
    )
    def test_factories_produce_nodes(self, spec, config):
        sim = Simulator()
        store = CertificateStore()
        metrics = MetricsCollector()
        effective = spec.config_transform(config)
        edge = spec.make_edge_router(sim, "e", effective, store, metrics)
        core = spec.make_core_router(sim, "c", effective, store, metrics)
        keypair = SimulatedKeyPair.generate(sim.rng.stream("kp"))
        provider = spec.make_provider(sim, "p", effective, store, keypair)
        for node in (edge, core, provider):
            assert isinstance(node, Node)
        provider.publish_catalog([1])
        assert len(provider.catalog) == effective.objects_per_provider
