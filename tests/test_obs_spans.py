"""Interest-lifecycle spans: builder semantics and live reconstruction.

The integration tests drive the mini TACTIC topology (client - ap -
edge - core - core - provider) with a live :class:`SpanRecorder` and
assert the acceptance property: every ended span's decomposition
(queue + tx + prop + compute + wait) sums to the client-measured
end-to-end latency within 1e-6.
"""

from __future__ import annotations

import pytest

from repro.obs.spans import (
    SPAN_EVENTS,
    SpanBuilder,
    SpanRecorder,
    spans_from_records,
)
from repro.sim.tracing import TraceRecord
from tests.conftest import attach_client, build_mini_net


def _record(name, time, **payload):
    return TraceRecord(name=name, time=time, payload=payload)


class TestSpanBuilder:
    def test_link_record_expands_to_three_segments(self):
        builder = SpanBuilder()
        builder.add(_record("span.start", 0.0, span=1, node="alice",
                            content="/p/c/0", kind="content"))
        builder.add(_record("span.link", 0.0, span=1, src="alice", dst="ap-0",
                            kind="interest", queue=0.001, tx=0.0005, prop=0.002))
        span = builder.spans[1]
        assert [s.kind for s in span.segments] == ["queue", "tx", "prop"]
        starts = [s.start for s in span.segments]
        assert starts == [0.0, 0.001, 0.0015]
        assert span.covered() == pytest.approx(0.0035)

    def test_aggregated_span_wait_is_derived_remainder(self):
        builder = SpanBuilder()
        builder.add(_record("span.start", 0.0, span=2, node="bob",
                            content="/p/c/0", kind="content"))
        # One hop out (covered 0.003), then the request parks on an
        # existing PIT entry until the other requester's answer returns.
        builder.add(_record("span.link", 0.0, span=2, src="bob", dst="edge-0",
                            kind="interest", queue=0.0, tx=0.001, prop=0.002))
        builder.add(_record("span.pit.wait", 0.003, span=2, node="edge-0"))
        builder.add(_record("span.link", 0.010, span=2, src="edge-0", dst="bob",
                            kind="data", queue=0.0, tx=0.001, prop=0.002))
        builder.add(_record("span.end", 0.013, span=2, node="bob",
                            outcome="data", latency=0.013))
        span = builder.spans[2]
        parts = span.decompose()
        assert parts["wait"] == pytest.approx(0.013 - 0.006)
        assert sum(parts.values()) == pytest.approx(span.latency, abs=1e-12)
        assert [m.kind for m in span.marks] == ["pit.wait"]

    def test_records_after_end_are_ignored(self):
        builder = SpanBuilder()
        builder.add(_record("span.start", 0.0, span=3, node="alice",
                            content="/p/c", kind="content"))
        builder.add(_record("span.end", 1.0, span=3, node="alice",
                            outcome="retransmit", latency=1.0))
        builder.add(_record("span.link", 1.5, span=3, src="edge-0", dst="alice",
                            kind="data", queue=0.0, tx=0.001, prop=0.002))
        builder.add(_record("span.end", 1.5, span=3, node="alice",
                            outcome="data", latency=1.5))
        span = builder.spans[3]
        assert span.outcome == "retransmit"
        assert span.segments == []

    def test_orphan_records_counted_not_fatal(self):
        builder = SpanBuilder()
        builder.add(_record("span.link", 0.0, span=99, src="a", dst="b",
                            kind="interest", queue=0.0, tx=0.0, prop=0.001))
        assert builder.spans == {}
        assert builder.orphans == 1

    def test_compute_and_drop_records(self):
        builder = SpanBuilder()
        builder.add(_record("span.start", 0.0, span=4, node="alice",
                            content="/p/c", kind="content"))
        builder.add(_record("span.compute", 0.001, span=4, node="edge-0",
                            dur=0.0004))
        builder.add(_record("span.drop", 0.002, span=4, src="edge-0",
                            dst="core-0", reason="queue-overflow"))
        span = builder.spans[4]
        assert span.decompose()["compute"] == pytest.approx(0.0004)
        assert span.marks[0].kind == "drop"
        assert span.marks[0].detail == "queue-overflow"


class TestLiveReconstruction:
    def _run_mini(self, clients=("alice",), until=12.0):
        net = build_mini_net()
        recorder = SpanRecorder(net.sim)
        attached = [attach_client(net, cid) for cid in clients]
        for client in attached:
            client.start(at=0.0, until=5.0)
        net.sim.run(until=until)
        recorder.stop()
        return net, recorder, attached

    def test_two_router_decomposition_sums_to_latency(self):
        net, recorder, (alice,) = self._run_mini()
        spans = recorder.spans
        ended = [s for s in spans.values() if s.ended]
        data_spans = [s for s in ended if s.outcome == "data"]
        assert len(data_spans) >= 5
        for span in data_spans:
            parts = span.decompose()
            assert sum(parts.values()) == pytest.approx(span.latency, abs=1e-6)
            assert parts["wait"] >= -1e-9
        # The measured latencies are the same values the figures use.
        sample_latencies = sorted(l for _, l in alice.stats.latency_samples)
        span_latencies = sorted(s.latency for s in data_spans)
        assert span_latencies == pytest.approx(sample_latencies)

    def test_registration_span_ends_with_tag(self):
        _, recorder, _ = self._run_mini()
        registration = [
            s for s in recorder.spans.values() if s.kind == "registration"
        ]
        assert registration and all(s.outcome == "tag" for s in registration)

    def test_every_started_span_ends_after_drain(self):
        _, recorder, _ = self._run_mini(until=20.0)
        assert recorder.spans
        assert all(s.ended for s in recorder.spans.values())

    def test_hop_sequence_matches_topology(self):
        _, recorder, _ = self._run_mini()
        span = next(
            s for s in recorder.spans.values()
            if s.outcome == "data" and s.kind == "content"
        )
        hops = span.hops()
        # Outbound chain starts at the client and climbs the line.
        assert hops[0] == "alice"
        assert "edge-0" in hops

    def test_offline_round_trip_matches_live(self, tmp_path):
        from repro.experiments.tracelog import (
            TraceRecorder,
            read_jsonl,
            write_jsonl,
        )

        net = build_mini_net()
        recorder = TraceRecorder(net.sim, events=SPAN_EVENTS)
        live = SpanRecorder(net.sim)
        client = attach_client(net, "alice")
        client.start(at=0.0, until=4.0)
        net.sim.run(until=10.0)
        recorder.stop()
        live.stop()

        path = tmp_path / "trace.jsonl"
        write_jsonl(recorder.records, str(path))
        offline = spans_from_records(read_jsonl(str(path)))
        assert set(offline) == set(live.spans)
        for span_id, span in offline.items():
            twin = live.spans[span_id]
            assert span.outcome == twin.outcome
            assert span.decompose() == pytest.approx(twin.decompose())
