"""End-to-end telemetry: CLI flags, artifact files, and equivalence.

These tests run real (tiny) scenarios through ``python -m repro``'s
``main`` and through ``run_scenario`` with a telemetry config, then
check the three acceptance properties: parseable artifacts, bridged
counters equal to the figures' OpCounters, and zero change to
published values when telemetry is on.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.obs.session import ROUTER_OPS, TelemetryConfig, current_telemetry


def _tiny_scenario(seed: int = 3) -> Scenario:
    return Scenario.paper_topology(1, duration=2.0, seed=seed, scale=0.1)


class TestCliFlags:
    def test_table4_writes_parseable_artifacts(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "table4",
                "--duration", "2",
                "--scale", "0.1",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
                "--profile",
                "--sample-interval", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr()
        assert "Table IV" in out.out
        assert "events/sec" in out.err  # profiler report went to stderr

        document = json.loads(metrics_path.read_text())
        assert document["runs"]
        run = document["runs"][0]
        assert run["wall_seconds"] > 0
        assert run["virtual_seconds"] > 0
        assert "tactic_router_ops_total" in run["metrics"]
        assert run["profile"]["events"] == run["events_executed"]
        assert run["samples"], "sampler produced no series"

        lines = trace_path.read_text().splitlines()
        assert lines
        events = set()
        for line in lines:
            record = json.loads(line)
            assert "run" in record and "time" in record
            events.add(record["event"])
        # The new substrate events and the span lifecycle all fired
        # (aggregation-dependent events like pit.aggregate are too rare
        # at this tiny scale to assert on).
        assert {"node.tx.interest", "node.tx.data", "node.rx.interest",
                "span.start", "span.link", "span.end"} <= events

        # The default config was cleared again on the way out.
        assert current_telemetry() is None

    def test_flags_off_means_no_telemetry(self, capsys):
        code = main(["fig7", "--duration", "1", "--scale", "0.1"])
        assert code == 0
        assert current_telemetry() is None


class TestBridgedCounters:
    def test_router_ops_match_figure_counters(self, tmp_path):
        config = TelemetryConfig(metrics_path=str(tmp_path / "m.json"))
        result = run_scenario(_tiny_scenario(), telemetry=config)
        snapshot = result.telemetry.registry.snapshot()
        samples = snapshot["tactic_router_ops_total"]["samples"]

        for edge in (True, False):
            role = "edge" if edge else "core"
            merged = result.metrics.merged_counters(edge=edge)
            totals = {op: 0.0 for op in ROUTER_OPS}
            for sample in samples:
                if sample["labels"]["role"] == role:
                    totals[sample["labels"]["op"]] += sample["value"]
            for op in ROUTER_OPS:
                assert totals[op] == getattr(merged, op), (role, op)

    def test_user_outcomes_match_collector(self, tmp_path):
        config = TelemetryConfig(metrics_path=str(tmp_path / "m.json"))
        result = run_scenario(_tiny_scenario(), telemetry=config)
        snapshot = result.telemetry.registry.snapshot()
        values = {
            (s["labels"]["population"], s["labels"]["kind"]): s["value"]
            for s in snapshot["user_outcomes_total"]["samples"]
        }
        assert values[("clients", "chunks_requested")] == (
            result.metrics.total_requested(False)
        )
        assert values[("attackers", "chunks_received")] == (
            result.metrics.total_received(True)
        )
        latency = snapshot["client_latency_seconds"]["samples"][0]
        client_samples = [
            latency_value
            for user in result.metrics.users.values()
            if not user.is_attacker
            for _, latency_value in user.latency_samples
        ]
        assert latency["count"] == len(client_samples)
        assert latency["sum"] == pytest.approx(sum(client_samples))


class TestZeroBehaviourChange:
    def test_published_values_identical_with_telemetry_on(self, tmp_path):
        plain = run_scenario(_tiny_scenario())
        config = TelemetryConfig(
            metrics_path=str(tmp_path / "m.json"),
            trace_path=str(tmp_path / "t.jsonl"),
            sample_interval=0.25,
            profile=True,
            stream=open(tmp_path / "prof.txt", "w"),
        )
        telemetered = run_scenario(_tiny_scenario(), telemetry=config)
        config.stream.close()

        assert plain.delivery_table_row() == telemetered.delivery_table_row()
        assert plain.mean_latency() == telemetered.mean_latency()
        assert plain.latency_series() == telemetered.latency_series()
        for edge in (True, False):
            a = plain.operation_counts(edge)
            b = telemetered.operation_counts(edge)
            assert a == b

    def test_multi_run_artifacts_accumulate(self, tmp_path):
        config = TelemetryConfig(
            metrics_path=str(tmp_path / "m.json"),
            trace_path=str(tmp_path / "t.jsonl"),
        )
        run_scenario(_tiny_scenario(seed=3), telemetry=config)
        run_scenario(_tiny_scenario(seed=4), telemetry=config)
        document = json.loads((tmp_path / "m.json").read_text())
        assert len(document["runs"]) == 2
        runs = {
            json.loads(line)["run"]
            for line in (tmp_path / "t.jsonl").read_text().splitlines()
        }
        assert runs == {"topo1@0.1"}
