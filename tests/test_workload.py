"""Unit tests for Zipf sampling and the content catalog."""

import random

import pytest

from repro.ndn.name import Name
from repro.workload.catalog import Catalog, CatalogEntry, build_catalog
from repro.workload.zipf import ZipfSampler

from tests.conftest import build_mini_net


class TestZipf:
    def test_popularity_ordering(self):
        sampler = ZipfSampler(50, alpha=0.7, rng=random.Random(1))
        counts = [0] * 50
        for _ in range(20000):
            counts[sampler.sample()] += 1
        assert counts[0] > counts[10] > counts[49]

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, alpha=0.7, rng=random.Random(0))
        assert sum(sampler.probability(i) for i in range(20)) == pytest.approx(1.0)

    def test_probability_follows_power_law(self):
        sampler = ZipfSampler(100, alpha=0.7, rng=random.Random(0))
        # p(rank 1) / p(rank 2) == 2^alpha
        ratio = sampler.probability(0) / sampler.probability(1)
        assert ratio == pytest.approx(2 ** 0.7, rel=1e-6)

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0, rng=random.Random(0))
        for i in range(10):
            assert sampler.probability(i) == pytest.approx(0.1)

    def test_sample_in_range(self):
        sampler = ZipfSampler(5, alpha=1.0, rng=random.Random(2))
        assert all(0 <= sampler.sample() < 5 for _ in range(1000))

    def test_deterministic_with_seed(self):
        a = ZipfSampler(30, 0.7, random.Random(9))
        b = ZipfSampler(30, 0.7, random.Random(9))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.7, random.Random(0))
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, random.Random(0))
        sampler = ZipfSampler(3, 0.7, random.Random(0))
        with pytest.raises(IndexError):
            sampler.probability(3)


class TestCatalog:
    def entries(self):
        return [
            CatalogEntry("prov-0", Name("/prov-0/obj-0"), 1, 50),
            CatalogEntry("prov-0", Name("/prov-0/obj-1"), 3, 50),
            CatalogEntry("prov-1", Name("/prov-1/obj-0"), None, 50),
        ]

    def test_accessible_to_filters_by_level(self):
        catalog = Catalog(self.entries())
        assert len(catalog.accessible_to(1)) == 2  # level-1 + public
        assert len(catalog.accessible_to(3)) == 3
        assert len(catalog.accessible_to(None)) == 1  # public only

    def test_private_only(self):
        catalog = Catalog(self.entries())
        assert len(catalog.private_only()) == 2

    def test_order_preserved_by_filters(self):
        catalog = Catalog(self.entries())
        filtered = catalog.accessible_to(3)
        assert [e.prefix for e in filtered.entries] == [
            e.prefix for e in self.entries()
        ]

    def test_chunk_name(self):
        entry = self.entries()[0]
        assert entry.chunk_name(7) == Name("/prov-0/obj-0/chunk-7")

    def test_build_from_provider(self):
        net = build_mini_net()
        catalog = build_catalog([net.provider], shuffle_seed=None)
        assert len(catalog) == net.config.objects_per_provider
        assert catalog[0].provider_id == "prov-0"

    def test_shuffle_seed_determinism(self):
        net = build_mini_net()
        a = build_catalog([net.provider], shuffle_seed=5)
        b = build_catalog([net.provider], shuffle_seed=5)
        c = build_catalog([net.provider], shuffle_seed=6)
        assert [e.prefix for e in a.entries] == [e.prefix for e in b.entries]
        assert [e.prefix for e in a.entries] != [e.prefix for e in c.entries]
