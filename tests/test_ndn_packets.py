"""Unit tests for packet types and wire-size accounting."""

from repro.core.tag import Tag
from repro.ndn.name import Name
from repro.ndn.packets import (
    ACCESS_PATH_SIZE,
    DATA_BASE_SIZE,
    INTEREST_BASE_SIZE,
    AttachedNack,
    Data,
    Interest,
    Nack,
    NackReason,
)


def make_tag(**overrides):
    fields = dict(
        provider_key_locator="/prov-0/KEY/pub",
        client_key_locator="/client-0/KEY/pub",
        access_level=2,
        access_path=b"\x00" * 32,
        expiry=100.0,
        signature=b"s" * 32,
    )
    fields.update(overrides)
    return Tag(**fields)


class TestInterest:
    def test_nonces_unique(self):
        a, b = Interest(name=Name("/x")), Interest(name=Name("/x"))
        assert a.nonce != b.nonce

    def test_copy_is_independent(self):
        i = Interest(name=Name("/x"))
        clone = i.copy()
        clone.flag_f = 0.5
        assert i.flag_f == 0.0
        assert clone.nonce == i.nonce  # copies keep identity fields

    def test_registration_detection(self):
        assert Interest(name=Name("/prov-0/register/client-1/7")).is_registration()
        assert not Interest(name=Name("/prov-0/obj-1/chunk-0")).is_registration()
        assert not Interest(name=Name("/prov-0")).is_registration()

    def test_size_includes_tag(self):
        bare = Interest(name=Name("/p/o/c"))
        tagged = Interest(name=Name("/p/o/c"), tag=make_tag())
        assert bare.size_bytes() == (
            INTEREST_BASE_SIZE + Name("/p/o/c").encoded_size() + ACCESS_PATH_SIZE
        )
        assert tagged.size_bytes() == bare.size_bytes() + make_tag().encoded_size()

    def test_size_includes_credentials(self):
        with_creds = Interest(name=Name("/p/register/u/1"), credentials=b"c" * 32)
        without = Interest(name=Name("/p/register/u/1"))
        assert with_creds.size_bytes() == without.size_bytes() + 32

    def test_tag_is_couple_hundred_bytes(self):
        # The paper argues a tag is "a couple hundred bytes".
        assert 100 <= make_tag().encoded_size() <= 400


class TestData:
    def test_payload_size_modes(self):
        real = Data(name=Name("/x"), payload=b"z" * 100)
        modelled = Data(name=Name("/x"), payload_size=100)
        assert real.effective_payload_size() == modelled.effective_payload_size() == 100
        assert real.size_bytes() == modelled.size_bytes()

    def test_size_components(self):
        d = Data(name=Name("/x"), payload=b"z" * 10)
        base = DATA_BASE_SIZE + Name("/x").encoded_size() + 10 + 64
        assert d.size_bytes() == base
        d.tag = make_tag()
        assert d.size_bytes() == base + make_tag().encoded_size()
        d.nack = AttachedNack(tag_key=b"k", reason=NackReason.INVALID_SIGNATURE)
        assert d.size_bytes() > base + make_tag().encoded_size()

    def test_copy_is_shallow_but_independent(self):
        d = Data(name=Name("/x"), payload=b"z")
        clone = d.copy()
        clone.flag_f = 0.9
        clone.nack = AttachedNack(tag_key=b"", reason=NackReason.NO_TAG)
        assert d.flag_f == 0.0 and d.nack is None

    def test_tag_response_detection(self):
        assert Data(name=Name("/x"), tag_response=make_tag()).is_tag_response()
        assert not Data(name=Name("/x")).is_tag_response()


class TestNack:
    def test_size(self):
        n = Nack(name=Name("/a/b"), reason=NackReason.EXPIRED_TAG)
        assert n.size_bytes() > 0

    def test_copy(self):
        n = Nack(name=Name("/a"), reason=NackReason.NO_TAG, nonce=4)
        assert n.copy().nonce == 4
