"""Shared fixtures: a hand-wired mini TACTIC network for protocol tests.

The ``mini_net`` fixture builds the smallest interesting topology:

    client -- ap -- edge -- core1 -- core2 -- provider
    attacker-/                \\- (other edge paths in some tests)

with deterministic (zero-cost) computation so tests assert exact
behaviour, plus helpers to register clients and pump the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core.config import TacticConfig
from repro.core.core_router import CoreRouter
from repro.core.edge_router import EdgeRouter
from repro.core.metrics import MetricsCollector
from repro.core.provider import Provider
from repro.crypto.cost_model import ZERO_COST_MODEL
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn.network import Network
from repro.ndn.node import AccessPoint
from repro.sim.engine import Simulator


@dataclass
class MiniNet:
    """Handles to every node of the linear test topology."""

    sim: Simulator
    network: Network
    config: TacticConfig
    cert_store: CertificateStore
    metrics: MetricsCollector
    provider: Provider
    edge: EdgeRouter
    core1: CoreRouter
    core2: CoreRouter
    ap: AccessPoint
    extra: Dict[str, object] = field(default_factory=dict)

    def run(self, until: float = None) -> None:
        self.sim.run(until=until)


def build_mini_net(config: TacticConfig = None) -> MiniNet:
    """Construct the linear topology with zero-cost computation."""
    config = config or TacticConfig(
        cost_model=ZERO_COST_MODEL,
        tag_expiry=10.0,
        duration=30.0,
    )
    sim = Simulator(seed=7)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()

    keypair = SimulatedKeyPair.generate(sim.rng.stream("prov-key"))
    provider = Provider(sim, "prov-0", config, cert_store, keypair)
    provider.publish_catalog([1, 2, 3])
    edge = EdgeRouter(sim, "edge-0", config, cert_store, metrics)
    core1 = CoreRouter(sim, "core-0", config, cert_store, metrics)
    core2 = CoreRouter(sim, "core-1", config, cert_store, metrics)
    ap = AccessPoint(sim, "ap-0")

    for node in (provider, edge, core1, core2):
        network.add_node(node, routable=True)
    network.add_node(ap, routable=False)

    network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
    network.connect(edge, core1, bandwidth_bps=500e6, latency=0.001)
    network.connect(core1, core2, bandwidth_bps=500e6, latency=0.001)
    network.connect(core2, provider, bandwidth_bps=500e6, latency=0.001)
    ap.set_uplink(ap.face_toward(edge))
    network.announce_prefix(provider.prefix, provider)

    return MiniNet(
        sim=sim,
        network=network,
        config=config,
        cert_store=cert_store,
        metrics=metrics,
        provider=provider,
        edge=edge,
        core1=core1,
        core2=core2,
        ap=ap,
    )


@pytest.fixture
def mini_net() -> MiniNet:
    return build_mini_net()


def attach_client(net: MiniNet, client_id: str, access_level: int = 3):
    """Enroll and connect a Client to the mini net's access point."""
    from repro.core.client import Client
    from repro.workload.catalog import build_catalog

    catalog = build_catalog([net.provider]).accessible_to(access_level)
    stats = net.metrics.user(client_id, is_attacker=False)
    keypair = SimulatedKeyPair.generate(net.sim.rng.stream(f"key:{client_id}"))
    client = Client(
        net.sim,
        client_id,
        net.config,
        catalog,
        stats,
        access_level=access_level,
        keypair=keypair,
    )
    client.credentials[net.provider.node_id] = net.provider.directory.enroll(
        client_id, access_level, public_key=keypair.public
    )
    from repro.crypto.pki import Certificate

    net.cert_store.register(
        Certificate(
            locator=f"/{client_id}/KEY/pub",
            public_key=keypair.public,
            subject=client_id,
        )
    )
    net.network.add_node(client, routable=False)
    net.network.connect(client, net.ap, bandwidth_bps=10e6, latency=0.002)
    return client


def drain(sim: Simulator, limit: float = 120.0) -> None:
    """Run the simulator to completion (bounded, to catch livelock)."""
    sim.run(until=limit)


List  # typing reference for fixtures' annotations
