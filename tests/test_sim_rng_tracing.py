"""Unit tests for RNG streams and the trace hub."""

from repro.sim import RngRegistry, Simulator, TraceHub
from repro.sim.rng import derive_seed


class TestRngRegistry:
    def test_same_master_seed_reproduces_streams(self):
        a = RngRegistry(99).stream("x")
        b = RngRegistry(99).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_are_independent(self):
        reg = RngRegistry(1)
        xs = [reg.stream("x").random() for _ in range(5)]
        reg2 = RngRegistry(1)
        # Drawing from "y" first must not perturb "x".
        reg2.stream("y").random()
        ys = [reg2.stream("x").random() for _ in range(5)]
        assert xs == ys

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_reseed_clears_streams(self):
        reg = RngRegistry(0)
        first = reg.stream("a").random()
        reg.reseed(0)
        assert reg.stream("a").random() == first

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(5, "x") == derive_seed(5, "x")
        assert derive_seed(5, "x") != derive_seed(5, "y")
        assert derive_seed(5, "x") != derive_seed(6, "x")


class TestTraceHub:
    def test_exact_subscription(self):
        hub = TraceHub()
        seen = []
        hub.subscribe("evt", seen.append)
        hub.emit("evt", 1.0, value=42)
        hub.emit("other", 2.0)
        assert len(seen) == 1
        assert seen[0].payload == {"value": 42}
        assert seen[0].time == 1.0

    def test_wildcard_subscription(self):
        hub = TraceHub()
        seen = []
        hub.subscribe("*", seen.append)
        hub.emit("a", 1.0)
        hub.emit("b", 2.0)
        assert [r.name for r in seen] == ["a", "b"]

    def test_unsubscribe(self):
        hub = TraceHub()
        seen = []
        hub.subscribe("evt", seen.append)
        hub.unsubscribe("evt", seen.append)
        hub.emit("evt", 1.0)
        assert seen == []

    def test_disabled_hub_drops_records(self):
        hub = TraceHub()
        seen = []
        hub.subscribe("evt", seen.append)
        hub.enabled = False
        hub.emit("evt", 1.0)
        assert seen == []

    def test_simulator_owns_a_hub(self):
        sim = Simulator()
        seen = []
        sim.trace.subscribe("tick", seen.append)
        sim.schedule(1.0, lambda: sim.trace.emit("tick", sim.now))
        sim.run()
        assert seen[0].time == 1.0
