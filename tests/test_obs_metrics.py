"""The metrics registry: label semantics and export round-trips."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.metrics import MetricsRegistry


class TestLabelSemantics:
    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops", ("node", "op"))
        a = counter.labels(node="edge-0", op="lookup")
        b = counter.labels(op="lookup", node="edge-0")  # order-insensitive
        assert a is b
        a.inc()
        b.inc(2)
        assert a.value == 3

    def test_distinct_labels_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "", ("node",))
        counter.labels(node="a").inc(5)
        counter.labels(node="b").inc(7)
        assert counter.labels(node="a").value == 5
        assert counter.labels(node="b").value == 7

    def test_wrong_label_set_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "", ("node",))
        with pytest.raises(ValueError):
            counter.labels(nodeid="a")
        with pytest.raises(ValueError):
            counter.labels(node="a", extra="b")

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelless_shortcuts(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.02)
        snap = registry.snapshot()
        assert snap["c_total"]["samples"][0]["value"] == 3
        assert snap["g"]["samples"][0]["value"] == 1.5
        assert snap["h"]["samples"][0]["count"] == 1

    def test_labeled_family_refuses_bare_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("node",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("__reserved",))

    def test_reregistration_idempotent_but_conflicts_rejected(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "", ("node",))
        again = registry.counter("c_total", "", ("node",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("c_total", "", ("node",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "", ("node", "op"))


class TestGauge:
    def test_callback_backed_gauge_reads_live(self):
        registry = MetricsRegistry()
        state = {"v": 1.0}
        gauge = registry.gauge("depth", "", ("node",))
        gauge.labels(node="a").set_function(lambda: state["v"])
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 1.0
        state["v"] = 9.0
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 9.0

    def test_set_overrides_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        child = gauge.labels()
        child.set_function(lambda: 4.0)
        child.set(2.0)
        assert child.read() == 2.0


class TestHistogram:
    def test_bucket_counts_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        child = histogram.labels()
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            child.observe(value)
        cumulative = dict(child.cumulative())
        assert cumulative[0.01] == 1
        assert cumulative[0.1] == 3
        assert cumulative[1.0] == 4
        assert cumulative[math.inf] == 5
        assert child.count == 5
        assert child.sum == pytest.approx(5.605)


class TestExport:
    def _populated(self):
        registry = MetricsRegistry()
        ops = registry.counter("tactic_ops_total", "router ops", ("node", "op"))
        ops.labels(node="edge-0", op="bf_lookups").inc(12)
        ops.labels(node="core-0", op="bf_inserts").inc(3)
        registry.gauge("pit_entries", "PIT size", ("node",)).labels(node="edge-0").set(4)
        registry.histogram("latency_seconds", buckets=(0.01, 0.1)).labels().observe(0.02)
        return registry

    def test_json_round_trip(self):
        registry = self._populated()
        parsed = json.loads(registry.to_json())
        ops = parsed["tactic_ops_total"]
        assert ops["kind"] == "counter"
        values = {
            (s["labels"]["node"], s["labels"]["op"]): s["value"]
            for s in ops["samples"]
        }
        assert values == {("core-0", "bf_inserts"): 3, ("edge-0", "bf_lookups"): 12}
        hist = parsed["latency_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1][1] == 1  # +Inf cumulative == count

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# TYPE tactic_ops_total counter" in text
        assert 'tactic_ops_total{node="edge-0",op="bf_lookups"} 12' in text
        assert "# TYPE pit_entries gauge" in text
        assert 'pit_entries{node="edge-0"} 4' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("path",)).labels(path='a"b\\c').inc()
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_collector_hook_runs_before_snapshot(self):
        registry = MetricsRegistry()
        calls = []

        def hook(reg):
            calls.append(True)
            reg.counter("bridged_total").inc()

        registry.register_collector(hook)
        snap = registry.snapshot()
        assert calls and snap["bridged_total"]["samples"][0]["value"] == 1
