"""The metrics registry: label semantics and export round-trips."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.metrics import MetricsRegistry


class TestLabelSemantics:
    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops", ("node", "op"))
        a = counter.labels(node="edge-0", op="lookup")
        b = counter.labels(op="lookup", node="edge-0")  # order-insensitive
        assert a is b
        a.inc()
        b.inc(2)
        assert a.value == 3

    def test_distinct_labels_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "", ("node",))
        counter.labels(node="a").inc(5)
        counter.labels(node="b").inc(7)
        assert counter.labels(node="a").value == 5
        assert counter.labels(node="b").value == 7

    def test_wrong_label_set_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "", ("node",))
        with pytest.raises(ValueError):
            counter.labels(nodeid="a")
        with pytest.raises(ValueError):
            counter.labels(node="a", extra="b")

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelless_shortcuts(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.02)
        snap = registry.snapshot()
        assert snap["c_total"]["samples"][0]["value"] == 3
        assert snap["g"]["samples"][0]["value"] == 1.5
        assert snap["h"]["samples"][0]["count"] == 1

    def test_labeled_family_refuses_bare_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("node",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("__reserved",))

    def test_reregistration_idempotent_but_conflicts_rejected(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "", ("node",))
        again = registry.counter("c_total", "", ("node",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("c_total", "", ("node",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "", ("node", "op"))


class TestGauge:
    def test_callback_backed_gauge_reads_live(self):
        registry = MetricsRegistry()
        state = {"v": 1.0}
        gauge = registry.gauge("depth", "", ("node",))
        gauge.labels(node="a").set_function(lambda: state["v"])
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 1.0
        state["v"] = 9.0
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 9.0

    def test_set_overrides_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        child = gauge.labels()
        child.set_function(lambda: 4.0)
        child.set(2.0)
        assert child.read() == 2.0


class TestHistogram:
    def test_bucket_counts_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        child = histogram.labels()
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            child.observe(value)
        cumulative = dict(child.cumulative())
        assert cumulative[0.01] == 1
        assert cumulative[0.1] == 3
        assert cumulative[1.0] == 4
        assert cumulative[math.inf] == 5
        assert child.count == 5
        assert child.sum == pytest.approx(5.605)


class TestQuantile:
    def _child(self, values, buckets=(0.01, 0.1, 1.0)):
        registry = MetricsRegistry()
        child = registry.histogram("lat", buckets=buckets).labels()
        for value in values:
            child.observe(value)
        return child

    def test_empty_histogram_has_no_quantile(self):
        assert self._child([]).quantile(0.5) is None

    def test_out_of_range_rejected(self):
        child = self._child([0.05])
        with pytest.raises(ValueError):
            child.quantile(-0.1)
        with pytest.raises(ValueError):
            child.quantile(1.1)

    def test_interpolates_within_bucket(self):
        # 10 observations, all in the (0.01, 0.1] bucket: the median
        # sits halfway through it by linear interpolation.
        child = self._child([0.05] * 10)
        assert child.quantile(0.5) == pytest.approx(0.055)
        assert child.quantile(1.0) == pytest.approx(0.1)

    def test_overflow_clamps_to_highest_finite_bound(self):
        # Prometheus convention: quantiles landing in the +Inf bucket
        # report the highest finite bucket bound.
        child = self._child([5.0, 5.0, 5.0])
        assert child.quantile(0.5) == 1.0

    def test_spread_across_buckets(self):
        child = self._child([0.005, 0.05, 0.5, 5.0])
        assert child.quantile(0.25) == pytest.approx(0.01)
        assert child.quantile(0.5) == pytest.approx(0.1)

    def test_labelless_family_shortcut(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0,))
        histogram.observe(0.5)
        assert histogram.quantile(1.0) == pytest.approx(1.0)
        assert histogram.quantile(0.5) == pytest.approx(0.5)
        labeled = registry.histogram("lat_by", labelnames=("n",), buckets=(1.0,))
        with pytest.raises(ValueError):
            labeled.quantile(0.5)


class TestMerge:
    def _snapshot_of(self, fill):
        registry = MetricsRegistry()
        fill(registry)
        return registry.snapshot()

    def test_counters_add(self):
        merged = MetricsRegistry()
        merged.counter("ops_total", "", ("node",)).labels(node="a").inc(2)
        merged.merge_snapshot(self._snapshot_of(
            lambda r: r.counter("ops_total", "", ("node",)).labels(node="a").inc(3)
        ))
        merged.merge_snapshot(self._snapshot_of(
            lambda r: r.counter("ops_total", "", ("node",)).labels(node="b").inc(1)
        ))
        snap = merged.snapshot()["ops_total"]
        values = {s["labels"]["node"]: s["value"] for s in snap["samples"]}
        assert values == {"a": 5, "b": 1}

    def test_gauges_take_incoming_value(self):
        merged = MetricsRegistry()
        merged.gauge("depth").set(1.0)
        merged.merge_snapshot(self._snapshot_of(lambda r: r.gauge("depth").set(7.0)))
        assert merged.snapshot()["depth"]["samples"][0]["value"] == 7.0

    def test_histograms_add_bucketwise(self):
        def fill(registry):
            child = registry.histogram("lat", buckets=(0.01, 0.1, 1.0)).labels()
            for value in (0.005, 0.05, 5.0):
                child.observe(value)

        merged = MetricsRegistry()
        merged.merge_snapshot(self._snapshot_of(fill))
        merged.merge_snapshot(self._snapshot_of(fill))
        sample = merged.snapshot()["lat"]["samples"][0]
        assert sample["count"] == 6
        assert sample["sum"] == pytest.approx(2 * 5.055)
        assert dict((b, c) for b, c in sample["buckets"]) == {
            0.01: 2, 0.1: 4, 1.0: 4, math.inf: 6,
        }

    def test_merge_registry_and_json_round_trip(self):
        # merge() == merge_snapshot(snapshot()), and a snapshot that
        # crossed a JSON round-trip (the worker envelope path) merges
        # identically — including the +Inf bucket bound.
        source = MetricsRegistry()
        source.histogram("lat", buckets=(0.1,)).labels().observe(0.5)
        source.counter("ops_total").inc(4)
        direct = MetricsRegistry()
        direct.merge(source)
        wired = MetricsRegistry()
        wired.merge_snapshot(json.loads(json.dumps(source.snapshot())))
        assert direct.to_json() == wired.to_json()

    def test_mismatched_buckets_rejected(self):
        merged = MetricsRegistry()
        merged.histogram("lat", buckets=(0.5,))
        source = MetricsRegistry()
        source.histogram("lat", buckets=(0.1, 0.5)).labels().observe(0.05)
        with pytest.raises(ValueError):
            merged.merge_snapshot(source.snapshot())

    def test_mismatched_kind_rejected(self):
        merged = MetricsRegistry()
        merged.gauge("x")
        source = MetricsRegistry()
        source.counter("x").inc()
        with pytest.raises(ValueError):
            merged.merge_snapshot(source.snapshot())

    def test_merge_order_is_deterministic(self):
        def fill(registry):
            registry.counter("b_total").inc()
            registry.counter("a_total", "", ("k",)).labels(k="z").inc()
            registry.counter("a_total", "", ("k",)).labels(k="a").inc()

        one = MetricsRegistry()
        one.merge_snapshot(self._snapshot_of(fill))
        two = MetricsRegistry()
        two.merge_snapshot(json.loads(json.dumps(self._snapshot_of(fill))))
        assert one.to_json() == two.to_json()


class TestExport:
    def _populated(self):
        registry = MetricsRegistry()
        ops = registry.counter("tactic_ops_total", "router ops", ("node", "op"))
        ops.labels(node="edge-0", op="bf_lookups").inc(12)
        ops.labels(node="core-0", op="bf_inserts").inc(3)
        registry.gauge("pit_entries", "PIT size", ("node",)).labels(node="edge-0").set(4)
        registry.histogram("latency_seconds", buckets=(0.01, 0.1)).labels().observe(0.02)
        return registry

    def test_json_round_trip(self):
        registry = self._populated()
        parsed = json.loads(registry.to_json())
        ops = parsed["tactic_ops_total"]
        assert ops["kind"] == "counter"
        values = {
            (s["labels"]["node"], s["labels"]["op"]): s["value"]
            for s in ops["samples"]
        }
        assert values == {("core-0", "bf_inserts"): 3, ("edge-0", "bf_lookups"): 12}
        hist = parsed["latency_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1][1] == 1  # +Inf cumulative == count

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# TYPE tactic_ops_total counter" in text
        assert 'tactic_ops_total{node="edge-0",op="bf_lookups"} 12' in text
        assert "# TYPE pit_entries gauge" in text
        assert 'pit_entries{node="edge-0"} 4' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("path",)).labels(path='a"b\\c').inc()
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_collector_hook_runs_before_snapshot(self):
        registry = MetricsRegistry()
        calls = []

        def hook(reg):
            calls.append(True)
            reg.counter("bridged_total").inc()

        registry.register_collector(hook)
        snap = registry.snapshot()
        assert calls and snap["bridged_total"]["samples"][0]["value"] == 1
