"""Unit tests for metrics aggregation and the revocation policy."""

import pytest

from repro.core.metrics import MetricsCollector, OpCounters, UserStats
from repro.core.revocation import ExpiryRevocation

from tests.conftest import attach_client, build_mini_net


class TestOpCounters:
    def test_note_reset_records_interval(self):
        counters = OpCounters()
        for _ in range(10):
            counters.note_request()
        counters.note_reset()
        for _ in range(20):
            counters.note_request()
        counters.note_reset()
        assert counters.reset_intervals == [10, 20]
        assert counters.bf_resets == 2
        assert counters.requests_since_reset == 0

    def test_merged_with(self):
        a = OpCounters(bf_lookups=5, bf_inserts=2, signature_verifications=1)
        a.reset_intervals = [10]
        b = OpCounters(bf_lookups=3, nacks_issued=4)
        b.reset_intervals = [20]
        merged = a.merged_with(b)
        assert merged.bf_lookups == 8
        assert merged.bf_inserts == 2
        assert merged.nacks_issued == 4
        assert merged.reset_intervals == [10, 20]
        # Merge does not mutate the inputs.
        assert a.bf_lookups == 5 and b.bf_lookups == 3


class TestUserStats:
    def test_delivery_ratio(self):
        stats = UserStats(user_id="u")
        assert stats.delivery_ratio() == 0.0
        stats.chunks_requested = 10
        stats.chunks_received = 9
        assert stats.delivery_ratio() == pytest.approx(0.9)


class TestMetricsCollector:
    def build(self):
        collector = MetricsCollector()
        client = collector.user("c1")
        client.chunks_requested, client.chunks_received = 100, 99
        client.latency_samples = [(0.5, 0.010), (0.7, 0.020), (1.5, 0.030)]
        client.tags_requested, client.tags_received = 4, 4
        attacker = collector.user("a1", is_attacker=True)
        attacker.chunks_requested, attacker.chunks_received = 50, 1
        return collector

    def test_user_is_cached(self):
        collector = MetricsCollector()
        assert collector.user("x") is collector.user("x")

    def test_delivery_ratios_split_populations(self):
        collector = self.build()
        assert collector.delivery_ratio(attackers=False) == pytest.approx(0.99)
        assert collector.delivery_ratio(attackers=True) == pytest.approx(0.02)

    def test_latency_series_buckets(self):
        collector = self.build()
        series = collector.latency_series(bucket=1.0)
        assert series == [(0.0, pytest.approx(0.015)), (1.0, pytest.approx(0.030))]

    def test_latency_series_excludes_attackers(self):
        collector = self.build()
        collector.user("a1").latency_samples = [(0.1, 9.9)]
        series = collector.latency_series()
        assert all(latency < 1.0 for _, latency in series)

    def test_mean_latency(self):
        collector = self.build()
        assert collector.mean_latency() == pytest.approx(0.020)
        assert MetricsCollector().mean_latency() is None

    def test_tag_rates(self):
        collector = self.build()
        q, r = collector.tag_rates(duration=2.0)
        assert (q, r) == (2.0, 2.0)
        assert collector.tag_rates(0.0) == (0.0, 0.0)

    def test_router_registration_and_merge(self):
        collector = MetricsCollector()
        edge = OpCounters(bf_lookups=10)
        core = OpCounters(bf_lookups=3)
        collector.register_router("e1", edge, is_edge=True)
        collector.register_router("c1", core, is_edge=False)
        assert collector.merged_counters(edge=True).bf_lookups == 10
        assert collector.merged_counters(edge=False).bf_lookups == 3

    def test_reset_threshold(self):
        collector = MetricsCollector()
        counters = OpCounters()
        counters.reset_intervals = [100, 200]
        collector.register_router("e1", counters, is_edge=True)
        assert collector.reset_threshold(edge=True) == pytest.approx(150.0)
        assert collector.reset_threshold(edge=False) is None

    def test_zero_requested_ratio(self):
        collector = MetricsCollector()
        collector.user("idle")
        assert collector.delivery_ratio() == 0.0


class TestExpiryRevocation:
    def test_policy_math(self):
        policy = ExpiryRevocation(tag_lifetime=10.0)
        assert policy.worst_case_exposure() == 10.0
        assert policy.expected_registrations_per_second(50) == pytest.approx(5.0)

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            ExpiryRevocation(tag_lifetime=0.0)

    def test_revoked_client_loses_access_after_expiry(self):
        net = build_mini_net()
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=30.0)
        policy = ExpiryRevocation(tag_lifetime=net.config.tag_expiry)
        # Revoke at t=5; the current tag (issued ~t=0) dies by t<=15.
        net.sim.schedule(5.0, policy.revoke, net.provider, "client-0")
        net.run(until=32.0)
        stats = net.metrics.user("client-0")
        dead_by = 5.0 + policy.worst_case_exposure() + 1.0
        late_deliveries = [t for t, _ in stats.latency_samples if t > dead_by]
        assert stats.chunks_received > 0  # worked before revocation
        assert late_deliveries == []  # and was cut off afterwards
        assert stats.tags_received >= 1
