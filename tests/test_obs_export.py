"""Chrome trace export: structural validity, nesting, and the CLI path."""

from __future__ import annotations

import json

import pytest

from repro.experiments.fig5_latency import enumerate_fig5
from repro.experiments.runner import run_scenario
from repro.obs.export import TRACE_FORMATS, chrome_trace_events, write_chrome_trace
from repro.obs.session import TelemetryConfig
from repro.sim.tracing import TraceRecord


def _fig5_chrome_doc(tmp_path):
    """Run a tiny Fig. 5 scenario with --trace-format=chrome semantics."""
    path = tmp_path / "trace.json"
    spec = enumerate_fig5(duration=2.0, scale=0.1)[0]
    config = TelemetryConfig(trace_path=str(path), trace_format="chrome")
    run_scenario(spec.build(), telemetry=config)
    return json.loads(path.read_text())


class TestChromeTraceStructure:
    def test_fig5_scenario_emits_valid_trace_event_json(self, tmp_path):
        document = _fig5_chrome_doc(tmp_path)
        events = document["traceEvents"]
        assert events, "trace document has no events"
        assert document["displayTimeUnit"] == "ms"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["ph"] in ("M", "X", "i")
            if event["ph"] == "X":
                assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            if event["ph"] == "i":
                assert "ts" in event

    def test_one_thread_track_per_node(self, tmp_path):
        events = _fig5_chrome_doc(tmp_path)["traceEvents"]
        threads = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        names = set(threads.values())
        assert any(name.startswith("edge") for name in names)
        assert any(name.startswith("client") for name in names)
        # tids are unique per node
        assert len(threads) == len(names)

    def test_nested_hop_slices_sum_to_span_latency(self, tmp_path):
        events = _fig5_chrome_doc(tmp_path)["traceEvents"]
        spans = [
            e for e in events
            if e["ph"] == "X" and e["cat"] == "span"
            and e["args"].get("outcome") == "data"
        ]
        hops = [e for e in events if e["ph"] == "X" and e["cat"] == "hop"]
        assert spans and hops
        for span in spans:
            children = [
                h for h in hops if h["args"]["span"] == span["args"]["span"]
            ]
            # Children nest inside the parent slice (same track) ...
            assert all(h["tid"] == span["tid"] for h in children)
            for child in children:
                assert child["ts"] >= span["ts"] - 1e-9
                assert child["ts"] + child["dur"] <= \
                    span["ts"] + span["dur"] + 1e-6
            # ... and together with the derived wait they sum to the
            # span's measured latency (the decompose() invariant).
            covered = sum(h["dur"] for h in children)
            total = covered + span["args"]["wait"] * 1e6
            assert abs(total - span["dur"]) < 1e-3

    def test_substrate_records_become_instants(self, tmp_path):
        events = _fig5_chrome_doc(tmp_path)["traceEvents"]
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert "node.rx.interest" in instants


class TestDecisionAndNackInstants:
    def test_audit_decision_categorised_with_args(self):
        records = [
            TraceRecord("audit.decision", 0.5,
                        {"node": "edge-0", "role": "edge",
                         "decision": "bf_hit", "outcome": "hit",
                         "label": "correct", "tag": "ab12", "cost": 0.001}),
        ]
        events = chrome_trace_events(records, pid=1, run="unit")
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["cat"] == "decision"
        assert instant["args"]["decision"] == "bf_hit"
        assert instant["args"]["label"] == "correct"
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert "edge-0" in names  # the decision landed on the node's track

    def test_nack_tx_categorised_with_reason(self):
        records = [
            TraceRecord("node.tx.nack", 0.7,
                        {"node": "edge-0", "reason": "access_path"}),
        ]
        events = chrome_trace_events(records, pid=1, run="unit")
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["cat"] == "nack"
        assert instant["args"]["reason"] == "access_path"

    def test_attached_nack_on_data_categorised(self):
        records = [
            TraceRecord("node.tx.data", 0.9,
                        {"node": "core-0", "nack": "invalid_signature"}),
            TraceRecord("node.tx.data", 1.0, {"node": "core-0", "nack": None}),
        ]
        events = chrome_trace_events(records, pid=1, run="unit")
        instants = [e for e in events if e["ph"] == "i"]
        cats = [e["cat"] for e in instants]
        assert cats == ["nack", "substrate"]
        assert instants[0]["args"]["reason"] == "invalid_signature"


class TestChromeTraceUnits:
    def _records(self):
        return [
            TraceRecord("span.start", 1.0,
                        {"span": 7, "node": "client-0", "content": "/p/c0",
                         "kind": "content"}),
            TraceRecord("span.link", 1.0,
                        {"span": 7, "src": "ap-0", "dst": "edge-0",
                         "queue": 0.01, "tx": 0.02, "prop": 0.03}),
            TraceRecord("span.end", 1.1, {"span": 7, "outcome": "data",
                                          "latency": 0.1}),
            TraceRecord("cs.hit", 1.05, {"node": "edge-0", "content": "/p/c0"}),
        ]

    def test_timestamps_scale_to_microseconds(self):
        events = chrome_trace_events(self._records(), pid=3, run="unit")
        span = next(e for e in events if e.get("cat") == "span" and e["ph"] == "X")
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(0.1e6)   # 0.1 s
        assert span["pid"] == 3
        hops = [e for e in events if e.get("cat") == "hop"]
        assert [h["name"] for h in hops] == ["queue", "tx", "prop"]
        assert sum(h["dur"] for h in hops) == pytest.approx((0.01 + 0.02 + 0.03) * 1e6)

    def test_process_metadata_names_the_run(self):
        events = chrome_trace_events(self._records(), pid=2, run="fig5/t1")
        meta = events[0]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        assert meta["args"]["name"] == "fig5/t1"

    def test_write_chrome_trace_multi_run(self, tmp_path):
        path = tmp_path / "t.json"
        count = write_chrome_trace(
            str(path), [("a", self._records()), ("b", self._records())]
        )
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert {e["pid"] for e in document["traceEvents"]} == {1, 2}

    def test_known_formats(self):
        assert TRACE_FORMATS == ("jsonl", "chrome")


class TestWriterIntegration:
    def test_jsonl_format_unchanged(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        spec = enumerate_fig5(duration=2.0, scale=0.1)[0]
        config = TelemetryConfig(trace_path=str(path), trace_format="jsonl")
        run_scenario(spec.build(), telemetry=config)
        lines = path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert "event" in first and "time" in first
