"""Fleet progress: status line, engine events, ETA/utilization math."""

from __future__ import annotations

import io
import json

from repro.exec.engine import ExperimentEngine
from repro.experiments.fig6_tag_rates import enumerate_fig6
from repro.obs.fleet import FLEET_EVENTS, FleetProgress


class FakeClock:
    """Deterministic, manually-advanced wall clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _progress(tmp_path=None, **kwargs):
    clock = FakeClock()
    stream = io.StringIO()
    events = str(tmp_path / "engine.events.jsonl") if tmp_path else None
    kwargs.setdefault("jobs", 2)
    progress = FleetProgress(
        total=4, stream=stream, events_path=events, clock=clock, **kwargs
    )
    return progress, clock, stream


def _read_events(tmp_path):
    path = tmp_path / "engine.events.jsonl"
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestDerivedQuantities:
    def test_eta_none_before_first_completion(self):
        progress, _, _ = _progress()
        assert progress.eta_seconds() is None

    def test_eta_extrapolates_mean_wall_over_workers(self):
        progress, clock, _ = _progress()
        progress.spec_started("a")
        clock.advance(2.0)
        progress.spec_finished("a", wall_seconds=2.0, mode="parallel")
        # 3 remaining × mean 2.0s ÷ 2 workers
        assert progress.eta_seconds() == 3.0
        progress.spec_finished("b", wall_seconds=4.0, mode="parallel")
        # 2 remaining × mean 3.0s ÷ 2 workers
        assert progress.eta_seconds() == 3.0

    def test_utilization_is_busy_over_capacity(self):
        progress, clock, _ = _progress()
        clock.advance(4.0)
        progress.spec_finished("a", wall_seconds=6.0, mode="parallel")
        # 6 busy worker-seconds over 4s elapsed × 2 workers
        assert progress.utilization() == 0.75

    def test_utilization_zero_when_no_time_elapsed(self):
        progress, _, _ = _progress()
        assert progress.utilization() == 0.0


class TestStatusLine:
    def test_non_tty_stream_gets_plain_lines(self):
        progress, _, stream = _progress()
        progress.spec_started("a")
        progress.spec_finished("a", wall_seconds=1.0, mode="serial")
        lines = stream.getvalue().splitlines()
        assert lines[0] == "fleet 0/4 · 1 running"
        assert lines[1].startswith("fleet 1/4 · ")
        assert "util" in lines[1]

    def test_cached_specs_reported(self):
        progress, _, stream = _progress()
        progress.spec_cached("a")
        assert stream.getvalue().splitlines()[0] == "fleet 1/4 · 1 cached"

    def test_tty_stream_refreshes_one_line(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        clock = FakeClock()
        stream = Tty()
        progress = FleetProgress(total=2, jobs=1, stream=stream, clock=clock)
        progress.spec_started("a")
        progress.spec_finished("a", wall_seconds=1.0, mode="serial")
        progress.run_finished()
        value = stream.getvalue()
        assert value.count("\r\x1b[2K") == 2
        assert value.endswith("\n")  # run_finished closes the open line

    def test_show_false_suppresses_rendering_but_not_events(self, tmp_path):
        progress, _, stream = _progress(tmp_path, show=False)
        progress.spec_started("a")
        progress.spec_finished("a", wall_seconds=1.0, mode="serial")
        assert stream.getvalue() == ""
        assert len(_read_events(tmp_path)) == 2


class TestEventsFile:
    def test_full_lifecycle_sequence_and_payloads(self, tmp_path):
        progress, clock, _ = _progress(tmp_path, show=False)
        progress.run_started(figure="fig6")
        progress.spec_cached("c0")
        progress.spec_started("s1")
        clock.advance(1.5)
        progress.spec_finished("s1", wall_seconds=1.5, mode="parallel")
        progress.run_finished()
        events = _read_events(tmp_path)
        assert [e["event"] for e in events] == [
            "fleet.run.start",
            "fleet.spec.cached",
            "fleet.spec.start",
            "fleet.spec.done",
            "fleet.run.done",
        ]
        assert all(e["event"] in FLEET_EVENTS for e in events)
        start, cached, _, done, finished = events
        assert start["figure"] == "fig6" and start["jobs"] == 2
        assert cached["label"] == "c0"
        assert done["wall_seconds"] == 1.5 and done["mode"] == "parallel"
        assert finished["done"] == 2 and finished["cached"] == 1
        assert finished["wall_seconds"] == 1.5
        # Event timestamps are relative to run start and monotone.
        times = [e["t"] for e in events]
        assert times == sorted(times) and times[0] == 0.0

    def test_events_append_across_runs(self, tmp_path):
        for _ in range(2):
            progress, _, _ = _progress(tmp_path, show=False)
            progress.run_started()
            progress.run_finished()
        assert len(_read_events(tmp_path)) == 4


class TestEngineIntegration:
    def test_engine_writes_events_and_status(self, tmp_path):
        events = tmp_path / "engine.events.jsonl"
        stream = io.StringIO()
        engine = ExperimentEngine(
            jobs=1,
            use_cache=False,
            progress=True,
            events_path=str(events),
            stream=stream,
        )
        specs = enumerate_fig6(duration=2.0, scale=0.1)[:2]
        engine.run_specs(specs, figure="fig6")
        names = [json.loads(line)["event"] for line in
                 events.read_text().splitlines()]
        assert names == [
            "fleet.run.start",
            "fleet.spec.start",
            "fleet.spec.done",
            "fleet.spec.start",
            "fleet.spec.done",
            "fleet.run.done",
        ]
        assert "fleet 2/2" in stream.getvalue()

    def test_engine_quiet_by_default(self, tmp_path):
        stream = io.StringIO()
        engine = ExperimentEngine(jobs=1, use_cache=False, stream=stream)
        engine.run_specs(enumerate_fig6(duration=2.0, scale=0.1)[:1])
        assert stream.getvalue() == ""
        assert not (tmp_path / "engine.events.jsonl").exists()

    def test_progress_env_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_EVENTS",
                           str(tmp_path / "engine.events.jsonl"))
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run_specs(enumerate_fig6(duration=2.0, scale=0.1)[:1])
        assert (tmp_path / "engine.events.jsonl").exists()
