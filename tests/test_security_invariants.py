"""End-to-end security invariants, fuzzed across seeds and attacker mixes.

The one property every TACTIC configuration must uphold: **no
unauthorized consumption** — an attacker never *uses* content,
regardless of seed, attacker mix, filter sizing, or expiry settings.
(Delivery to attackers is possible only via Bloom false positives, and
even then the payload is ciphertext they cannot decrypt.)
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attacker import AttackerMode
from repro.experiments import Scenario, run_scenario

mode_strategy = st.lists(
    st.sampled_from(list(AttackerMode)), min_size=1, max_size=3, unique=True
)


class TestNoUnauthorizedConsumption:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        seed=st.integers(min_value=1, max_value=50),
        modes=mode_strategy,
        tag_expiry=st.sampled_from([3.0, 10.0]),
        bf_capacity=st.sampled_from([20, 200]),
    )
    def test_attackers_never_consume(self, seed, modes, tag_expiry, bf_capacity):
        scenario = Scenario.paper_topology(
            1,
            duration=4.0,
            seed=seed,
            scale=0.15,
            attacker_modes=tuple(modes),
        ).with_config(tag_expiry=tag_expiry, bf_capacity=bf_capacity)
        result = run_scenario(scenario)
        # The invariant: zero usable chunks for the attacker population.
        assert result.metrics.total_usable(attackers=True) == 0
        # And the system still works for clients under every mix.
        assert result.client_delivery_ratio() > 0.9

    def test_invariant_holds_across_all_schemes_with_enforcement(self):
        # Schemes with any enforcement (network or crypto) share the
        # usable==0 invariant; only delivery differs.
        for scheme in ("tactic", "no_bloom", "provider_auth", "accconf", "client_side"):
            result = run_scenario(
                Scenario.paper_topology(1, duration=4.0, seed=9, scale=0.15, scheme=scheme)
            )
            assert result.metrics.total_usable(attackers=True) == 0, scheme


class TestConservation:
    def test_chunk_accounting_balances(self):
        # received + timeouts + nacks + still-outstanding == requested,
        # for every user — no chunk is double-counted or lost.
        result = run_scenario(
            Scenario.paper_topology(1, duration=5.0, seed=3, scale=0.2)
        )
        for user in result.metrics.users.values():
            outstanding = 0
            for client in result.clients + result.attackers:
                if client.node_id == user.user_id:
                    outstanding = len(client._outstanding)
            accounted = (
                user.chunks_received
                + user.timeouts
                + user.nacks_received
                + outstanding
            )
            assert accounted == user.chunks_requested, user.user_id

    def test_usable_never_exceeds_received(self):
        result = run_scenario(
            Scenario.paper_topology(1, duration=4.0, seed=4, scale=0.15)
        )
        for user in result.metrics.users.values():
            assert user.chunks_usable <= user.chunks_received
