"""Behavioural tests for Protocol 2 (edge router), driven over mini_net."""

import pytest

from repro.core.access_path import expected_access_path
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Data, Interest, Nack

from tests.conftest import build_mini_net


class Probe(Node):
    """A bare node that records everything it receives."""

    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.interests = []
        self.datas = []
        self.nacks = []

    def on_interest(self, interest, in_face):
        self.interests.append(interest)

    def on_data(self, data, in_face):
        self.datas.append(data)

    def on_nack(self, nack, in_face):
        self.nacks.append(nack)


@pytest.fixture
def net():
    return build_mini_net()


@pytest.fixture
def probe(net):
    """A probe client behind the access point."""
    probe = Probe(net.sim, "probe")
    net.network.add_node(probe, routable=False)
    net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
    return probe


def issue_tag(net, user_id="probe", level=3, ap_ids=("ap-0",), expiry_at=None):
    net.provider.directory.enroll(user_id, level)
    tag = net.provider.issue_tag_direct(user_id, expected_access_path(ap_ids))
    if expiry_at is not None:
        tag = type(tag)(
            provider_key_locator=tag.provider_key_locator,
            client_key_locator=tag.client_key_locator,
            access_level=tag.access_level,
            access_path=tag.access_path,
            expiry=expiry_at,
        ).sign_with(net.provider.keypair)
    return tag


def send(net, probe, interest):
    net.sim.schedule(0.0, probe.faces[0].send, interest)


class TestInterestPath:
    def test_valid_tag_forwarded_with_f_zero_first_time(self, net, probe):
        tag = issue_tag(net)
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag))
        net.run()
        assert len(upstream) == 1
        assert upstream[0].flag_f == 0.0  # not yet in the edge BF

    def test_bf_hit_sets_nonzero_flag(self, net, probe):
        tag = issue_tag(net)
        net.edge.bloom.insert(tag.cache_key())
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag))
        net.run()
        assert upstream[0].flag_f > 0.0

    def test_expired_tag_dropped_silently(self, net, probe):
        tag = issue_tag(net, expiry_at=0.0)
        net.sim.schedule(1.0, lambda: None)  # advance the clock past expiry
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        net.sim.schedule(
            1.0, probe.faces[0].send, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag)
        )
        net.run()
        assert upstream == []
        assert probe.nacks == []  # Protocol 1 failures drop, no NACK
        assert net.edge.counters.precheck_drops == 1

    def test_wrong_provider_prefix_dropped(self, net, probe):
        tag = issue_tag(net)
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        send(net, probe, Interest(name=Name("/prov-9/obj-0/chunk-0"), tag=tag))
        net.run()
        assert upstream == []
        assert net.edge.counters.precheck_drops == 1

    def test_access_path_mismatch_nacked(self, net, probe):
        tag = issue_tag(net, ap_ids=("ap-elsewhere",))
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag))
        net.run()
        assert len(probe.nacks) == 1
        assert net.edge.counters.access_path_drops == 1

    def test_access_path_check_disabled(self, probe_config_net=None):
        net = build_mini_net()
        net.config.enable_access_path = False
        probe = Probe(net.sim, "probe")
        net.network.add_node(probe, routable=False)
        net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
        tag = issue_tag(net, ap_ids=("ap-elsewhere",))
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag))
        net.run()
        assert len(upstream) == 1  # mismatch ignored when disabled

    def test_tagless_interest_forwarded_with_f_zero(self, net, probe):
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0")))
        net.run()
        assert len(upstream) == 1
        assert upstream[0].tag is None

    def test_registration_bypasses_tag_checks(self, net, probe):
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        send(net, probe, Interest(name=Name("/prov-0/register/probe/1")))
        net.run()
        assert len(upstream) == 1

    def test_aggregation_at_edge(self, net, probe):
        tag = issue_tag(net)
        upstream = []
        net.core1.on_interest = lambda i, f: upstream.append(i)
        name = Name("/prov-0/obj-0/chunk-0")
        send(net, probe, Interest(name=name, tag=tag))
        send(net, probe, Interest(name=name, tag=tag))
        net.run()
        assert len(upstream) == 1  # second aggregated into the PIT


class TestContentPath:
    def test_end_to_end_delivery_inserts_tag(self, net, probe):
        tag = issue_tag(net)
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=tag))
        net.run()
        assert len(probe.datas) == 1
        assert probe.datas[0].nack is None
        # The content router vouched with F == 0, so the edge inserted.
        assert net.edge.bloom.contains(tag.cache_key())
        assert net.edge.counters.bf_inserts == 1

    def test_invalid_signature_blocked_at_edge(self, net, probe):
        tag = issue_tag(net)
        forged = type(tag)(
            provider_key_locator=tag.provider_key_locator,
            client_key_locator=tag.client_key_locator,
            access_level=tag.access_level,
            access_path=tag.access_path,
            expiry=tag.expiry,
            signature=b"x" * 32,
        )
        send(net, probe, Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=forged))
        net.run()
        assert probe.datas == []  # NACKed content never reaches the client
        assert not net.edge.bloom.contains(forged.cache_key())

    def test_registration_response_inserted_and_delivered(self, net, probe):
        net.provider.directory.enroll("probe", 3)
        secret = net.provider.directory._entries["probe"].secret
        send(
            net,
            probe,
            Interest(name=Name("/prov-0/register/probe/1"), credentials=secret),
        )
        net.run()
        assert len(probe.datas) == 1
        response = probe.datas[0]
        assert response.is_tag_response()
        assert net.edge.bloom.contains(response.tag_response.cache_key())

    def test_second_request_served_from_cache_with_flag(self, net, probe):
        tag = issue_tag(net)
        name = Name("/prov-0/obj-0/chunk-0")
        send(net, probe, Interest(name=name, tag=tag))
        net.run()
        # Second request: tag now in edge BF, content cached at core1.
        origin_served_before = net.provider.stats.chunks_served
        net.sim.schedule(0.0, probe.faces[0].send, Interest(name=name, tag=tag))
        net.run()
        assert len(probe.datas) == 2
        assert net.provider.stats.chunks_served == origin_served_before


class TestAggregatedNackPath:
    """Lines 19-23: an attached NACK riding aggregated content affects
    only the offending PIT record — valid aggregated requesters are
    still served, and the NACK itself never crosses the edge."""

    def _two_probes(self, net):
        probes = []
        for name in ("alice", "mallory"):
            p = Probe(net.sim, name)
            net.network.add_node(p, routable=False)
            net.network.connect(p, net.ap, bandwidth_bps=10e6, latency=0.002)
            probes.append(p)
        return probes

    def _forge(self, tag):
        return type(tag)(
            provider_key_locator=tag.provider_key_locator,
            client_key_locator=tag.client_key_locator,
            access_level=tag.access_level,
            access_path=tag.access_path,
            expiry=tag.expiry,
            signature=b"x" * 32,
        )

    def _run_aggregated(self, net):
        """Forged request first (it travels upstream), valid request
        aggregated behind it at the edge.  Returns (alice, mallory,
        valid_tag, forged_tag)."""
        alice, mallory = self._two_probes(net)
        valid = issue_tag(net, user_id="alice")
        forged = self._forge(issue_tag(net, user_id="mallory"))
        name = Name("/prov-0/obj-0/chunk-0")
        send(net, mallory, Interest(name=name, tag=forged))
        # Staggered so the forged request is unambiguously first (and
        # travels upstream) while the valid one aggregates behind it.
        net.sim.schedule(
            0.001, alice.faces[0].send, Interest(name=name, tag=valid)
        )
        net.run()
        return alice, mallory, valid, forged

    def test_valid_aggregated_requester_still_served(self, net):
        alice, mallory, valid, forged = self._run_aggregated(net)
        # The origin NACKed the forged tag but returned the content
        # anyway ("to satisfy other possible valid aggregated requests").
        assert net.provider.counters.nacks_issued == 1
        assert len(alice.datas) == 1
        assert alice.datas[0].tag.cache_key() == valid.cache_key()

    def test_nack_hits_only_the_offending_record(self, net):
        alice, mallory, valid, forged = self._run_aggregated(net)
        # Lines 19-20: the offender's request is dropped, not answered.
        assert mallory.datas == []
        assert mallory.nacks == []
        assert len(alice.datas) == 1

    def test_nack_never_propagates_past_the_edge(self, net):
        alice, _, _, _ = self._run_aggregated(net)
        assert alice.datas[0].nack is None

    def test_only_the_valid_tag_enters_the_edge_filter(self, net):
        _, _, valid, forged = self._run_aggregated(net)
        # The aggregated validation (lines 22-23) verified and inserted
        # the valid tag; the NACKed tag must never be inserted.
        assert net.edge.bloom.contains(valid.cache_key())
        assert not net.edge.bloom.contains(forged.cache_key())

    def test_drop_only_ablation_starves_everyone(self, net):
        net.config.nack_carries_content = False
        alice, mallory, _, _ = self._run_aggregated(net)
        assert alice.datas == [] and mallory.datas == []
        assert net.provider.counters.nacks_issued == 1
