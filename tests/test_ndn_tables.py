"""Unit tests for FIB, PIT, and Content Store."""

from repro.ndn.cs import ContentStore
from repro.ndn.fib import Fib
from repro.ndn.name import Name
from repro.ndn.packets import AttachedNack, Data, NackReason
from repro.ndn.pit import Pit, PitRecord


def record(tag=None, flag=0.0, face="f", t=0.0, nonce=0):
    return PitRecord(tag=tag, flag_f=flag, in_face=face, arrived_at=t, nonce=nonce)


class TestFib:
    def test_longest_prefix_match(self):
        fib = Fib()
        fib.add("/a", "coarse")
        fib.add("/a/b", "fine")
        assert fib.lookup("/a/b/c") == "fine"
        assert fib.lookup("/a/x") == "coarse"
        assert fib.lookup("/other") is None

    def test_root_default_route(self):
        fib = Fib()
        fib.add("/", "default")
        assert fib.lookup("/anything/at/all") == "default"

    def test_add_if_cheaper(self):
        fib = Fib()
        assert fib.add_if_cheaper("/a", "far", cost=10.0)
        assert not fib.add_if_cheaper("/a", "farther", cost=20.0)
        assert fib.add_if_cheaper("/a", "near", cost=1.0)
        assert fib.lookup("/a") == "near"

    def test_remove(self):
        fib = Fib()
        fib.add("/a", "f")
        fib.remove("/a")
        assert fib.lookup("/a") is None

    def test_exact_entry_preferred(self):
        fib = Fib()
        fib.add("/a/b/c", "exact")
        fib.add("/a", "coarse")
        assert fib.lookup("/a/b/c") == "exact"

    def test_prefixes_listing(self):
        fib = Fib()
        fib.add("/a", 1)
        fib.add("/b/c", 2)
        assert sorted(p.to_uri() for p in fib.prefixes()) == ["/a", "/b/c"]


class TestPit:
    def test_first_insert_creates_entry(self):
        pit = Pit()
        assert pit.insert("/a/1", record(face="f1"), now=0.0) is True
        assert pit.insert("/a/1", record(face="f2"), now=0.1) is False
        entry = pit.find("/a/1")
        assert [r.in_face for r in entry.records] == ["f1", "f2"]

    def test_consume_removes_entry(self):
        pit = Pit()
        pit.insert("/a/1", record(), now=0.0)
        entry = pit.consume("/a/1")
        assert entry is not None
        assert pit.consume("/a/1") is None

    def test_expiry(self):
        pit = Pit(entry_lifetime=1.0)
        pit.insert("/a/1", record(), now=0.0)
        assert pit.find("/a/1", now=0.5) is not None
        assert pit.find("/a/1", now=2.0) is None
        assert pit.expired_records == 1
        # A new insert after expiry is a fresh entry again.
        assert pit.insert("/a/1", record(), now=2.0) is True

    def test_drop_record(self):
        pit = Pit()
        pit.insert("/a/1", record(face="f1", nonce=1), now=0.0)
        pit.insert("/a/1", record(face="f2", nonce=2), now=0.0)
        removed = pit.drop_record("/a/1", lambda r: r.nonce == 1)
        assert removed == 1
        assert [r.nonce for r in pit.find("/a/1").records] == [2]

    def test_drop_last_record_removes_entry(self):
        pit = Pit()
        pit.insert("/a/1", record(nonce=1), now=0.0)
        pit.drop_record("/a/1", lambda r: True)
        assert "/a/1" not in pit

    def test_purge_expired(self):
        pit = Pit(entry_lifetime=1.0)
        pit.insert("/a/1", record(), now=0.0)
        pit.insert("/a/2", record(), now=5.0)
        assert pit.purge_expired(now=3.0) == 1
        assert "/a/2" in pit


class TestContentStore:
    def make_data(self, name, **kwargs):
        return Data(name=Name(name), payload=b"x" * 16, **kwargs)

    def test_insert_lookup(self):
        cs = ContentStore(capacity=10)
        cs.insert(self.make_data("/a/1"))
        hit = cs.lookup("/a/1")
        assert hit is not None and hit.name == Name("/a/1")
        assert cs.hits == 1

    def test_miss_counted(self):
        cs = ContentStore(capacity=10)
        assert cs.lookup("/nope") is None
        assert cs.misses == 1

    def test_lru_eviction(self):
        cs = ContentStore(capacity=2)
        cs.insert(self.make_data("/a/1"))
        cs.insert(self.make_data("/a/2"))
        cs.lookup("/a/1")  # refresh /a/1
        cs.insert(self.make_data("/a/3"))  # evicts /a/2
        assert cs.lookup("/a/2") is None
        assert cs.lookup("/a/1") is not None
        assert cs.evictions == 1

    def test_capacity_zero_disables(self):
        cs = ContentStore(capacity=0)
        cs.insert(self.make_data("/a/1"))
        assert cs.lookup("/a/1") is None
        assert len(cs) == 0

    def test_lookup_returns_copy(self):
        cs = ContentStore(capacity=10)
        cs.insert(self.make_data("/a/1"))
        first = cs.lookup("/a/1")
        first.flag_f = 0.77
        second = cs.lookup("/a/1")
        assert second.flag_f == 0.0

    def test_per_request_state_stripped(self):
        cs = ContentStore(capacity=10)
        dirty = self.make_data("/a/1")
        dirty.flag_f = 0.5
        dirty.tag = object()
        dirty.nack = AttachedNack(tag_key=b"k", reason=NackReason.INVALID_SIGNATURE)
        cs.insert(dirty)
        clean = cs.lookup("/a/1")
        assert clean.flag_f == 0.0 and clean.tag is None and clean.nack is None

    def test_reinsert_moves_to_front(self):
        cs = ContentStore(capacity=2)
        cs.insert(self.make_data("/a/1"))
        cs.insert(self.make_data("/a/2"))
        cs.insert(self.make_data("/a/1"))  # refresh
        cs.insert(self.make_data("/a/3"))  # evicts /a/2
        assert cs.lookup("/a/1") is not None
        assert cs.lookup("/a/2") is None
