"""Tests for the experiment harness and per-artifact reproductions.

Each reproduction runs at a deliberately tiny scale here — the goal is
to verify the harness end to end (structure, rendering, qualitative
direction), not to regenerate the paper's exact magnitudes; the
benchmarks directory does the larger runs.
"""

import pytest

from repro.experiments import SCHEME_REGISTRY, Scenario, build_assembly, run_scenario
from repro.experiments.fig5_latency import reproduce_fig5, render_fig5
from repro.experiments.fig6_tag_rates import reproduce_fig6, render_fig6
from repro.experiments.fig7_operations import reproduce_fig7, render_fig7
from repro.experiments.fig8_bf_reset import reproduce_fig8, render_fig8
from repro.experiments.report import render_series, render_table, sparkline
from repro.experiments.table2_comparison import (
    render_feature_matrix,
    render_table2,
    reproduce_table2,
)
from repro.experiments.table4_delivery import reproduce_table4, render_table4
from repro.experiments.table5_bf_resets import reproduce_table5, render_table5

TINY = dict(duration=4.0, seed=1, scale=0.15)


class TestScenario:
    def test_paper_topology_factory(self):
        scenario = Scenario.paper_topology(2, duration=5.0, seed=9, scale=0.5)
        assert scenario.label == "topo2@0.5"
        assert scenario.config.duration == 5.0
        assert len(scenario.plan.core_ids) == 90

    def test_with_config_is_functional(self):
        scenario = Scenario.paper_topology(1, **TINY)
        changed = scenario.with_config(tag_expiry=99.0)
        assert changed.config.tag_expiry == 99.0
        assert scenario.config.tag_expiry != 99.0

    def test_registry_covers_all_schemes(self):
        assert set(SCHEME_REGISTRY) == {
            "tactic", "no_bloom", "client_side", "provider_auth", "accconf"
        }


class TestAssembly:
    def test_assembly_builds_every_plan_entity(self):
        scenario = Scenario.paper_topology(1, **TINY)
        assembly = build_assembly(scenario)
        plan = scenario.plan
        for node_id in (
            plan.core_ids + plan.edge_ids + plan.provider_ids
            + plan.ap_ids + plan.client_ids + plan.attacker_ids
        ):
            assert node_id in assembly.network.nodes
        assert len(assembly.providers) == len(plan.provider_ids)
        assert len(assembly.clients) == len(plan.client_ids)
        assert len(assembly.attackers) == len(plan.attacker_ids)

    def test_every_router_has_provider_routes(self):
        scenario = Scenario.paper_topology(1, **TINY)
        assembly = build_assembly(scenario)
        for core_id in scenario.plan.core_ids:
            node = assembly.network.node(core_id)
            for provider in assembly.providers:
                assert node.fib.lookup(provider.prefix / "obj-0") is not None

    def test_rsa_scheme_assembly(self):
        scenario = Scenario.paper_topology(1, **TINY).with_config(
            signature_scheme="rsa", rsa_bits=512
        )
        assembly = build_assembly(scenario)
        from repro.crypto.rsa import RsaKeyPair

        assert isinstance(assembly.providers[0].keypair, RsaKeyPair)


class TestFig5:
    def test_structure_and_rendering(self):
        points = reproduce_fig5(topologies=(1,), bf_sizes=(100, 1000), **TINY)
        assert len(points) == 2
        assert all(p.mean_latency > 0 for p in points)
        assert all(len(p.series) >= 2 for p in points)
        text = render_fig5(points)
        assert "Fig. 5" in text and "topo1/bf100" in text


class TestFig6:
    def test_expiry_lowers_rate(self):
        points = reproduce_fig6(
            topologies=(1,), tag_expiries=(2.0, 50.0), duration=8.0, seed=1, scale=0.15
        )
        short, long = points
        assert short.request_rate > long.request_rate
        assert "Fig. 6" in render_fig6(points)


class TestFig7:
    def test_operation_ordering(self):
        rows = reproduce_fig7(topologies=(1,), duration=6.0, seed=1, scale=0.2)
        row = rows[0]
        assert row.edge_lookups > row.edge_inserts
        assert row.edge_lookups > row.core_lookups
        assert "Fig. 7" in render_fig7(rows)


class TestFig8:
    def test_fpp_lever(self):
        points = reproduce_fig8(
            tag_expiries=(3.0,),
            fpps=(1e-4, 1e-2),
            duration=25.0,
            seed=1,
            scale=0.2,
            bf_capacity=6,
        )
        low_fpp, high_fpp = points
        assert low_fpp.edge_resets >= high_fpp.edge_resets
        if high_fpp.edge_requests_per_reset and low_fpp.edge_requests_per_reset:
            assert (
                high_fpp.edge_requests_per_reset > low_fpp.edge_requests_per_reset
            )
        assert "Fig. 8" in render_fig8(points)


class TestTable4:
    def test_row_shape(self):
        rows = reproduce_table4(topologies=(1,), **TINY)
        row = rows[0]
        assert row.client_ratio > 0.95
        assert row.attacker_ratio < 0.05
        assert row.client_received <= row.client_requested
        assert "Table IV" in render_table4(rows)


class TestTable5:
    def test_bigger_filter_fewer_resets(self):
        rows = reproduce_table5(
            fpps=(1e-4,),
            small_capacity=6,
            large_capacity=60,
            duration=25.0,
            seed=1,
            scale=0.2,
            tag_expiry=3.0,
        )
        row = rows[0]
        assert row.edge_resets_small > row.edge_resets_large
        assert row.edge_improvement() > 0.5
        assert "Table V" in render_table5(rows)


class TestTable2:
    def test_measured_comparison_direction(self):
        measurements = reproduce_table2(duration=4.0, seed=1, scale=0.15)
        by_scheme = {m.scheme: m for m in measurements}
        assert by_scheme["tactic"].attacker_ratio < 0.05
        assert by_scheme["client_side"].attacker_ratio > 0.9
        assert (
            by_scheme["no_bloom"].router_verifications
            > by_scheme["tactic"].router_verifications
        )
        assert (
            by_scheme["provider_auth"].origin_chunks_served
            > by_scheme["tactic"].origin_chunks_served
        )
        text = render_table2(measurements)
        assert "Table II" in text and "tactic" in text

    def test_feature_matrix_renders(self):
        assert "TACTIC" in render_feature_matrix()


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [[1, 2.5], ["long-cell", 0.0001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_render_series(self):
        text = render_series([(0.0, 1.0), (1.0, 2.0)], label="lat")
        assert "lat" in text and "2" in text
        assert "(empty series)" in render_series([], label="x")

    def test_sparkline(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == "▁▁"  # flat series does not crash


class TestRunResultNetworkStats:
    def test_bytes_and_drops_exposed(self):
        result = run_scenario(Scenario.paper_topology(1, **TINY))
        assert result.network_bytes() > 0
        assert result.network_drops() >= 0
        assert result.wall_seconds > 0
