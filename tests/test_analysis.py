"""Tests for the analytical models, including simulation cross-checks."""

import pytest

from repro.analysis import (
    expected_resets,
    expected_verification_probability,
    inserts_to_saturation,
    registration_rate,
    requests_per_reset,
    revocation_exposure,
    tag_bandwidth_overhead,
)
from repro.analysis.bloom_math import tag_insert_rate
from repro.analysis.cache_math import (
    aggregate_hit_ratio,
    characteristic_time,
    expected_origin_load,
    hit_ratios,
    zipf_popularities,
)
from repro.analysis.overhead_math import unauthorized_bandwidth_waste
from repro.analysis.revocation_math import revocation_cost_per_client
from repro.experiments import Scenario, run_scenario
from repro.filters.bloom import BloomFilter


class TestBloomMath:
    def test_saturation_at_sizing_point(self):
        # Sized for 500 @ 1e-4 and reset at 1e-4: budget is capacity.
        assert inserts_to_saturation(500, 1e-4) == pytest.approx(500, rel=0.01)

    def test_fpp_lever_multiplies_budget(self):
        strict = inserts_to_saturation(500, 1e-4)
        lax = inserts_to_saturation(500, 1e-2)
        assert 2.5 < lax / strict < 3.5  # analytic ratio ~2.95 for k=5

    def test_matches_actual_filter(self):
        # The model must agree with the real implementation.
        for capacity, max_fpp in [(100, 1e-4), (100, 1e-2), (300, 1e-3)]:
            bloom = BloomFilter(capacity=capacity, max_fpp=max_fpp, sizing_fpp=1e-4)
            inserts = 0
            while not bloom.is_saturated():
                bloom.insert(f"item-{inserts}")
                inserts += 1
            predicted = inserts_to_saturation(capacity, max_fpp)
            assert inserts == pytest.approx(predicted, rel=0.02)

    def test_expected_resets(self):
        # 10 inserts/s for 100 s into a 500-budget filter: 2 resets.
        assert expected_resets(10.0, 100.0, 500, 1e-4) == pytest.approx(2.0, rel=0.01)
        assert expected_resets(0.0, 100.0, 500, 1e-4) == 0.0

    def test_requests_per_reset_scales_with_request_ratio(self):
        base = requests_per_reset(100.0, 1.0, 500, 1e-4)
        doubled = requests_per_reset(200.0, 1.0, 500, 1e-4)
        assert doubled == pytest.approx(2 * base)
        assert requests_per_reset(100.0, 0.0, 500, 1e-4) == float("inf")

    def test_tag_insert_rate(self):
        assert tag_insert_rate(2.0, 3.0, 10.0) == pytest.approx(0.6)
        with pytest.raises(ValueError):
            tag_insert_rate(1, 1, 0)


class TestBloomMathEdges:
    """Degenerate regimes the statescope conformance engine can hit."""

    def test_zero_insert_rate_means_zero_resets(self):
        assert expected_resets(0.0, 100.0, 500, 1e-4) == 0.0
        assert expected_resets(-1.0, 100.0, 500, 1e-4) == 0.0
        assert expected_resets(10.0, 0.0, 500, 1e-4) == 0.0

    def test_zero_insert_rate_requests_never_reset(self):
        assert requests_per_reset(100.0, 0.0, 500, 1e-4) == float("inf")
        assert requests_per_reset(0.0, 1.0, 500, 1e-4) == 0.0

    def test_no_hash_functions_rejected(self):
        with pytest.raises(ValueError):
            inserts_to_saturation(500, 1e-4, num_hashes=0)
        with pytest.raises(ValueError):
            inserts_to_saturation(500, 1e-4, num_hashes=-1)

    def test_saturation_threshold_at_certainty_never_triggers(self):
        assert inserts_to_saturation(500, 1.0) == float("inf")
        assert inserts_to_saturation(500, 1.5) == float("inf")
        assert expected_resets(10.0, 100.0, 500, 1.0) == 0.0

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError):
            inserts_to_saturation(500, 0.0)
        with pytest.raises(ValueError):
            inserts_to_saturation(500, -1e-4)

    def test_zero_clients_insert_nothing(self):
        assert tag_insert_rate(0.0, 3.0, 10.0) == 0.0


class TestCacheMathEdges:
    """Che's approximation at the boundaries of its domain."""

    def test_empty_cache_rejected(self):
        with pytest.raises(ValueError):
            characteristic_time([0.5, 0.5], capacity=0)
        with pytest.raises(ValueError):
            aggregate_hit_ratio([0.5, 0.5], capacity=0)

    def test_empty_catalog_hits_nothing(self):
        assert hit_ratios([], capacity=4) == []
        assert aggregate_hit_ratio([], capacity=4) == 0.0
        assert aggregate_hit_ratio([0.0, 0.0], capacity=4) == 0.0

    def test_single_object_regime(self):
        # One object against any positive capacity is always resident.
        assert zipf_popularities(1, 1.2) == [1.0]
        assert characteristic_time([1.0], capacity=1) == float("inf")
        assert hit_ratios([1.0], capacity=1) == [1.0]
        assert aggregate_hit_ratio([1.0], capacity=1) == 1.0
        assert expected_origin_load(10.0, [1.0], capacity=1) == 0.0

    def test_zero_popularity_catalog_rejected_by_che(self):
        # A finite cache with an all-zero catalog has no fixed point.
        with pytest.raises(ValueError):
            characteristic_time([0.0, 0.0, 0.0], capacity=2)

    def test_single_request_dominant_object(self):
        # A near-degenerate Zipf (one object takes almost all requests)
        # keeps the dominant object resident even in a tiny cache.
        pops = [0.999] + [0.001 / 9] * 9
        ratios = hit_ratios(pops, capacity=1)
        assert ratios[0] > 0.99
        assert aggregate_hit_ratio(pops, capacity=1) > 0.99


class TestRevocationMath:
    def test_registration_rate(self):
        assert registration_rate(35, 2.0, 10.0) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            registration_rate(35, 2.0, 0.0)
        with pytest.raises(ValueError):
            registration_rate(-1, 2.0, 1.0)

    def test_exposure_is_lifetime(self):
        assert revocation_exposure(10.0) == 10.0
        with pytest.raises(ValueError):
            revocation_exposure(-1.0)

    def test_cost_per_client(self):
        assert revocation_cost_per_client(200) == 200
        with pytest.raises(ValueError):
            revocation_cost_per_client(-1)


class TestOverheadMath:
    def test_verification_probability_bounds(self):
        assert expected_verification_probability(1e-4, 0.0) == pytest.approx(1e-4)
        assert expected_verification_probability(0.5, 0.5) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            expected_verification_probability(2.0, 0.0)
        with pytest.raises(ValueError):
            expected_verification_probability(0.0, -0.1)

    def test_tag_overhead(self):
        assert tag_bandwidth_overhead(200, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            tag_bandwidth_overhead(200, 0)

    def test_bandwidth_waste(self):
        assert unauthorized_bandwidth_waste(5.0, 1024, 1.0, 10.0) == pytest.approx(
            51200.0
        )
        assert unauthorized_bandwidth_waste(5.0, 1024, 0.0, 10.0) == 0.0
        with pytest.raises(ValueError):
            unauthorized_bandwidth_waste(5.0, 1024, 1.5, 10.0)


class TestModelsVsSimulation:
    """Cross-checks: analytical predictions vs. the simulator."""

    def test_registration_rate_prediction(self):
        duration = 20.0
        result = run_scenario(
            Scenario.paper_topology(1, duration=duration, seed=2, scale=0.2).with_config(
                tag_expiry=5.0
            )
        )
        measured_q, _ = result.tag_rates()
        # Infer providers-per-client from the measurement itself at one
        # expiry, then check the *scaling* against a second expiry.
        providers_per_client = measured_q * 5.0 / len(result.clients)
        predicted_long = registration_rate(
            len(result.clients), providers_per_client, 20.0
        )
        result_long = run_scenario(
            Scenario.paper_topology(1, duration=duration, seed=2, scale=0.2).with_config(
                tag_expiry=20.0
            )
        )
        measured_long, _ = result_long.tag_rates()
        # Finite-horizon effects (initial burst) keep this loose.
        assert measured_long == pytest.approx(predicted_long, rel=0.8)
        assert measured_long < measured_q

    def test_reset_budget_prediction(self):
        # Drive one filter through the runner and compare reset counts
        # against the analytic budget given the measured insert count.
        result = run_scenario(
            Scenario.paper_topology(1, duration=30.0, seed=2, scale=0.2).with_config(
                tag_expiry=2.0, bf_capacity=6
            )
        )
        edge = result.operation_counts(edge=True)
        budget = inserts_to_saturation(6, 1e-4)
        predicted = edge.bf_inserts / budget
        assert edge.bf_resets == pytest.approx(predicted, abs=max(4, predicted * 0.5))
