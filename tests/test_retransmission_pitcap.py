"""Tests for client retransmission and the PIT-capacity backstop."""

import pytest

from repro.ndn.name import Name
from repro.ndn.packets import Interest
from repro.ndn.pit import Pit, PitRecord

from tests.conftest import attach_client, build_mini_net


class TestRetransmission:
    def test_disabled_by_default(self):
        net = build_mini_net()
        client = attach_client(net, "alice")
        # Let registration succeed, then silence the provider so content
        # requests for uncached chunks time out.
        net.sim.schedule(1.5, setattr, net.provider, "online", False)
        client.start(at=0.0, until=3.0)
        net.run(until=5.0)
        stats = net.metrics.user("alice")
        assert stats.retransmissions == 0
        assert stats.timeouts > 0

    def test_retransmission_recovers_transient_outage(self):
        net = build_mini_net()
        net.config.max_retransmissions = 3
        client = attach_client(net, "alice")
        # Outage window shorter than retransmission budget: requests
        # issued during it succeed on a later attempt.
        net.sim.schedule(1.0, setattr, net.provider, "online", False)
        net.sim.schedule(2.5, setattr, net.provider, "online", True)
        client.start(at=0.0, until=8.0)
        net.run(until=12.0)
        stats = net.metrics.user("alice")
        assert stats.retransmissions > 0
        # The slots stuck in the outage recovered instead of timing out.
        assert stats.delivery_ratio() > 0.99

    def test_retransmission_budget_respected(self):
        net = build_mini_net()
        net.config.max_retransmissions = 2
        client = attach_client(net, "alice")
        # Registration succeeds, then a permanent outage.
        net.sim.schedule(0.5, setattr, net.provider, "online", False)
        client.start(at=0.0, until=2.0)
        net.run(until=12.0)
        stats = net.metrics.user("alice")
        # Every outstanding request retried at most twice then gave up.
        assert stats.retransmissions <= 2 * (stats.timeouts + len(client._outstanding))
        assert stats.timeouts > 0

    def test_retransmission_does_not_inflate_request_count(self):
        # chunks_requested counts distinct chunks, not wire sends.
        net = build_mini_net()
        net.config.max_retransmissions = 3
        client = attach_client(net, "alice")
        net.provider.online = False
        client.start(at=0.0, until=1.5)
        net.run(until=8.0)
        stats = net.metrics.user("alice")
        assert stats.chunks_requested <= net.config.window_size + 1


class TestPitCapacity:
    def record(self, nonce=0):
        return PitRecord(tag=None, flag_f=0.0, in_face="f", arrived_at=0.0, nonce=nonce)

    def test_unlimited_by_default(self):
        pit = Pit()
        for i in range(1000):
            pit.insert(f"/n/{i}", self.record(), now=0.0)
        assert len(pit) == 1000
        assert pit.rejections == 0

    def test_capacity_sheds_new_entries(self):
        pit = Pit(capacity=3)
        for i in range(3):
            assert pit.insert(f"/n/{i}", self.record(), now=0.0) is True
        assert pit.insert("/n/overflow", self.record(), now=0.0) is False
        assert pit.rejections == 1
        assert "/n/overflow" not in pit

    def test_aggregation_still_works_at_capacity(self):
        pit = Pit(capacity=2)
        pit.insert("/n/0", self.record(1), now=0.0)
        pit.insert("/n/1", self.record(2), now=0.0)
        # Existing names aggregate fine even when full.
        assert pit.insert("/n/0", self.record(3), now=0.0) is False
        assert len(pit.find("/n/0").records) == 2
        assert pit.rejections == 0

    def test_expired_entries_purged_before_shedding(self):
        pit = Pit(entry_lifetime=1.0, capacity=2)
        pit.insert("/n/0", self.record(), now=0.0)
        pit.insert("/n/1", self.record(), now=0.0)
        # At t=5 both are expired: the new entry takes a purged slot.
        assert pit.insert("/n/2", self.record(), now=5.0) is True
        assert pit.rejections == 0

    def test_flooding_defence_end_to_end(self):
        from repro.core.config import TacticConfig
        from repro.crypto.cost_model import ZERO_COST_MODEL

        net = build_mini_net(
            TacticConfig(cost_model=ZERO_COST_MODEL, pit_capacity=4)
        )
        # Blast 50 distinct no-tag interests through core1 toward a
        # blackholed upstream: the PIT must shed, not grow.
        net.core2.on_interest = lambda i, f: None
        for i in range(50):
            net.sim.schedule(
                0.0,
                net.core1.receive,
                Interest(name=Name(f"/prov-0/obj-{i}/chunk-0")),
                net.core1.faces[0],
            )
        net.run(until=1.0)
        assert len(net.core1.pit) <= 4
        assert net.core1.pit.rejections >= 46
