"""simlint: one failing fixture per rule, suppression semantics,
reporters, CLI exit codes, and the repo-is-clean gate."""

from __future__ import annotations

import json
import pathlib
import textwrap

from repro.qa.findings import Finding, render_json, render_text
from repro.qa.lint import lint_paths, main, parse_suppressions
from repro.qa.rules import package_relpath

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def run_lint(tmp_path, source, name="fixture.py", select=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], select=select)


def codes(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# SL001: wall clock
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert codes(findings) == ["SL001"]
        assert "time.time" in findings[0].message

    def test_from_import_alias_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            from time import perf_counter as tick

            def stamp():
                return tick()
            """,
        )
        assert codes(findings) == ["SL001"]

    def test_datetime_now_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
        )
        assert codes(findings) == ["SL001"]

    def test_virtual_time_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def stamp(sim):
                return sim.now
            """,
        )
        assert findings == []

    def test_out_of_scope_path_exempt(self, tmp_path):
        # Files under a repro/ tree but outside sim-affecting
        # subpackages (e.g. the experiment harness) may wall-clock.
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        path = pkg / "harness.py"
        path.write_text("import time\nwall = time.time()\n")
        assert lint_paths([str(path)], select={"SL001"}) == []

    def test_sim_scope_path_checked(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        path = pkg / "clock.py"
        path.write_text("import time\nwall = time.time()\n")
        assert codes(lint_paths([str(path)])) == ["SL001"]


# ---------------------------------------------------------------------------
# SL002: stdlib random
# ---------------------------------------------------------------------------
class TestStdlibRandom:
    def test_import_random_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "import random\n")
        assert codes(findings) == ["SL002"]

    def test_from_random_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "from random import choice\n")
        assert codes(findings) == ["SL002"]

    def test_rng_streams_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            from repro.sim.rng import Stream, seeded_stream

            def draw(rng: Stream) -> float:
                return rng.random()
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SL003: undeclared event / metric names
# ---------------------------------------------------------------------------
class TestUndeclaredNames:
    REGISTRY = textwrap.dedent(
        """
        KNOWN_EVENTS = ("node.rx.interest", "pit.timeout")
        METRIC_NAMES = ("pit_entries",)
        """
    )

    def test_undeclared_event_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + textwrap.dedent(
                """
                def fire(trace, now):
                    trace.emit("node.rx.intrest", now)
                """
            ),
        )
        assert codes(findings) == ["SL003"]
        assert "node.rx.intrest" in findings[0].message

    def test_declared_event_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + textwrap.dedent(
                """
                def fire(trace, now):
                    trace.emit("node.rx.interest", now)
                    trace.wants("pit.timeout")
                """
            ),
        )
        assert findings == []

    def test_undeclared_metric_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + textwrap.dedent(
                """
                def build(registry):
                    return registry.gauge("pit_entrees", "typo'd family")
                """
            ),
        )
        assert codes(findings) == ["SL003"]

    def test_silent_without_registries(self, tmp_path):
        # A lone snippet with no registry in the scan must stay quiet:
        # the rule cannot know the full declared set.
        findings = run_lint(
            tmp_path,
            """
            def fire(trace, now):
                trace.emit("anything.goes", now)
            """,
        )
        assert findings == []

    def test_wildcard_subscription_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + textwrap.dedent(
                """
                def tap(trace, sink):
                    trace.subscribe("*", sink)
                """
            ),
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SL004: mutable defaults
# ---------------------------------------------------------------------------
class TestMutableDefaults:
    def test_list_literal_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "def f(acc=[]):\n    return acc\n")
        assert codes(findings) == ["SL004"]

    def test_dict_call_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "def f(*, acc=dict()):\n    return acc\n")
        assert codes(findings) == ["SL004"]

    def test_none_default_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def f(acc=None):
                return [] if acc is None else acc
            """,
        )
        assert findings == []

    def test_immutable_defaults_clean(self, tmp_path):
        findings = run_lint(tmp_path, "def f(a=0, b=(), c='x'):\n    return a\n")
        assert findings == []


# ---------------------------------------------------------------------------
# SL005: schedule() misuse
# ---------------------------------------------------------------------------
class TestScheduleMisuse:
    def test_negative_delay_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "def f(sim, cb):\n    sim.schedule(-1.0, cb)\n")
        assert codes(findings) == ["SL005"]

    def test_invoked_callback_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "def f(sim, cb):\n    sim.schedule(1.0, cb())\n")
        assert codes(findings) == ["SL005"]
        assert "invoked at schedule time" in findings[0].message

    def test_partial_factory_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            from functools import partial

            def f(sim, cb):
                sim.schedule(1.0, partial(cb, 42))
            """,
        )
        assert findings == []

    def test_plain_callable_clean(self, tmp_path):
        findings = run_lint(tmp_path, "def f(sim, cb):\n    sim.schedule(0.5, cb, 1)\n")
        assert findings == []


# ---------------------------------------------------------------------------
# SL006: run_scenario loops in experiment drivers
# ---------------------------------------------------------------------------
class TestDirectRunScenario:
    def test_for_loop_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def reproduce(scenarios):
                results = []
                for scenario in scenarios:
                    results.append(run_scenario(scenario))
                return results
            """,
        )
        assert codes(findings) == ["SL006"]
        assert "run_specs" in findings[0].message

    def test_comprehension_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            "def reproduce(ss):\n    return [run_scenario(s) for s in ss]\n",
        )
        assert codes(findings) == ["SL006"]

    def test_nested_loop_flagged_once(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def reproduce(grid, seeds):
                for point in grid:
                    for seed in seeds:
                        run_scenario(point, seed)
            """,
        )
        assert codes(findings) == ["SL006"]

    def test_straight_line_call_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def reproduce(scenario):
                return run_scenario(scenario)
            """,
        )
        assert findings == []

    def test_run_specs_loop_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def reproduce(specs):
                out = []
                for summary in run_specs(specs):
                    out.append(summary)
                return out
            """,
        )
        assert findings == []

    def test_non_experiment_path_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "exec"
        pkg.mkdir(parents=True)
        path = pkg / "engine.py"
        path.write_text(
            "def drain(scenarios):\n"
            "    return [run_scenario(s) for s in scenarios]\n"
        )
        assert lint_paths([str(path)], select={"SL006"}) == []

    def test_experiments_path_checked(self, tmp_path):
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        path = pkg / "driver.py"
        path.write_text(
            "def drain(scenarios):\n"
            "    return [run_scenario(s) for s in scenarios]\n"
        )
        assert codes(lint_paths([str(path)])) == ["SL006"]


# ---------------------------------------------------------------------------
# SL007: fleet event names
# ---------------------------------------------------------------------------
class TestFleetEvents:
    REGISTRY = 'FLEET_EVENTS = ("fleet.run.start", "fleet.run.done")\n'

    def test_declared_emission_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def go(self):\n"
            + '    self._event("fleet.run.start", {})\n',
        )
        assert findings == []

    def test_undeclared_emission_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def go(self):\n"
            + '    self._event("fleet.run.strat", {})\n',
        )
        assert codes(findings) == ["SL007"]
        assert "fleet.run.strat" in findings[0].message

    def test_registry_in_sibling_module_counts(self, tmp_path):
        # FLEET_EVENTS lives in repro/obs/fleet.py; the emission site in
        # repro/exec/engine.py is checked against it cross-file.
        (tmp_path / "registry.py").write_text(self.REGISTRY)
        (tmp_path / "engine.py").write_text(
            'def go(self):\n    self._event("fleet.bogus", {})\n'
        )
        findings = lint_paths(
            [str(tmp_path / "registry.py"), str(tmp_path / "engine.py")],
            select={"SL007"},
        )
        assert codes(findings) == ["SL007"]

    def test_quiet_without_any_registry(self, tmp_path):
        findings = run_lint(
            tmp_path,
            'def go(self):\n    self._event("fleet.bogus", {})\n',
            select={"SL007"},
        )
        assert findings == []

    def test_out_of_scope_package_exempt(self, tmp_path):
        # Only obs/ and exec/ modules emit fleet events; an unrelated
        # subpackage using a same-named helper is not checked.
        pkg = tmp_path / "repro" / "ndn"
        pkg.mkdir(parents=True)
        (pkg / "router.py").write_text(
            self.REGISTRY
            + 'def go(self):\n    self._event("not.a.fleet.event", {})\n'
        )
        assert lint_paths([str(pkg / "router.py")], select={"SL007"}) == []

    def test_obs_package_checked(self, tmp_path):
        pkg = tmp_path / "repro" / "obs"
        pkg.mkdir(parents=True)
        (pkg / "fleet.py").write_text(
            self.REGISTRY
            + 'def go(self):\n    self._event("fleet.typo", {})\n'
        )
        assert codes(lint_paths([str(pkg / "fleet.py")])) == ["SL007"]

    def test_non_literal_and_non_emit_calls_ignored(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def go(self, name):\n"
            + "    self._event(name, {})\n"
            + '    self.note("fleet.bogus")\n',
            select={"SL007"},
        )
        assert findings == []

    def test_suppression_honoured(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def go(self):\n"
            + '    self._event("fleet.legacy", {})  # simlint: disable=SL007\n',
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SL008: audit decision kinds
# ---------------------------------------------------------------------------
class TestDecisionKinds:
    REGISTRY = 'DECISION_KINDS = ("bf_hit", "bf_miss", "nack")\n'

    def test_declared_kind_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def note(self, node):\n"
            + '    self.record_decision("bf_hit", node, outcome="hit")\n',
        )
        assert findings == []

    def test_undeclared_kind_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def note(self, node):\n"
            + '    self.record_decision("bf_hti", node)\n',
        )
        assert codes(findings) == ["SL008"]
        assert "bf_hti" in findings[0].message

    def test_non_literal_kind_flagged(self, tmp_path):
        # Unlike SL007, a dynamic first argument is itself a finding:
        # the decision namespace must stay statically checkable.
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def note(self, node, kind):\n"
            + "    self.record_decision(kind, node)\n",
            select={"SL008"},
        )
        assert codes(findings) == ["SL008"]
        assert "string literal" in findings[0].message

    def test_registry_in_sibling_module_counts(self, tmp_path):
        # DECISION_KINDS lives in repro/obs/audit.py; call sites in the
        # core routers are checked against it cross-file.
        (tmp_path / "audit.py").write_text(self.REGISTRY)
        (tmp_path / "router.py").write_text(
            'def note(self, node):\n    self.record_decision("bogus", node)\n'
        )
        findings = lint_paths(
            [str(tmp_path / "audit.py"), str(tmp_path / "router.py")],
            select={"SL008"},
        )
        assert codes(findings) == ["SL008"]

    def test_quiet_without_any_registry(self, tmp_path):
        findings = run_lint(
            tmp_path,
            'def note(self, node):\n    self.record_decision("bogus", node)\n',
            select={"SL008"},
        )
        assert findings == []

    def test_out_of_scope_package_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "exec"
        pkg.mkdir(parents=True)
        (pkg / "engine.py").write_text(
            self.REGISTRY
            + 'def note(self, node):\n    self.record_decision("bogus", node)\n'
        )
        assert lint_paths([str(pkg / "engine.py")], select={"SL008"}) == []

    def test_core_package_checked(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "router.py").write_text(
            self.REGISTRY
            + 'def note(self, node):\n    self.record_decision("typo", node)\n'
        )
        assert codes(lint_paths([str(pkg / "router.py")])) == ["SL008"]

    def test_other_calls_ignored(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def note(self, node):\n"
            + '    self.record("bogus", node)\n',
            select={"SL008"},
        )
        assert findings == []

    def test_suppression_honoured(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def note(self, node):\n"
            + '    self.record_decision("legacy", node)'
            + "  # simlint: disable=SL008\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SL009: perf phase names
# ---------------------------------------------------------------------------
class TestPerfPhases:
    REGISTRY = 'PERF_PHASES = ("engine.pop", "ndn.pit", "filters.bloom")\n'

    def test_declared_phase_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def lookup(self, name):\n"
            + '    with self.perf.phase("ndn.pit"):\n'
            + "        pass\n",
        )
        assert findings == []

    def test_undeclared_phase_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def lookup(self, name):\n"
            + '    with self.perf.phase("ndn.pti"):\n'
            + "        pass\n",
        )
        assert codes(findings) == ["SL009"]
        assert "ndn.pti" in findings[0].message

    def test_account_checked_too(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def insert(self, item):\n"
            + '    perf.account("filters.blom", 0.5)\n',
            select={"SL009"},
        )
        assert codes(findings) == ["SL009"]

    def test_non_literal_phase_flagged(self, tmp_path):
        # The phase namespace must stay statically checkable, so a
        # dynamic first argument is itself a finding (mirrors SL008).
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def lookup(self, name, which):\n"
            + "    with self.perf.phase(which):\n"
            + "        pass\n",
            select={"SL009"},
        )
        assert codes(findings) == ["SL009"]
        assert "string literal" in findings[0].message

    def test_registry_in_sibling_module_counts(self, tmp_path):
        # PERF_PHASES lives in repro/obs/perf.py; call sites in the core
        # components are checked against it cross-file.
        (tmp_path / "perf.py").write_text(self.REGISTRY)
        (tmp_path / "pit.py").write_text(
            'def lookup(self, name):\n    self.perf.account("bogus", 0.1)\n'
        )
        findings = lint_paths(
            [str(tmp_path / "perf.py"), str(tmp_path / "pit.py")],
            select={"SL009"},
        )
        assert codes(findings) == ["SL009"]

    def test_quiet_without_any_registry(self, tmp_path):
        findings = run_lint(
            tmp_path,
            'def lookup(self, name):\n    self.perf.account("bogus", 0.1)\n',
            select={"SL009"},
        )
        assert findings == []

    def test_other_calls_ignored(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def lookup(self, name):\n"
            + '    self.perf.note("bogus")\n',
            select={"SL009"},
        )
        assert findings == []

    def test_suppression_honoured(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def lookup(self, name):\n"
            + '    self.perf.account("legacy", 0.1)'
            + "  # simlint: disable=SL009\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SL015: fleet phase names
# ---------------------------------------------------------------------------
class TestFleetPhases:
    REGISTRY = 'FLEETPERF_PHASES = ("fleet.sim", "fleet.pickle", "fleet.cache")\n'

    def test_declared_phase_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def run(self, spec):\n"
            + '    self.lifecycle.charge("fleet.sim", 1.0)\n',
        )
        assert findings == []

    def test_undeclared_phase_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def run(self, spec):\n"
            + '    self.lifecycle.charge("fleet.simm", 1.0)\n',
            select={"SL015"},
        )
        assert codes(findings) == ["SL015"]
        assert "fleet.simm" in findings[0].message

    def test_non_literal_phase_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def run(self, spec, which):\n"
            + "    self.lifecycle.charge(which, 1.0)\n",
            select={"SL015"},
        )
        assert codes(findings) == ["SL015"]
        assert "string literal" in findings[0].message

    def test_registry_in_sibling_module_counts(self, tmp_path):
        # FLEETPERF_PHASES lives in repro/obs/fleetperf.py; charge()
        # call sites in the engine are checked against it cross-file.
        (tmp_path / "fleetperf.py").write_text(self.REGISTRY)
        (tmp_path / "engine.py").write_text(
            'def run(self, spec):\n    fleet.charge("fleet.bogus", 0.1)\n'
        )
        findings = lint_paths(
            [str(tmp_path / "fleetperf.py"), str(tmp_path / "engine.py")],
            select={"SL015"},
        )
        assert codes(findings) == ["SL015"]

    def test_quiet_without_any_registry(self, tmp_path):
        findings = run_lint(
            tmp_path,
            'def run(self, spec):\n    fleet.charge("fleet.bogus", 0.1)\n',
            select={"SL015"},
        )
        assert findings == []

    def test_registry_does_not_leak_into_perf_phases(self, tmp_path):
        # FLEETPERF_PHASES ends with _PHASES, but it must feed SL015
        # only — a perf.phase() call using a fleet name stays a SL009
        # finding.
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + 'PERF_PHASES = ("engine.pop",)\n'
            + "def lookup(self):\n"
            + '    with self.perf.phase("fleet.sim"):\n'
            + "        pass\n",
            select={"SL009"},
        )
        assert codes(findings) == ["SL009"]

    def test_suppression_honoured(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def run(self, spec):\n"
            + '    self.lifecycle.charge("fleet.legacy", 0.1)'
            + "  # simlint: disable=SL015\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SL016: statescope series names
# ---------------------------------------------------------------------------
class TestStateScopeSeries:
    REGISTRY = (
        'STATESCOPE_SERIES = ("state.pit.entries", "state.cs.bytes", '
        '"state.total.bytes")\n'
    )

    def test_declared_series_clean(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def sample(self, now):\n"
            + '    self.track("state.pit.entries", now, 1.0)\n',
        )
        assert findings == []

    def test_undeclared_series_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def sample(self, now):\n"
            + '    self.track("state.pit.entires", now, 1.0)\n',
            select={"SL016"},
        )
        assert codes(findings) == ["SL016"]
        assert "state.pit.entires" in findings[0].message

    def test_non_literal_series_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def sample(self, now, name):\n"
            + "    self.track(name, now, 1.0)\n",
            select={"SL016"},
        )
        assert codes(findings) == ["SL016"]
        assert "string literal" in findings[0].message

    def test_registry_in_sibling_module_counts(self, tmp_path):
        # STATESCOPE_SERIES lives in repro/obs/statescope.py; track()
        # call sites elsewhere are checked against it cross-file.
        (tmp_path / "statescope.py").write_text(self.REGISTRY)
        (tmp_path / "engine.py").write_text(
            'def sample(self, now):\n    scope.track("state.bogus", now, 1.0)\n'
        )
        findings = lint_paths(
            [str(tmp_path / "statescope.py"), str(tmp_path / "engine.py")],
            select={"SL016"},
        )
        assert codes(findings) == ["SL016"]

    def test_quiet_without_any_registry(self, tmp_path):
        findings = run_lint(
            tmp_path,
            'def sample(self, now):\n    scope.track("state.bogus", now, 1.0)\n',
            select={"SL016"},
        )
        assert findings == []

    def test_registry_does_not_leak_into_other_registries(self, tmp_path):
        # STATESCOPE_SERIES feeds SL016 only — an emit() of a state
        # series name is still an undeclared event for SL003.
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + 'KNOWN_EVENTS = ("interest.sent",)\n'
            + "def sample(self):\n"
            + '    self.trace.emit("state.pit.entries", {})\n',
            select={"SL003"},
        )
        assert codes(findings) == ["SL003"]

    def test_suppression_honoured(self, tmp_path):
        findings = run_lint(
            tmp_path,
            self.REGISTRY
            + "def sample(self, now):\n"
            + '    self.track("state.legacy", now, 1.0)'
            + "  # simlint: disable=SL016\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
class TestSuppression:
    def test_targeted_suppression(self, tmp_path):
        findings = run_lint(
            tmp_path, "import random  # deliberate  # simlint: disable=SL002\n"
        )
        assert findings == []

    def test_blanket_suppression(self, tmp_path):
        findings = run_lint(tmp_path, "import random  # simlint: disable\n")
        assert findings == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        findings = run_lint(tmp_path, "import random  # simlint: disable=SL001\n")
        assert codes(findings) == ["SL002"]

    def test_suppression_is_per_line(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import random  # simlint: disable=SL002
            from random import choice
            """,
        )
        assert codes(findings) == ["SL002"]

    def test_parse_multiple_codes(self):
        sup = parse_suppressions("x = 1  # simlint: disable=SL001, SL004\n")
        assert sup == {1: frozenset({"SL001", "SL004"})}


# ---------------------------------------------------------------------------
# Reporters / loader / CLI
# ---------------------------------------------------------------------------
class TestReporting:
    def test_syntax_error_becomes_sl000(self, tmp_path):
        findings = run_lint(tmp_path, "def broken(:\n")
        assert codes(findings) == ["SL000"]

    def test_text_reporter_format(self):
        finding = Finding(path="a.py", line=3, col=5, rule="SL001", message="boom")
        assert render_text([finding]) == "a.py:3:5: SL001 boom"

    def test_json_reporter_roundtrip(self):
        finding = Finding(path="a.py", line=3, col=5, rule="SL001", message="boom")
        [parsed] = json.loads(render_json([finding]))
        assert parsed == {
            "path": "a.py", "line": 3, "col": 5, "rule": "SL001", "message": "boom",
        }

    def test_select_restricts_rules(self, tmp_path):
        source = "import random\ndef f(acc=[]):\n    return acc\n"
        assert codes(run_lint(tmp_path, source)) == ["SL002", "SL004"]
        assert codes(run_lint(tmp_path, source, select={"SL004"})) == ["SL004"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(dirty), "--select", "SL999"]) == 2
        assert main([]) == 2
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SL005" in out

    def test_cli_json_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "SL002"
        assert payload["stats"]["findings"] == 1
        assert payload["stats"]["wall_seconds"] >= 0.0

    def test_cli_sarif_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(dirty), "--format", "sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        assert [r["ruleId"] for r in run["results"]] == ["SL002"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SL000", "SL002", "SL009"} <= rule_ids

    def test_parallel_matches_serial(self, tmp_path):
        # Registry in one file, a bad emit in another: the judge phase
        # must see the *merged* registries whichever path produced the
        # candidates.
        (tmp_path / "registry.py").write_text(
            'KNOWN_EVENTS = ("node.rx",)\n'
        )
        (tmp_path / "emitter.py").write_text(
            'def go(trace):\n    trace.emit("node.rxx", 1)\n'
        )
        (tmp_path / "dirty.py").write_text("import random\n")
        serial = lint_paths([str(tmp_path)], jobs=1)
        parallel = lint_paths([str(tmp_path)], jobs=2)
        assert serial == parallel
        assert codes(serial) == ["SL002", "SL003"]


class TestPackageRelpath:
    def test_repro_anchored(self):
        assert package_relpath("src/repro/ndn/node.py") == "ndn/node.py"

    def test_innermost_repro_wins(self):
        assert package_relpath("repro/vendor/repro/sim/x.py") == "sim/x.py"

    def test_bare_file(self):
        assert package_relpath("/tmp/fixture.py") == "fixture.py"


# ---------------------------------------------------------------------------
# The gate the CI job enforces
# ---------------------------------------------------------------------------
def test_repo_is_simlint_clean():
    findings = lint_paths([str(REPO_SRC)])
    assert findings == [], render_text(findings)
