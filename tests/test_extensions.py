"""Tests for the extensions: mobility, explicit revocation, traitor tracing."""

import pytest

from repro.core.access_path import expected_access_path
from repro.core.attacker import Attacker, AttackerMode
from repro.extensions import (
    MobileClient,
    MobilityManager,
    RevocableCoreRouter,
    RevocableEdgeRouter,
    RevocationAuthority,
    TracingEdgeRouter,
    TraitorDetector,
)
from repro.extensions.explicit_revocation import (
    RevocableTagFilter,
    collect_revocable_routers,
)
from repro.crypto.cost_model import ZERO_COST_MODEL
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.core.config import TacticConfig
from repro.core.metrics import MetricsCollector
from repro.core.provider import Provider
from repro.crypto.pki import CertificateStore
from repro.ndn.network import Network
from repro.ndn.node import AccessPoint
from repro.sim.engine import Simulator
from repro.workload.catalog import build_catalog

from tests.conftest import attach_client, build_mini_net


# ----------------------------------------------------------------------
# Explicit revocation
# ----------------------------------------------------------------------
class TestRevocableTagFilter:
    def test_filter_api_compatibility(self):
        f = RevocableTagFilter(capacity=50)
        f.insert(b"tag")
        assert f.contains(b"tag")
        assert f.total_inserts == 1 and f.total_lookups == 1
        assert not f.is_saturated()
        f.reset()
        assert not f.contains(b"tag")
        assert f.reset_count == 1

    def test_remove(self):
        f = RevocableTagFilter(capacity=50)
        f.insert(b"a")
        f.insert(b"b")
        assert f.remove(b"a")
        assert not f.contains(b"a")
        assert f.contains(b"b")
        assert not f.remove(b"ghost")

    def test_auto_reset(self):
        f = RevocableTagFilter(capacity=5)
        fired = [f.insert_with_auto_reset(f"t{i}".encode()) for i in range(10)]
        assert any(fired)


def build_revocable_net():
    """mini-net variant with revocation-capable routers."""
    config = TacticConfig(cost_model=ZERO_COST_MODEL, tag_expiry=30.0)
    sim = Simulator(seed=9)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()
    provider = Provider(
        sim, "prov-0", config, cert_store, SimulatedKeyPair.generate(sim.rng.stream("p"))
    )
    provider.publish_catalog([1, 2, 3])
    edge = RevocableEdgeRouter(sim, "edge-0", config, cert_store, metrics)
    core = RevocableCoreRouter(sim, "core-0", config, cert_store, metrics)
    ap = AccessPoint(sim, "ap-0")
    for node in (provider, edge, core):
        network.add_node(node)
    network.add_node(ap, routable=False)
    network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
    network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
    network.connect(core, provider, bandwidth_bps=500e6, latency=0.001)
    ap.set_uplink(ap.face_toward(edge))
    network.announce_prefix(provider.prefix, provider)

    from repro.core.client import Client

    keys = SimulatedKeyPair.generate(sim.rng.stream("alice"))
    client = Client(
        sim, "alice", config, build_catalog([provider]).accessible_to(3),
        metrics.user("alice"), access_level=3, keypair=keys,
    )
    client.credentials["prov-0"] = provider.directory.enroll(
        "alice", 3, public_key=keys.public
    )
    network.add_node(client, routable=False)
    network.connect(client, ap, bandwidth_bps=10e6, latency=0.002)
    return sim, network, config, provider, edge, core, client, metrics


class TestExplicitRevocation:
    def test_immediate_cutoff(self):
        sim, network, config, provider, edge, core, client, metrics = (
            build_revocable_net()
        )
        client.start(at=0.0, until=20.0)
        authority = RevocationAuthority(
            sim, routers=[edge, core], propagation_delay=0.01
        )
        events = []
        revoke_at = 5.0
        sim.schedule(revoke_at, lambda: events.append(
            authority.revoke_user(provider, "alice")
        ))
        sim.run(until=22.0)

        stats = metrics.user("alice")
        event = events[0]
        assert event.tag_keys, "provider should have tracked the issued tag"
        # Tag expiry is 30 s — stock TACTIC would let alice run to the
        # end; explicit revocation kills her within the propagation delay
        # (plus requests already in flight).
        grace = event.completes_at + 1.0
        late = [t for t, _ in stats.latency_samples if t > grace]
        assert stats.chunks_received > 0
        assert late == []
        # Re-registration is refused too.
        assert stats.tags_received == 1

    def test_provider_tracks_issued_tags(self):
        sim, network, config, provider, edge, core, client, metrics = (
            build_revocable_net()
        )
        client.start(at=0.0, until=3.0)
        sim.run(until=5.0)
        assert len(provider.issued_tags.get("alice", [])) == 1

    def test_blacklist_beats_signature_verification(self):
        sim, network, config, provider, edge, core, client, metrics = (
            build_revocable_net()
        )
        provider.directory.enroll("bob", 3)
        tag = provider.issue_tag_direct("bob", expected_access_path(["ap-0"]))
        # Without revocation the signature verifies.
        valid, _ = core.verify_tag_signature(tag)
        assert valid
        core.revoke_tag_key(tag.cache_key())
        valid, _ = core.verify_tag_signature(tag)
        assert not valid
        found, _ = core.bf_lookup(tag)
        assert not found

    def test_collect_revocable_routers(self):
        sim, network, config, provider, edge, core, client, metrics = (
            build_revocable_net()
        )
        routers = collect_revocable_routers(network.nodes.values())
        assert set(routers) == {edge, core}


# ----------------------------------------------------------------------
# Mobility
# ----------------------------------------------------------------------
def build_mobile_net():
    net = build_mini_net()
    # Second access point on the same edge router.
    ap2 = AccessPoint(net.sim, "ap-1")
    net.network.add_node(ap2, routable=False)
    net.network.connect(ap2, net.edge, bandwidth_bps=10e6, latency=0.002)
    ap2.set_uplink(ap2.face_toward(net.edge))

    keys = SimulatedKeyPair.generate(net.sim.rng.stream("mob"))
    client = MobileClient(
        net.sim, "mobile-0", net.config,
        build_catalog([net.provider]).accessible_to(3),
        net.metrics.user("mobile-0"), access_level=3, keypair=keys,
    )
    client.credentials["prov-0"] = net.provider.directory.enroll(
        "mobile-0", 3, public_key=keys.public
    )
    net.network.add_node(client, routable=False)
    net.network.connect(client, net.ap, bandwidth_bps=10e6, latency=0.002)  # face 0
    net.network.connect(client, ap2, bandwidth_bps=10e6, latency=0.002)     # face 1
    return net, client


class TestMobility:
    def test_handover_triggers_reregistration(self):
        net, client = build_mobile_net()
        client.start(at=0.0, until=10.0)
        net.sim.schedule(4.0, client.migrate, 1)
        net.run(until=12.0)
        stats = net.metrics.user("mobile-0")
        assert client.mobility.migrations == 1
        assert client.mobility.tags_invalidated >= 1
        assert stats.tags_requested >= 2  # initial + post-handover
        assert stats.delivery_ratio() > 0.9

    def test_new_tag_binds_new_location(self):
        net, client = build_mobile_net()
        client.start(at=0.0, until=10.0)
        net.sim.schedule(4.0, client.migrate, 1)
        net.run(until=12.0)
        tag = client.tags["prov-0"]
        assert tag.access_path == expected_access_path(["ap-1"])

    def test_old_location_tag_rejected_after_move(self):
        net, client = build_mobile_net()
        client.start(at=0.0, until=3.0)
        net.run(until=3.5)
        old_tag = client.tags["prov-0"]
        assert old_tag.access_path == expected_access_path(["ap-0"])
        before = net.edge.counters.access_path_drops
        # Replay the old tag from the new location by hand.
        client.migrate(1)
        from repro.ndn.packets import Interest
        from repro.ndn.name import Name

        net.sim.schedule(
            0.0,
            client.uplink.send,
            Interest(name=Name("/prov-0/obj-0/chunk-0"), tag=old_tag),
        )
        net.run(until=6.0)
        assert net.edge.counters.access_path_drops > before

    def test_responses_on_inactive_face_dropped(self):
        net, client = build_mobile_net()
        client.start(at=0.0, until=10.0)
        # Migrate while requests are in flight.
        net.sim.schedule(2.0004, client.migrate, 1)
        net.run(until=12.0)
        assert client.mobility.responses_lost_in_handover >= 0
        assert net.metrics.user("mobile-0").delivery_ratio() > 0.8

    def test_migrate_to_same_face_is_noop(self):
        net, client = build_mobile_net()
        client.migrate(client.active_face_index)
        assert client.mobility.migrations == 0

    def test_migrate_bad_index(self):
        net, client = build_mobile_net()
        with pytest.raises(IndexError):
            client.migrate(9)

    def test_mobility_manager_moves_everyone(self):
        net, client = build_mobile_net()
        client.start(at=0.0, until=20.0)
        MobilityManager(net.sim, [client], interval=3.0, until=18.0)
        net.run(until=22.0)
        assert client.mobility.migrations >= 3
        assert net.metrics.user("mobile-0").delivery_ratio() > 0.8

    def test_mobility_manager_validates_interval(self):
        net, client = build_mobile_net()
        with pytest.raises(ValueError):
            MobilityManager(net.sim, [client], interval=0.0, until=10.0)


# ----------------------------------------------------------------------
# Traitor tracing
# ----------------------------------------------------------------------
def build_tracing_net():
    """Two APs on one tracing edge; access-path enforcement OFF so the
    shared tag actually flows (the configuration tracing exists for)."""
    config = TacticConfig(
        cost_model=ZERO_COST_MODEL, tag_expiry=30.0, enable_access_path=False
    )
    sim = Simulator(seed=13)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()
    detector = TraitorDetector()
    provider = Provider(
        sim, "prov-0", config, cert_store, SimulatedKeyPair.generate(sim.rng.stream("p"))
    )
    provider.publish_catalog([1, 2, 3])
    edge = TracingEdgeRouter(sim, "edge-0", config, cert_store, metrics, detector)
    from repro.core.core_router import CoreRouter

    core = CoreRouter(sim, "core-0", config, cert_store, metrics)
    aps = [AccessPoint(sim, f"ap-{i}") for i in range(2)]
    for node in (provider, edge, core):
        network.add_node(node)
    for ap in aps:
        network.add_node(ap, routable=False)
        network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
        ap.set_uplink(ap.face_toward(edge))
    network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
    network.connect(core, provider, bandwidth_bps=500e6, latency=0.001)
    network.announce_prefix(provider.prefix, provider)

    from repro.core.client import Client

    keys = SimulatedKeyPair.generate(sim.rng.stream("alice"))
    victim = Client(
        sim, "alice", config, build_catalog([provider]).accessible_to(3),
        metrics.user("alice"), access_level=3, keypair=keys,
    )
    victim.credentials["prov-0"] = provider.directory.enroll(
        "alice", 3, public_key=keys.public
    )
    network.add_node(victim, routable=False)
    network.connect(victim, aps[0], bandwidth_bps=10e6, latency=0.002)

    freeloader = Attacker(
        sim, "freeloader", config, build_catalog([provider]).private_only(),
        metrics.user("freeloader", is_attacker=True),
        mode=AttackerMode.SHARED_TAG, victim=victim,
    )
    network.add_node(freeloader, routable=False)
    network.connect(freeloader, aps[1], bandwidth_bps=10e6, latency=0.002)
    return sim, metrics, detector, edge, victim, freeloader


class TestTraitorTracing:
    def test_shared_tag_detected_and_cut_off(self):
        sim, metrics, detector, edge, victim, freeloader = build_tracing_net()
        victim.start(at=0.0, until=15.0)
        freeloader.start(at=1.0, until=15.0)
        sim.run(until=17.0)

        assert len(detector.alerts) >= 1
        alert = detector.alerts[0]
        assert alert.client_key_locator == "/alice/KEY/pub"
        assert alert.first_seen[0] != alert.second_seen[0]  # two locations
        assert edge.traitor_drops > 0
        # The freeloader got at most a brief window before detection.
        stats = metrics.user("freeloader")
        assert stats.chunks_received < stats.chunks_requested

    def test_single_location_client_never_flagged(self):
        sim, metrics, detector, edge, victim, freeloader = build_tracing_net()
        victim.start(at=0.0, until=10.0)
        # Freeloader never starts: only one location per tag.
        sim.run(until=12.0)
        assert detector.alerts == []
        assert metrics.user("alice").delivery_ratio() > 0.9

    def test_detection_feeds_revocation(self):
        sim, metrics, detector, edge, victim, freeloader = build_tracing_net()
        revoked = []
        detector.on_alert = lambda alert: revoked.append(alert.client_key_locator)
        victim.start(at=0.0, until=12.0)
        freeloader.start(at=1.0, until=12.0)
        sim.run(until=14.0)
        assert revoked == ["/alice/KEY/pub"]
        assert detector.flagged_clients() == {"/alice/KEY/pub"}

    def test_expired_sighting_does_not_alert(self):
        detector = TraitorDetector()
        from repro.core.tag import Tag

        tag = Tag("/p/KEY/pub", "/c/KEY/pub", 1, b"\x00" * 32, expiry=5.0,
                  signature=b"s" * 32)
        assert detector.observe(tag, b"\x01" * 32, "e1", now=1.0) is None
        # Same tag, new location, but after the first sighting expired:
        # a fresh tag lifetime would have been required anyway.
        assert detector.observe(tag, b"\x02" * 32, "e1", now=9.0) is None
        assert detector.alerts == []

    def test_same_location_repeat_is_fine(self):
        detector = TraitorDetector()
        from repro.core.tag import Tag

        tag = Tag("/p/KEY/pub", "/c/KEY/pub", 1, b"\x00" * 32, expiry=50.0,
                  signature=b"s" * 32)
        for _ in range(5):
            assert detector.observe(tag, b"\x01" * 32, "e1", now=1.0) is None
        assert detector.observations == 5
