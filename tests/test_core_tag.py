"""Unit tests for tags, access levels, access paths, and Protocol 1."""

import random

import pytest

from repro.core.access_level import PUBLIC, satisfies, validate_level
from repro.core.access_path import ZERO_PATH, expected_access_path, paths_match
from repro.core.precheck import content_precheck, edge_precheck
from repro.core.tag import Tag, make_tag
from repro.crypto.hashing import rolling_xor_hash
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn.name import Name
from repro.ndn.packets import Data, NackReason


@pytest.fixture(scope="module")
def provider_keypair():
    return SimulatedKeyPair.generate(random.Random(77))


def fresh_tag(provider_keypair, **overrides):
    fields = dict(
        provider_key_locator="/prov-0/KEY/pub",
        client_key_locator="/client-0/KEY/pub",
        access_level=2,
        access_path=ZERO_PATH,
        expiry=100.0,
    )
    fields.update(overrides)
    return make_tag(provider_keypair=provider_keypair, **fields)


class TestAccessLevels:
    def test_satisfies_matrix(self):
        assert satisfies(2, 1)
        assert satisfies(2, 2)
        assert not satisfies(1, 2)
        assert satisfies(None, PUBLIC)
        assert satisfies(0, PUBLIC)
        assert not satisfies(None, 0)
        assert satisfies(0, 0)

    def test_validate_level(self):
        assert validate_level(None) is None
        assert validate_level(3) == 3
        with pytest.raises(ValueError):
            validate_level(-1)


class TestAccessPath:
    def test_expected_path_is_rolling_hash(self):
        assert expected_access_path(["ap-3"]) == rolling_xor_hash(["ap-3"])

    def test_match(self):
        path = expected_access_path(["ap-1"])
        assert paths_match(path, path)
        assert not paths_match(path, expected_access_path(["ap-2"]))

    def test_empty_path_is_zero(self):
        assert expected_access_path([]) == ZERO_PATH


class TestTagSigning:
    def test_roundtrip(self, provider_keypair):
        tag = fresh_tag(provider_keypair)
        assert tag.verify_signature(provider_keypair.public)

    def test_unsigned_tag_fails(self, provider_keypair):
        bare = Tag(
            provider_key_locator="/prov-0/KEY/pub",
            client_key_locator="/c/KEY/pub",
            access_level=1,
            access_path=ZERO_PATH,
            expiry=10.0,
        )
        assert not bare.verify_signature(provider_keypair.public)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"access_level": 3},
            {"expiry": 999.0},
            {"provider_key_locator": "/prov-1/KEY/pub"},
            {"client_key_locator": "/mallory/KEY/pub"},
            {"access_path": b"\x01" * 32},
        ],
    )
    def test_any_field_tamper_breaks_signature(self, provider_keypair, mutation):
        tag = fresh_tag(provider_keypair)
        fields = dict(
            provider_key_locator=tag.provider_key_locator,
            client_key_locator=tag.client_key_locator,
            access_level=tag.access_level,
            access_path=tag.access_path,
            expiry=tag.expiry,
        )
        fields.update(mutation)
        forged = Tag(signature=tag.signature, **fields)
        assert not forged.verify_signature(provider_keypair.public)

    def test_wrong_provider_key_fails(self, provider_keypair):
        other = SimulatedKeyPair.generate(random.Random(88))
        tag = fresh_tag(provider_keypair)
        assert not tag.verify_signature(other.public)

    def test_expiry(self, provider_keypair):
        tag = fresh_tag(provider_keypair, expiry=50.0)
        assert not tag.is_expired(49.9)
        assert not tag.is_expired(50.0)
        assert tag.is_expired(50.1)

    def test_cache_key_stable_and_distinct(self, provider_keypair):
        a = fresh_tag(provider_keypair)
        b = fresh_tag(provider_keypair, access_level=3)
        assert a.cache_key() == a.cache_key()
        assert a.cache_key() != b.cache_key()

    def test_cache_key_depends_on_signature(self, provider_keypair):
        a = fresh_tag(provider_keypair)
        forged = Tag(
            provider_key_locator=a.provider_key_locator,
            client_key_locator=a.client_key_locator,
            access_level=a.access_level,
            access_path=a.access_path,
            expiry=a.expiry,
            signature=b"f" * 32,
        )
        assert a.cache_key() != forged.cache_key()

    def test_provider_prefix(self, provider_keypair):
        assert fresh_tag(provider_keypair).provider_prefix() == Name("/prov-0")

    def test_bad_access_path_length_rejected(self):
        with pytest.raises(ValueError):
            Tag("/p/KEY/pub", "/c/KEY/pub", 1, b"short", 1.0)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            Tag("/p/KEY/pub", "/c/KEY/pub", -2, ZERO_PATH, 1.0)

    def test_encoded_size_couple_hundred_bytes(self, provider_keypair):
        assert 100 <= fresh_tag(provider_keypair).encoded_size() <= 400


class TestEdgePrecheck:
    def test_valid(self, provider_keypair):
        tag = fresh_tag(provider_keypair)
        assert edge_precheck(tag, "/prov-0/obj-1/chunk-0", now=10.0) is None

    def test_prefix_mismatch(self, provider_keypair):
        tag = fresh_tag(provider_keypair)
        assert (
            edge_precheck(tag, "/prov-1/obj-1/chunk-0", now=10.0)
            is NackReason.PREFIX_MISMATCH
        )

    def test_expired(self, provider_keypair):
        tag = fresh_tag(provider_keypair, expiry=5.0)
        assert edge_precheck(tag, "/prov-0/obj-1/chunk-0", now=6.0) is NackReason.EXPIRED_TAG

    def test_prefix_checked_before_expiry(self, provider_keypair):
        tag = fresh_tag(provider_keypair, expiry=5.0)
        assert (
            edge_precheck(tag, "/prov-1/x", now=6.0) is NackReason.PREFIX_MISMATCH
        )

    def test_empty_name_rejected(self, provider_keypair):
        tag = fresh_tag(provider_keypair)
        assert edge_precheck(tag, "/", now=1.0) is NackReason.PREFIX_MISMATCH


class TestContentPrecheck:
    def make_data(self, level, locator="/prov-0/KEY/pub"):
        return Data(
            name=Name("/prov-0/obj/chunk"),
            access_level=level,
            provider_key_locator=locator,
        )

    def test_public_content_needs_nothing(self):
        assert content_precheck(None, self.make_data(None)) is None

    def test_private_without_tag(self):
        assert content_precheck(None, self.make_data(1)) is NackReason.NO_TAG

    def test_sufficient_level(self, provider_keypair):
        tag = fresh_tag(provider_keypair, access_level=2)
        assert content_precheck(tag, self.make_data(1)) is None
        assert content_precheck(tag, self.make_data(2)) is None

    def test_insufficient_level(self, provider_keypair):
        tag = fresh_tag(provider_keypair, access_level=1)
        assert content_precheck(tag, self.make_data(2)) is NackReason.ACCESS_LEVEL

    def test_key_locator_mismatch(self, provider_keypair):
        tag = fresh_tag(provider_keypair)
        data = self.make_data(1, locator="/prov-1/KEY/pub")
        assert content_precheck(tag, data) is NackReason.KEY_MISMATCH
