"""Tests for the design-choice ablations, the DoS special case, and the CLI."""

import pytest

from repro.core.access_path import ZERO_PATH
from repro.core.tag import Tag
from repro.experiments import Scenario, run_scenario
from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Data, Interest

from tests.conftest import build_mini_net


class Probe(Node):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.datas = []

    def on_data(self, data, in_face):
        self.datas.append(data)


# ----------------------------------------------------------------------
# NACK-carries-content vs drop-only (the paper's Protocol 3 choice)
# ----------------------------------------------------------------------
class TestNackAblation:
    def aggregated_pair(self, nack_carries_content):
        from repro.core.config import TacticConfig
        from repro.crypto.cost_model import ZERO_COST_MODEL

        net = build_mini_net(
            TacticConfig(
                cost_model=ZERO_COST_MODEL,
                nack_carries_content=nack_carries_content,
            )
        )
        good = Probe(net.sim, "good")
        bad = Probe(net.sim, "bad")
        for probe in (good, bad):
            net.network.add_node(probe, routable=False)
            net.network.connect(probe, net.core1, bandwidth_bps=500e6, latency=0.001)
        net.provider.directory.enroll("good", 3)
        good_tag = net.provider.issue_tag_direct("good", ZERO_PATH)
        forged = Tag(
            provider_key_locator=good_tag.provider_key_locator,
            client_key_locator="/bad/KEY/pub",
            access_level=3,
            access_path=ZERO_PATH,
            expiry=good_tag.expiry,
            signature=b"f" * 32,
        )
        name = Name("/prov-0/obj-0/chunk-0")
        # The forged request goes FIRST (becomes the primary the
        # content router/origin validates); the good one aggregates.
        net.sim.schedule(0.0, bad.faces[0].send, Interest(name=name, tag=forged, flag_f=0.0))
        net.sim.schedule(0.0001, good.faces[0].send, Interest(name=name, tag=good_tag, flag_f=0.0))
        net.run(until=10.0)
        return good, bad

    def test_nack_with_content_saves_aggregated_valid_request(self):
        good, bad = self.aggregated_pair(nack_carries_content=True)
        assert len(good.datas) == 1 and good.datas[0].nack is None
        assert bad.datas == [] or all(d.nack is not None for d in bad.datas)

    def test_drop_only_starves_aggregated_valid_request(self):
        good, bad = self.aggregated_pair(nack_carries_content=False)
        # The paper's rationale, demonstrated by its absence: with
        # drop-only, the invalid primary kills the whole PIT entry and
        # the valid aggregated requester gets nothing.
        assert good.datas == []
        assert bad.datas == []


# ----------------------------------------------------------------------
# Section 6.B: the malicious-provider short-expiry DoS
# ----------------------------------------------------------------------
class TestShortExpiryDos:
    def test_tag_churn_bounded_and_service_survives(self):
        # "a malicious content provider can orchestrate a network DoS
        # attack by adjusting its tags validity to a short period (e.g.,
        # one second) ... However, obtaining a fresh tag only requires
        # one request per client" — a low-rate DoS.
        result = run_scenario(
            Scenario.paper_topology(1, duration=12.0, seed=3, scale=0.2).with_config(
                tag_expiry=1.0
            )
        )
        q, r = result.tag_rates()
        clients = len(result.clients)
        # One refresh per client per provider-in-use per second, bounded
        # by clients * providers.
        assert q <= clients * len(result.providers) * 1.1
        # Content retrieval still dwarfs registration traffic...
        content_rate = result.metrics.total_requested(False) / result.config.duration
        assert content_rate > 20 * q
        # ...and clients barely notice.
        assert result.client_delivery_ratio() > 0.97


# ----------------------------------------------------------------------
# Content-store eviction policies
# ----------------------------------------------------------------------
class TestCsPolicies:
    def fill(self, policy):
        cs = ContentStore(capacity=3, policy=policy)
        for i in range(3):
            cs.insert(Data(name=Name(f"/a/{i}")))
        return cs

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ContentStore(capacity=3, policy="random")

    def test_fifo_ignores_recency(self):
        cs = self.fill("fifo")
        cs.lookup("/a/0")  # would refresh under LRU
        cs.insert(Data(name=Name("/a/3")))
        assert cs.lookup("/a/0") is None  # evicted despite the hit
        assert cs.lookup("/a/1") is not None

    def test_lru_respects_recency(self):
        cs = self.fill("lru")
        cs.lookup("/a/0")
        cs.insert(Data(name=Name("/a/3")))
        assert cs.lookup("/a/0") is not None
        assert cs.lookup("/a/1") is None

    def test_lfu_keeps_hot_entries(self):
        cs = self.fill("lfu")
        for _ in range(5):
            cs.lookup("/a/2")
        cs.insert(Data(name=Name("/a/3")))  # evicts a cold entry
        assert cs.lookup("/a/2") is not None
        cs.insert(Data(name=Name("/a/4")))
        assert cs.lookup("/a/2") is not None

    def test_hit_ratio(self):
        cs = self.fill("lru")
        cs.lookup("/a/0")
        cs.lookup("/missing")
        assert cs.hit_ratio() == pytest.approx(0.5)

    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_protocols_agnostic_to_policy(self, policy):
        # TACTIC's outcomes must not depend on the eviction policy.
        result = run_scenario(
            Scenario.paper_topology(1, duration=6.0, seed=4, scale=0.15).with_config(
                cs_policy=policy
            )
        )
        assert result.client_delivery_ratio() > 0.98
        assert result.attacker_delivery_ratio() < 0.01


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for artifact in ("fig5", "fig8", "table4", "table5"):
            assert artifact in out

    def test_table4_run(self, capsys):
        from repro.__main__ import main

        code = main(
            ["table4", "--duration", "3", "--scale", "0.15", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "Topo 1" in out

    def test_fig7_run(self, capsys):
        from repro.__main__ import main

        assert main(["fig7", "--duration", "3", "--scale", "0.15"]) == 0
        assert "Fig. 7" in capsys.readouterr().out

    def test_fig6_multi_topology(self, capsys):
        from repro.__main__ import main

        code = main(
            ["fig6", "--topologies", "1", "2", "--duration", "3", "--scale", "0.15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Topo 1" in out and "Topo 2" in out

    def test_fig8_run(self, capsys):
        from repro.__main__ import main

        assert main(["fig8", "--duration", "3", "--scale", "0.15"]) == 0
        assert "Fig. 8" in capsys.readouterr().out

    def test_table5_run(self, capsys):
        from repro.__main__ import main

        assert main(["table5", "--duration", "3", "--scale", "0.15"]) == 0
        assert "Table V" in capsys.readouterr().out

    def test_bad_artifact_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
