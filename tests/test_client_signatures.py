"""Tests for the client-signature authentication mode (Section 4.A).

The paper includes ``Pubu`` in the tag so edge routers *can*
authenticate requesters by signature, then introduces the access path
"to avoid the expensive signature verification".  This mode implements
the expensive alternative, enabling a measured comparison of the two.
"""

import pytest

from repro.core.config import TacticConfig
from repro.crypto.cost_model import ZERO_COST_MODEL
from repro.experiments import Scenario, run_scenario

from tests.conftest import attach_client, build_mini_net


def signature_net():
    return build_mini_net(
        TacticConfig(
            cost_model=ZERO_COST_MODEL,
            client_signatures=True,
            enable_access_path=False,  # isolate the signature mode
        )
    )


class TestClientSignatureMode:
    def test_signed_clients_are_served(self):
        net = signature_net()
        client = attach_client(net, "alice")
        client.start(at=0.0, until=4.0)
        net.run(until=6.0)
        stats = net.metrics.user("alice")
        assert stats.delivery_ratio() > 0.95
        assert net.edge.counters.client_sig_verifications > 0

    def test_unsigned_requests_dropped(self):
        net = signature_net()
        client = attach_client(net, "alice")
        client.keypair = None  # cannot sign: every request goes out bare
        client.start(at=0.0, until=3.0)
        net.run(until=5.0)
        stats = net.metrics.user("alice")
        assert stats.chunks_received == 0
        assert net.edge.counters.precheck_drops > 0

    def test_stolen_tag_with_wrong_key_dropped(self):
        # The impersonation attack Pubu exists to stop: a thief replays
        # a victim's tag but cannot produce the victim's signature.
        net = signature_net()
        victim = attach_client(net, "alice")
        thief = attach_client(net, "mallory")
        victim.start(at=0.0, until=3.0)
        net.run(until=3.5)
        stolen = victim.tags.get("prov-0")
        assert stolen is not None

        # Mallory signs with *her* key but presents Alice's tag, whose
        # Pubu points at Alice's certificate.
        thief.tags["prov-0"] = stolen
        thief._acquire_tag = lambda pid: (stolen, True)
        received_before = net.metrics.user("mallory").chunks_received
        thief.start(at=net.sim.now, until=net.sim.now + 3.0)
        net.run(until=net.sim.now + 5.0)
        assert net.metrics.user("mallory").chunks_received == received_before

    def test_per_request_cost_vs_access_path(self):
        # The design motivation, quantified: signature mode verifies a
        # client signature on (almost) every request; access-path mode
        # verifies none.
        sig_run = run_scenario(
            Scenario.paper_topology(1, duration=5.0, seed=4, scale=0.15).with_config(
                client_signatures=True, enable_access_path=False
            )
        )
        ap_run = run_scenario(
            Scenario.paper_topology(1, duration=5.0, seed=4, scale=0.15).with_config(
                client_signatures=False, enable_access_path=True
            )
        )
        sig_edge = sig_run.operation_counts(edge=True)
        ap_edge = ap_run.operation_counts(edge=True)
        requests = sig_run.metrics.total_requested(False)
        assert sig_edge.client_sig_verifications > 0.9 * requests
        assert ap_edge.client_sig_verifications == 0
        # Security outcome identical on this workload.
        assert sig_run.client_delivery_ratio() > 0.98
        assert sig_run.attacker_delivery_ratio() < 0.01
        assert ap_run.attacker_delivery_ratio() < 0.01

    def test_wire_size_includes_signature(self):
        from repro.ndn.name import Name
        from repro.ndn.packets import Interest

        bare = Interest(name=Name("/p/o/c"))
        signed = Interest(name=Name("/p/o/c"), client_signature=b"s" * 32)
        assert signed.size_bytes() == bare.size_bytes() + 32

    def test_signed_portion_binds_nonce(self):
        from repro.ndn.name import Name
        from repro.ndn.packets import Interest

        a = Interest(name=Name("/p/o/c"))
        b = Interest(name=Name("/p/o/c"))
        assert a.signed_portion() != b.signed_portion()  # replay-fresh
