"""SimSan: each invariant tripped by a deliberately broken component,
the clean path staying silent, env gating, and determinism digests."""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.filters.bloom import BloomFilter
from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.ndn.pit import Pit, PitRecord
from repro.qa.determinism import check_scenario, scenario_digest
from repro.qa.simsan import SanitizerError, SimSan, enabled, maybe_install
from repro.sim.engine import Simulator
from repro.sim.events import Event


def record(face="f0", at=0.0):
    return PitRecord(tag=None, flag_f=0.0, in_face=face, arrived_at=at)


def tiny_scenario(**overrides):
    return Scenario.paper_topology(1, duration=1.0, seed=3, scale=0.05).with_config(
        **overrides
    )


# ---------------------------------------------------------------------------
# PIT invariants
# ---------------------------------------------------------------------------
class TestPitInvariants:
    def test_balanced_lifecycle_is_clean(self):
        san = SimSan(mode="collect")
        pit = Pit(entry_lifetime=2.0)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        pit.insert("/a/1", record("f1"), now=0.5)  # aggregated
        pit.consume("/a/1", now=1.0)
        pit.insert("/b/1", record(), now=1.0)
        pit.purge_expired(now=10.0)
        assert san.finish() == []

    def test_leaked_records_trip_conservation(self):
        san = SimSan(mode="collect")
        pit = Pit(entry_lifetime=2.0)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        # A buggy router forgets state without consuming/expiring it.
        pit._entries.clear()
        violations = san.finish()
        assert [v.kind for v in violations] == ["pit-conservation"]
        assert "leaked" in violations[0].message

    def test_conservation_raises_in_raise_mode(self):
        san = SimSan(mode="raise")
        pit = Pit(entry_lifetime=2.0)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        pit._entries.clear()
        with pytest.raises(SanitizerError, match="pit-conservation"):
            san.finish()

    def test_lazy_expiry_counts_as_accounted(self):
        san = SimSan(mode="collect")
        pit = Pit(entry_lifetime=1.0)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        assert pit.find("/a/1", now=5.0) is None  # lazy expiry path
        assert san.finish() == []

    def test_drop_record_counts_as_accounted(self):
        san = SimSan(mode="collect")
        pit = Pit(entry_lifetime=5.0)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        pit.drop_record("/a/1", lambda r: True)
        assert san.finish() == []

    def test_capacity_rejection_is_accounted(self):
        san = SimSan(mode="collect")
        pit = Pit(entry_lifetime=5.0, capacity=1)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        assert pit.insert("/b/1", record(), now=0.1) is False  # shed
        pit.consume("/a/1", now=0.2)
        assert san.finish() == []

    def test_occupancy_bound_violation(self):
        san = SimSan(mode="raise")
        pit = Pit(entry_lifetime=5.0, capacity=1)
        pit.san = san
        pit.insert("/a/1", record(), now=0.0)
        # Bypass the capacity check entirely.
        pit._entries[Name("/smuggled")] = pit._entries[Name("/a/1")]
        with pytest.raises(SanitizerError, match="pit-occupancy"):
            san.check_tables()


# ---------------------------------------------------------------------------
# CS occupancy
# ---------------------------------------------------------------------------
class TestCsInvariants:
    def test_eviction_keeps_bound(self):
        san = SimSan(mode="collect")
        cs = ContentStore(capacity=2)
        cs.san = san
        for i in range(5):
            cs.insert(Data(name=Name(f"/a/{i}")))
        assert san.violations == []

    def test_broken_eviction_trips_bound(self):
        san = SimSan(mode="raise")
        cs = ContentStore(capacity=1)
        cs.san = san
        cs._evict_one = lambda: None  # break the eviction path
        cs.insert(Data(name=Name("/a/1")))
        with pytest.raises(SanitizerError, match="cs-occupancy"):
            cs.insert(Data(name=Name("/a/2")))


# ---------------------------------------------------------------------------
# Bloom filter monotonicity
# ---------------------------------------------------------------------------
class TestBloomInvariants:
    def test_normal_insert_reset_cycle_clean(self):
        san = SimSan(mode="collect", bloom_check_interval=1)
        bf = BloomFilter(capacity=100, max_fpp=1e-2)
        san.attach_bloom(bf)
        for i in range(50):
            bf.insert_with_auto_reset(f"tag-{i}".encode())
        assert san.violations == []

    def test_tampered_count_trips(self):
        san = SimSan(mode="raise")
        bf = BloomFilter(capacity=100)
        san.attach_bloom(bf)
        bf.insert(b"tag-1")
        bf.count += 5  # out-of-band tampering
        with pytest.raises(SanitizerError, match="bf-monotonicity"):
            bf.insert(b"tag-2")

    def test_cleared_bits_trip_fill_check(self):
        san = SimSan(mode="raise", bloom_check_interval=1)
        bf = BloomFilter(capacity=100)
        san.attach_bloom(bf)
        bf.insert(b"tag-1")
        for i in range(len(bf._bits)):  # clear bits without reset()
            bf._bits[i] = 0
        with pytest.raises(SanitizerError, match="bf-monotonicity"):
            san.check_bloom(bf)

    def test_reset_rebaselines_fill(self):
        san = SimSan(mode="collect", bloom_check_interval=1)
        bf = BloomFilter(capacity=100)
        san.attach_bloom(bf)
        for i in range(20):
            bf.insert(f"tag-{i}".encode())
        bf.reset()
        bf.insert(b"after-reset")
        assert san.violations == []


# ---------------------------------------------------------------------------
# Engine: clock monotonicity + event-stream hashing
# ---------------------------------------------------------------------------
class TestEngineInvariants:
    def test_sanitized_run_matches_plain_run(self):
        def build():
            sim = Simulator(seed=1)
            fired = []
            for delay in (2.0, 1.0, 1.5):
                sim.schedule(delay, fired.append, delay)
            return sim, fired

        plain_sim, plain = build()
        plain_sim.run()
        san_sim, sanitized = build()
        SimSan(mode="raise").attach_engine(san_sim)
        san_sim.run()
        assert sanitized == plain == [1.0, 1.5, 2.0]
        assert san_sim.sanitizer.events_seen == 3

    def test_clock_regression_detected(self):
        san = SimSan(mode="raise")
        sim = Simulator(seed=1)
        san.attach_engine(sim)
        stale = Event(1.0, lambda: None, (), 0)
        with pytest.raises(SanitizerError, match="clock-regression"):
            san.before_event(stale, now=2.0)

    def test_identical_runs_hash_identically(self):
        def digest():
            sim = Simulator(seed=7)
            san = SimSan(mode="collect")
            san.attach_engine(sim)
            out = []
            for delay in (0.5, 1.0):
                sim.schedule(delay, out.append, delay)
            sim.run()
            return san.stream_digest()

        assert digest() == digest()

    def test_divergent_runs_hash_differently(self):
        def digest(extra):
            sim = Simulator(seed=7)
            san = SimSan(mode="collect")
            san.attach_engine(sim)
            out = []
            sim.schedule(0.5, out.append, 0.5)
            if extra:
                sim.schedule(1.0, out.append, 1.0)
            sim.run()
            return san.stream_digest()

        assert digest(False) != digest(True)


# ---------------------------------------------------------------------------
# Interest disposition (anti-black-hole)
# ---------------------------------------------------------------------------
class TestInterestDisposition:
    class _BlackHoleNode:
        """A toy forwarder that silently swallows every Interest."""

        def __init__(self):
            self.node_id = "blackhole"
            self.pit = None
            self.cs = None
            self.bloom = None
            self.unroutable_drops = 0

        def send(self, face, packet, delay=0.0):
            pass

        def on_interest(self, interest, in_face):
            pass  # the bug: no forward, no PIT entry, no drop accounting

    class _DroppingNode(_BlackHoleNode):
        def __init__(self):
            super().__init__()
            self.node_id = "dropper"

        def on_interest(self, interest, in_face):
            self.unroutable_drops += 1

    def test_black_hole_detected(self):
        san = SimSan(mode="raise")
        node = self._BlackHoleNode()
        san.attach_node(node)
        with pytest.raises(SanitizerError, match="black-hole"):
            node.on_interest(Interest(name=Name("/a/1")), None)

    def test_accounted_drop_is_clean(self):
        san = SimSan(mode="collect")
        node = self._DroppingNode()
        san.attach_node(node)
        node.on_interest(Interest(name=Name("/a/1")), None)
        assert san.violations == []


# ---------------------------------------------------------------------------
# Env gating + full-scenario integration
# ---------------------------------------------------------------------------
class TestGatingAndIntegration:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        assert not enabled()
        assert maybe_install(Simulator(seed=1)) is None

    def test_env_values(self, monkeypatch):
        for value in ("1", "true", "ON", "yes"):
            monkeypatch.setenv("REPRO_SIMSAN", value)
            assert enabled()
        monkeypatch.setenv("REPRO_SIMSAN", "0")
        assert not enabled()

    def test_unsanitized_run_has_no_hooks(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        result = run_scenario(tiny_scenario())
        assert result.sim.sanitizer is None
        node = next(iter(result.network.nodes.values()))
        assert getattr(node.pit, "san", None) is None

    def test_env_gated_scenario_run_is_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        result = run_scenario(tiny_scenario())
        san = result.sim.sanitizer
        assert san is not None
        assert san.events_seen > 0
        assert san.violations == []

    def test_explicit_sanitizer_scenario_run_is_clean(self):
        san = SimSan(mode="raise")
        run_scenario(tiny_scenario(), sanitizer=san)
        assert san.finish() == []


# ---------------------------------------------------------------------------
# Double-run determinism on scenarios
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_same_scenario_twice_is_deterministic(self):
        report = check_scenario(tiny_scenario(), label="tiny")
        assert report.ok, report.describe()
        assert report.first_divergent_block() is None
        assert "deterministic" in report.describe()

    def test_different_seeds_diverge(self):
        a = scenario_digest(tiny_scenario())
        b = scenario_digest(
            Scenario.paper_topology(1, duration=1.0, seed=4, scale=0.05)
        )
        assert a.stream != b.stream
