"""Unit tests for links, forwarding nodes, and access points."""

import pytest

from repro.crypto.hashing import xor_fold
from repro.ndn import Data, Interest, Nack, NackReason, Name, Network, Node
from repro.ndn.node import AccessPoint
from repro.sim import Simulator


def linear_net(*node_ids, bandwidth=500e6, latency=0.001):
    """A chain of plain nodes connected left to right."""
    sim = Simulator(seed=1)
    net = Network(sim)
    nodes = [net.add_node(Node(sim, nid)) for nid in node_ids]
    for a, b in zip(nodes, nodes[1:]):
        net.connect(a, b, bandwidth_bps=bandwidth, latency=latency)
    return sim, net, nodes


class TestLinkTiming:
    def test_latency_plus_serialization(self):
        sim, net, (a, b) = linear_net("a", "b", bandwidth=10e6, latency=0.002)
        received = []
        b.on_interest = lambda i, f: received.append(sim.now)
        interest = Interest(name=Name("/x"))
        size_bits = interest.size_bytes() * 8
        sim.schedule(0.0, a.faces[0].send, interest)
        sim.run()
        assert received[0] == pytest.approx(size_bits / 10e6 + 0.002)

    def test_back_to_back_packets_queue(self):
        sim, net, (a, b) = linear_net("a", "b", bandwidth=10e6, latency=0.002)
        received = []
        b.on_interest = lambda i, f: received.append(sim.now)
        i1, i2 = Interest(name=Name("/x")), Interest(name=Name("/y"))
        sim.schedule(0.0, a.faces[0].send, i1)
        sim.schedule(0.0, a.faces[0].send, i2)
        sim.run()
        tx = i1.size_bytes() * 8 / 10e6
        assert received[1] - received[0] == pytest.approx(tx)

    def test_drop_tail(self):
        sim, net, (a, b) = linear_net("a", "b", bandwidth=1e5, latency=0.001)
        link = net.links[0]
        link.queue_bytes = 256
        data = Data(name=Name("/big"), payload=b"z" * 512)
        delivered = []
        b.on_data = lambda d, f: delivered.append(d)
        for _ in range(10):
            sim.schedule(0.0, a.faces[0].send, data.copy())
        sim.run()
        assert link.packets_dropped > 0
        assert len(delivered) + link.packets_dropped == 10

    def test_byte_accounting(self):
        sim, net, (a, b) = linear_net("a", "b")
        interest = Interest(name=Name("/x"))
        sim.schedule(0.0, a.faces[0].send, interest)
        sim.run()
        assert net.links[0].bytes_sent == interest.size_bytes()
        assert net.links[0].packets_sent == 1


class TestForwarding:
    def test_interest_follows_fib_and_data_reverse_path(self):
        sim, net, (a, b, c) = linear_net("a", "b", "c")
        net.announce_prefix("/prov", c)
        c.cs.insert(Data(name=Name("/prov/1"), payload=b"p"))
        got = []
        a.on_data = lambda d, f: got.append(str(d.name))
        sim.schedule(0.0, b.receive, Interest(name=Name("/prov/1")), b.face_toward(a))
        sim.run()
        assert got == ["/prov/1"]

    def test_aggregation_single_upstream_interest(self):
        sim, net, nodes = linear_net("x", "y", "z")
        x, y, z = nodes
        net.announce_prefix("/prov", z)
        upstream = []
        original = z.on_interest
        z.on_interest = lambda i, f: upstream.append(i)
        for nonce in (1, 2):
            sim.schedule(
                0.0,
                y.receive,
                Interest(name=Name("/prov/1"), nonce=nonce),
                y.face_toward(x),
            )
        sim.run()
        assert len(upstream) == 1  # second was aggregated at y

    def test_unroutable_interest_dropped(self):
        sim, net, (a, b) = linear_net("a", "b")
        sim.schedule(0.0, b.receive, Interest(name=Name("/nowhere")), b.face_toward(a))
        sim.run()
        assert b.unroutable_drops == 1

    def test_cache_fills_along_return_path(self):
        sim, net, (a, b, c) = linear_net("a", "b", "c")
        net.announce_prefix("/prov", c)
        c.cs.insert(Data(name=Name("/prov/1"), payload=b"p"))
        sim.schedule(0.0, a.faces[0].send, Interest(name=Name("/prov/1")))
        sim.run()
        assert Name("/prov/1") in b.cs

    def test_face_toward_unknown_raises(self):
        sim, net, (a, b) = linear_net("a", "b")
        stranger = Node(sim, "stranger")
        with pytest.raises(LookupError):
            a.face_toward(stranger)


class TestAccessPoint:
    def build(self):
        sim = Simulator(seed=2)
        net = Network(sim)
        client = net.add_node(Node(sim, "client"), routable=False)
        ap = net.add_node(AccessPoint(sim, "ap-0"), routable=False)
        edge = net.add_node(Node(sim, "edge"))
        net.connect(client, ap, bandwidth_bps=10e6, latency=0.002)
        net.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
        ap.set_uplink(ap.face_toward(edge))
        return sim, net, client, ap, edge

    def test_folds_identity_into_access_path(self):
        sim, net, client, ap, edge = self.build()
        seen = []
        edge.on_interest = lambda i, f: seen.append(i)
        sim.schedule(0.0, client.faces[0].send, Interest(name=Name("/p/1")))
        sim.run()
        expected = xor_fold(b"\x00" * 32, ap.identity_hash)
        assert seen[0].observed_access_path == expected

    def test_data_returns_to_requester(self):
        sim, net, client, ap, edge = self.build()
        got = []
        client.on_data = lambda d, f: got.append(d)
        edge.on_interest = lambda i, f: edge.send(f, Data(name=i.name, payload=b"x"))
        sim.schedule(0.0, client.faces[0].send, Interest(name=Name("/p/1")))
        sim.run()
        assert len(got) == 1

    def test_nack_routed_by_nonce(self):
        sim, net, client, ap, edge = self.build()
        got = []
        client.on_nack = lambda n, f: got.append(n)
        edge.on_interest = lambda i, f: edge.send(
            f, Nack(name=i.name, reason=NackReason.ACCESS_PATH, nonce=i.nonce)
        )
        sim.schedule(0.0, client.faces[0].send, Interest(name=Name("/p/1")))
        sim.run()
        assert len(got) == 1
        assert got[0].reason is NackReason.ACCESS_PATH

    def test_unsolicited_data_dropped(self):
        sim, net, client, ap, edge = self.build()
        got = []
        client.on_data = lambda d, f: got.append(d)
        sim.schedule(0.0, edge.faces[0].send, Data(name=Name("/p/1"), payload=b"x"))
        sim.run()
        assert got == []

    def test_interest_from_uplink_dropped(self):
        sim, net, client, ap, edge = self.build()
        sim.schedule(0.0, edge.faces[0].send, Interest(name=Name("/p/1")))
        sim.run()
        assert ap.unroutable_drops == 1

    def test_missing_uplink_raises(self):
        sim = Simulator()
        net = Network(sim)
        ap = net.add_node(AccessPoint(sim, "ap"), routable=False)
        node = net.add_node(Node(sim, "n"), routable=False)
        net.connect(node, ap)
        sim.schedule(0.0, node.faces[0].send, Interest(name=Name("/x")))
        with pytest.raises(RuntimeError):
            sim.run()


class TestNetwork:
    def test_duplicate_node_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node(Node(sim, "a"))
        with pytest.raises(ValueError):
            net.add_node(Node(sim, "a"))

    def test_announce_prefers_shortest_path(self):
        sim = Simulator(seed=3)
        net = Network(sim)
        a = net.add_node(Node(sim, "a"))
        b = net.add_node(Node(sim, "b"))
        c = net.add_node(Node(sim, "c"))
        # Triangle: a-b slow (latency 10), a-c-b fast (1 + 1).
        net.connect(a, b, latency=10.0)
        net.connect(a, c, latency=1.0)
        net.connect(c, b, latency=1.0)
        net.announce_prefix("/p", b)
        assert a.fib.lookup("/p/x").peer is c

    def test_announce_from_nonroutable_rejected(self):
        sim = Simulator()
        net = Network(sim)
        hidden = net.add_node(Node(sim, "hidden"), routable=False)
        other = net.add_node(Node(sim, "other"))
        net.connect(hidden, other)
        with pytest.raises(ValueError):
            net.announce_prefix("/p", hidden)

    def test_path_latency(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_node(Node(sim, "a"))
        b = net.add_node(Node(sim, "b"))
        net.connect(a, b, latency=0.005)
        assert net.path_latency(a, b) == pytest.approx(0.005)
