"""Failure-injection tests: outages, congestion, and table pressure.

These exercise the claims in the paper's *motivation*: that TACTIC
removes the always-online authentication server from the critical path
(cached content stays retrievable through an origin outage while issued
tags live) and that the request windows bound misbehaving load.
"""

import pytest

from repro.experiments import Scenario, run_scenario
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest

from tests.conftest import attach_client, build_mini_net


class TestProviderOutage:
    def test_cached_content_survives_outage_until_tags_expire(self):
        net = build_mini_net()
        te = net.config.tag_expiry  # 10 s
        client = attach_client(net, "alice")
        client.start(at=0.0, until=25.0)
        outage_at = 4.0
        net.sim.schedule(outage_at, setattr, net.provider, "online", False)
        net.run(until=27.0)

        stats = net.metrics.user("alice")
        times = [t for t, _ in stats.latency_samples]
        in_outage_with_tag = [t for t in times if outage_at < t <= outage_at + te]
        after_tag_death = [t for t in times if t > outage_at + te + 1.0]

        # The paper's motivation, demonstrated: during the outage the
        # client keeps consuming *cached* content with its live tag
        # (uncached objects stall on the dead origin, so the rate is
        # below the pre-outage one but clearly nonzero)...
        assert len(in_outage_with_tag) > 50
        # ...and only loses service once the tag cannot be refreshed.
        assert after_tag_death == []
        # Registration attempts during the outage went unanswered.
        assert stats.tags_requested > stats.tags_received

    def test_provider_auth_baseline_dies_immediately(self):
        # Contrast: under the always-online-provider scheme an outage is
        # instant denial of service (no caching of controlled content).
        scenario = Scenario.paper_topology(
            1, duration=12.0, seed=5, scale=0.2, scheme="provider_auth"
        )
        from repro.experiments.runner import build_assembly

        assembly = build_assembly(scenario)
        outage_at = 4.0
        for provider in assembly.providers:
            assembly.sim.schedule(outage_at, setattr, provider, "online", False)
        start_rng = assembly.sim.rng.stream("start-offsets")
        for client in assembly.clients:
            client.start(at=start_rng.uniform(0.0, 1.0), until=12.0)
        assembly.sim.run(until=14.0)

        late = [
            t
            for user in assembly.metrics.users.values()
            if not user.is_attacker
            for t, _ in user.latency_samples
            if t > outage_at + 1.0
        ]
        assert late == []  # nothing can be served once the origin is gone

    def test_offline_provider_ignores_registration(self):
        net = build_mini_net()
        net.provider.online = False
        client = attach_client(net, "alice")
        client.start(at=0.0, until=3.0)
        net.run(until=5.0)
        assert net.metrics.user("alice").tags_received == 0
        assert net.provider.stats.tags_issued == 0


class TestCongestion:
    def test_drop_tail_losses_reduce_but_do_not_zero_delivery(self):
        net = build_mini_net()
        # Choke the wireless edge link hard.
        for link in net.network.links:
            link.queue_bytes = 2048
        client = attach_client(net, "alice")
        client.start(at=0.0, until=8.0)
        net.run(until=10.0)
        stats = net.metrics.user("alice")
        assert stats.chunks_received > 0
        # With drops possible, losses show up as timeouts, not hangs.
        assert stats.chunks_received + stats.timeouts + stats.nacks_received >= (
            stats.chunks_requested - net.config.window_size
        )


class TestTablePressure:
    def test_pit_expiry_under_blackhole(self):
        # Interests into a void must not leak PIT state forever.
        net = build_mini_net()
        probe_interest = Interest(name=Name("/prov-0/obj-0/chunk-0"))
        # Blackhole: core2 silently eats everything.
        net.core2.on_interest = lambda i, f: None
        net.sim.schedule(0.0, net.core1.receive, probe_interest, net.core1.faces[0])
        net.run(until=0.5)
        assert len(net.core1.pit) == 1
        net.run(until=net.config.pit_lifetime + 1.0)
        assert net.core1.pit.find(probe_interest.name, now=net.sim.now) is None

    def test_cs_eviction_under_catalog_larger_than_cache(self):
        net = build_mini_net()
        net.core1.cs.capacity = 8
        for i in range(40):
            net.core1.cs.insert(
                Data(name=Name(f"/prov-0/obj-{i}/chunk-0"), payload=b"x")
            )
        assert len(net.core1.cs) == 8
        assert net.core1.cs.evictions == 32
