"""The fleet scheduling observatory: worker lifecycle records, the
pool-timeline report, speedup attribution, the Chrome-trace export, and
the ``python -m repro.obs.fleetperf`` CLI exit contract."""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.exec import ExperimentEngine, ScenarioSpec
from repro.obs.export import fleet_trace_events, write_fleet_trace
from repro.obs.fleetperf import (
    FLEETPERF_PHASES,
    FleetPerf,
    WorkerLifecycle,
    attribute_speedup,
    main,
    merge_fleetperf,
    occupancy_samples,
    render_attribution,
)

FAST = dict(topology=1, duration=2.0, scale=0.1)


def fast_spec(seed=1, **kwargs):
    params = dict(FAST)
    params.update(kwargs)
    return ScenarioSpec.make(seed=seed, **params)


class FakeClock:
    """Deterministic perf_counter stand-in: each call advances by step."""

    def __init__(self, start=100.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def synthetic_report(wall=10.0):
    """Two workers, three runs, hand-built stamps: worker 7 runs slots
    0 and 2 back to back, worker 8 runs slot 1 (the straggler) and then
    idles nothing — slot 2's early finish leaves worker 7 idle."""
    timeline = [
        {
            "slot": 0, "label": "a", "worker_pid": 7, "worker_born": 1.0,
            "submitted": 0.1, "started": 1.2, "finished": 4.2,
            "received": 4.3, "envelope_bytes": 1000,
            "phases": {
                "fleet.import": {"calls": 1, "seconds": 0.5},
                "fleet.sim": {"calls": 1, "seconds": 2.0},
                "fleet.pickle": {"calls": 1, "seconds": 0.1},
            },
        },
        {
            "slot": 1, "label": "b", "worker_pid": 8, "worker_born": 1.1,
            "submitted": 0.1, "started": 1.3, "finished": 9.5,
            "received": 9.6, "envelope_bytes": 1200,
            "phases": {
                "fleet.import": {"calls": 1, "seconds": 0.5},
                "fleet.sim": {"calls": 1, "seconds": 7.5},
                "fleet.pickle": {"calls": 1, "seconds": 0.1},
            },
        },
        {
            "slot": 2, "label": "c", "worker_pid": 7, "worker_born": 1.0,
            "submitted": 0.1, "started": 4.4, "finished": 6.4,
            "received": 6.5, "envelope_bytes": 1100,
            "phases": {
                "fleet.sim": {"calls": 1, "seconds": 1.8},
                "fleet.pickle": {"calls": 1, "seconds": 0.1},
            },
        },
    ]
    return {
        "jobs": 2,
        "total": 3,
        "runs": 3,
        "cached": 0,
        "wall_seconds": wall,
        "pool_opened": 0.05,
        "parent_phases": {},
        "timeline": timeline,
        "occupancy": occupancy_samples(timeline),
    }


# ---------------------------------------------------------------------------
# WorkerLifecycle
# ---------------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_charges_accumulate(self):
        lifecycle = WorkerLifecycle(5.0, clock=FakeClock())
        lifecycle.charge("fleet.sim", 2.0)
        lifecycle.charge("fleet.sim", 1.5)
        lifecycle.charge("fleet.build", 0.25)
        assert lifecycle.phases["fleet.sim"] == {"calls": 2, "seconds": 3.5}
        assert lifecycle.phases["fleet.build"]["calls"] == 1

    def test_finalize_record_shape(self):
        lifecycle = WorkerLifecycle(5.0, clock=FakeClock(start=10.0))
        lifecycle.charge("fleet.sim", 1.0)
        record = lifecycle.finalize({"payload": "x" * 64})
        assert record["module_imported_at"] == 5.0
        assert record["started_at"] == 10.0
        assert record["finished_at"] > record["started_at"]
        assert record["envelope_bytes"] == len(
            pickle.dumps({"payload": "x" * 64}, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert "fleet.pickle" in record["phases"]

    def test_phase_names_are_registered(self):
        # The literals this suite and the engine charge must all be in
        # the registry SL015 lints against.
        for name in ("fleet.import", "fleet.build", "fleet.sim",
                     "fleet.envelope", "fleet.pickle", "fleet.cache"):
            assert name in FLEETPERF_PHASES


# ---------------------------------------------------------------------------
# FleetPerf report + occupancy
# ---------------------------------------------------------------------------
class TestFleetPerf:
    def test_report_is_parent_relative(self):
        clock = FakeClock(start=50.0, step=1.0)
        fleet = FleetPerf(jobs=2, total=2, clock=clock)  # began_at = 50
        fleet.pool_opening()                             # 51 -> rel 1.0
        fleet.spec_submitted(0, "a")                     # 52 -> rel 2.0
        summary = dataclasses.make_dataclass("S", ["fleetperf"])(
            fleetperf={
                "worker_pid": 9, "module_imported_at": 53.0,
                "started_at": 54.0, "finished_at": 55.0,
                "envelope_bytes": 10, "phases": {},
            }
        )
        fleet.spec_received(0, summary)                  # 53 -> rel 3.0
        report = fleet.report(wall_seconds=6.0)
        assert report["pool_opened"] == 1.0
        entry = report["timeline"][0]
        assert entry["submitted"] == 2.0
        assert entry["received"] == 3.0
        assert entry["worker_born"] == 3.0
        assert entry["started"] == 4.0
        assert entry["finished"] == 5.0

    def test_unreceived_specs_are_dropped(self):
        fleet = FleetPerf(jobs=1, total=2, clock=FakeClock())
        fleet.spec_submitted(0, "a")
        report = fleet.report(wall_seconds=1.0)
        assert report["timeline"] == []

    def test_occupancy_tracks_busy_and_queue(self):
        report = synthetic_report()
        samples = report["occupancy"]
        # Two submits at t=0.1 before any start: queue depth 2, busy 0.
        assert samples[0] == [0.1, 0, 3]
        busy = {when: busy for when, busy, _ in samples}
        assert busy[1.3] == 2          # both workers running
        assert busy[9.5] == 0          # straggler done, pool empty
        assert all(queued >= 0 for _, _, queued in samples)


# ---------------------------------------------------------------------------
# merge_fleetperf
# ---------------------------------------------------------------------------
class TestMerge:
    def test_records_fold_and_sum(self):
        into = {}
        for entry in synthetic_report()["timeline"]:
            merge_fleetperf(into, entry)
        assert into["runs"] == 3
        assert into["envelope_bytes"] == 3300
        assert into["phases"]["fleet.sim"]["calls"] == 3
        assert into["phases"]["fleet.sim"]["seconds"] == pytest.approx(11.3)


# ---------------------------------------------------------------------------
# Speedup attribution
# ---------------------------------------------------------------------------
class TestAttribution:
    def test_components_sum_to_wall_exactly(self):
        attribution = attribute_speedup(synthetic_report(wall=10.0))
        total = sum(attribution["components"].values())
        assert total == pytest.approx(10.0, abs=1e-9)

    def test_coverage_invariant_holds_on_synthetic_timeline(self):
        attribution = attribute_speedup(synthetic_report(wall=10.0))
        assert attribution["coverage"] >= 0.9

    def test_straggler_carved_out_of_imbalance(self):
        attribution = attribute_speedup(synthetic_report())
        components = attribution["components"]
        # Worker 7 idles 9.5 - 6.4 = 3.1 slot-seconds while the
        # straggler (slot 1, 8.2s vs ~4.4s mean) drains; most of that
        # idle is attributable to the straggler excess.
        assert components["straggler"] > 1.0
        assert components["imbalance"] >= 0.0
        assert components["startup"] == pytest.approx(
            ((1.0 - 0.05) + (1.1 - 0.05)) / 2
        )

    def test_speedup_fields_with_serial_wall(self):
        attribution = attribute_speedup(synthetic_report(wall=10.0), serial_wall=15.0)
        assert attribution["actual_speedup"] == pytest.approx(1.5)
        assert attribution["ideal_speedup"] == 2.0
        assert attribution["efficiency"] == pytest.approx(0.75)

    def test_empty_timeline_degrades(self):
        attribution = attribute_speedup(
            {"wall_seconds": 1.0, "timeline": [], "jobs": 4}
        )
        assert attribution["coverage"] == 0.0
        assert attribution["workers"] == 0

    def test_render_mentions_every_component(self):
        text = render_attribution(attribute_speedup(synthetic_report()))
        for name in ("compute", "startup", "serialization", "imbalance",
                     "straggler", "residual"):
            assert name in text


# ---------------------------------------------------------------------------
# Engine integration: round-trip, parity, cache replay, byte accounting
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_off_by_default(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        summaries = engine.run_specs([fast_spec()])
        assert summaries[0].fleetperf is None
        assert engine.last_fleetperf is None
        assert engine.fleet_fleetperf == {}

    def test_serial_records_and_report(self):
        engine = ExperimentEngine(jobs=1, use_cache=False, fleetperf=True)
        summaries = engine.run_specs([fast_spec(seed=1), fast_spec(seed=2)])
        for summary in summaries:
            record = summary.fleetperf
            assert record["envelope_bytes"] > 0
            assert set(record["phases"]) <= set(FLEETPERF_PHASES)
            assert record["phases"]["fleet.sim"]["seconds"] > 0
        assert engine.fleet_fleetperf["runs"] == 2
        report = engine.last_fleetperf
        assert report["runs"] == 2
        assert len(report["timeline"]) == 2
        attribution = attribute_speedup(report)
        assert sum(attribution["components"].values()) == pytest.approx(
            report["wall_seconds"]
        )

    def test_envelope_bytes_match_shipped_pickle(self):
        engine = ExperimentEngine(jobs=1, use_cache=False, fleetperf=True)
        (summary,) = engine.run_specs([fast_spec()])
        bare = dataclasses.replace(summary, fleetperf=None)
        assert summary.fleetperf["envelope_bytes"] == len(
            pickle.dumps(bare, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_observatory_preserves_figure_values(self):
        specs = [fast_spec(hash_events=True)]
        plain = ExperimentEngine(jobs=1, use_cache=False).run_specs(specs)
        observed = ExperimentEngine(
            jobs=1, use_cache=False, fleetperf=True
        ).run_specs(specs)
        assert plain[0].metrics_dict() == observed[0].metrics_dict()
        assert plain[0].event_digest == observed[0].event_digest

    def test_serial_parallel_parity_with_observatory(self):
        specs = [fast_spec(seed=1, hash_events=True),
                 fast_spec(seed=2, hash_events=True)]
        serial = ExperimentEngine(jobs=1, use_cache=False, fleetperf=True)
        parallel = ExperimentEngine(jobs=2, use_cache=False, fleetperf=True)
        serial_out = serial.run_specs(specs)
        parallel_out = parallel.run_specs(specs)
        assert [s.metrics_dict() for s in serial_out] == [
            s.metrics_dict() for s in parallel_out
        ]
        # The merged fleet views agree structurally: same run count,
        # same phase vocabulary (walls differ — they measure different
        # processes).
        assert serial.fleet_fleetperf["runs"] == parallel.fleet_fleetperf["runs"]
        worker_phases = set(serial.fleet_fleetperf["phases"])
        assert worker_phases == set(parallel.fleet_fleetperf["phases"])
        assert parallel.last_fleetperf["pool_opened"] is not None
        assert len({e["worker_pid"] for e in parallel.last_fleetperf["timeline"]}) >= 1

    def test_cache_replays_fleetperf_records(self, tmp_path):
        specs = [fast_spec()]
        prime = ExperimentEngine(cache_dir=tmp_path, fleetperf=True)
        (first,) = prime.run_specs(specs)
        replay = ExperimentEngine(cache_dir=tmp_path, fleetperf=True)
        (second,) = replay.run_specs(specs)
        assert second.cached
        assert second.fleetperf == first.fleetperf
        assert replay.fleet_fleetperf["runs"] == 1
        assert replay.last_fleetperf["cached"] == 1
        assert replay.last_fleetperf["timeline"] == []  # nothing executed

    def test_fleet_trace_written(self, tmp_path):
        trace = tmp_path / "fleet-trace.json"
        engine = ExperimentEngine(
            jobs=1, use_cache=False, fleet_trace=str(trace)
        )
        assert engine.fleetperf  # fleet_trace implies the observatory
        engine.run_specs([fast_spec()])
        document = json.loads(trace.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "process_name" in names
        assert "fleet.occupancy" in names


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------
class TestFleetTraceExport:
    def test_one_lane_per_worker(self):
        events = fleet_trace_events(synthetic_report())
        lanes = {
            event["args"]["name"]: event["tid"]
            for event in events
            if event["name"] == "thread_name"
        }
        assert lanes == {"worker 7": 1, "worker 8": 2}

    def test_spec_slices_and_phase_children(self):
        events = fleet_trace_events(synthetic_report())
        slices = [e for e in events if e.get("cat") == "fleet.spec"]
        assert len(slices) == 3
        slot0 = next(e for e in slices if e["args"]["slot"] == 0)
        assert slot0["ts"] == pytest.approx(1.2e6)
        assert slot0["dur"] == pytest.approx(3.0e6)
        children = [
            e for e in events
            if e.get("cat") == "fleet.phase" and e["args"]["slot"] == 0
        ]
        assert [c["name"] for c in children] == ["fleet.import", "fleet.sim",
                                                "fleet.pickle"]
        # Containment: children stay inside the parent slice.
        for child in children:
            assert child["ts"] >= slot0["ts"]
            assert child["ts"] + child["dur"] <= slot0["ts"] + slot0["dur"] + 1e-6

    def test_occupancy_counter_track(self):
        events = fleet_trace_events(synthetic_report())
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all(e["name"] == "fleet.occupancy" for e in counters)
        assert {"busy", "queued"} == set(counters[0]["args"])

    def test_write_fleet_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_fleet_trace(str(path), synthetic_report())
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count


# ---------------------------------------------------------------------------
# CLI exit contract (0 clean / 1 regression / 2 bad input)
# ---------------------------------------------------------------------------
class TestCli:
    def _write(self, tmp_path, name, attribution):
        path = tmp_path / name
        path.write_text(json.dumps({"fleetperf": attribution}))
        return str(path)

    def test_clean_report_exits_zero(self, tmp_path, capsys):
        good = attribute_speedup(synthetic_report(), serial_wall=15.0)
        path = self._write(tmp_path, "bench.json", good)
        assert main(["report", path]) == 0
        assert "compute" in capsys.readouterr().out

    def test_low_coverage_exits_one(self, tmp_path, capsys):
        bad = attribute_speedup(synthetic_report())
        bad["coverage"] = 0.5
        path = self._write(tmp_path, "bench.json", bad)
        assert main(["report", path]) == 1
        assert "coverage" in capsys.readouterr().err

    def test_speedup_regression_exits_one(self, tmp_path, capsys):
        base = attribute_speedup(synthetic_report(wall=10.0), serial_wall=15.0)
        cand = attribute_speedup(synthetic_report(wall=10.0), serial_wall=15.0)
        cand["actual_speedup"] = 0.5
        base_path = self._write(tmp_path, "base.json", base)
        cand_path = self._write(tmp_path, "cand.json", cand)
        assert main(["report", cand_path, base_path, "--tolerance", "25"]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_regression_within_tolerance_passes(self, tmp_path):
        base = attribute_speedup(synthetic_report(wall=10.0), serial_wall=15.0)
        cand = dict(base)
        cand["actual_speedup"] = base["actual_speedup"] * 0.9
        base_path = self._write(tmp_path, "base.json", base)
        cand_path = self._write(tmp_path, "cand.json", cand)
        assert main(["report", cand_path, base_path, "--tolerance", "25"]) == 0

    def test_missing_file_exits_two(self, tmp_path):
        assert main(["report", str(tmp_path / "absent.json")]) == 2

    def test_document_without_block_exits_two(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"jobs": 2}))
        assert main(["report", str(path)]) == 2

    def test_accepts_raw_timeline_report(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(synthetic_report()))
        assert main(["report", path.as_posix()]) == 0
