"""Unit tests for Bloom filters, counting filters, and sizing math."""

import math

import pytest

from repro.filters import (
    BloomFilter,
    CountingBloomFilter,
    estimate_fpp,
    optimal_num_hashes,
    size_for_capacity,
)


class TestParams:
    def test_fpp_zero_when_empty(self):
        assert estimate_fpp(1000, 5, 0) == 0.0

    def test_fpp_monotonic_in_items(self):
        fpps = [estimate_fpp(1000, 5, n) for n in range(0, 500, 50)]
        assert fpps == sorted(fpps)

    def test_fpp_approaches_one(self):
        assert estimate_fpp(100, 5, 100000) == pytest.approx(1.0, abs=1e-6)

    def test_size_for_capacity_hits_target(self):
        m = size_for_capacity(500, 1e-4, 5)
        assert estimate_fpp(m, 5, 500) <= 1e-4
        # And it is tight: one less capacity-worth of bits overshoots.
        assert estimate_fpp(m - m // 10, 5, 500) > 1e-4

    def test_size_scales_linearly_with_capacity(self):
        m1 = size_for_capacity(500, 1e-4, 5)
        m2 = size_for_capacity(5000, 1e-4, 5)
        assert m2 / m1 == pytest.approx(10.0, rel=0.01)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            size_for_capacity(0, 1e-4, 5)
        with pytest.raises(ValueError):
            size_for_capacity(10, 1.5, 5)
        with pytest.raises(ValueError):
            size_for_capacity(10, 1e-4, 0)
        with pytest.raises(ValueError):
            optimal_num_hashes(0, 10)

    def test_optimal_hashes_formula(self):
        m, n = 9585, 1000  # m/n ≈ 9.6 → k ≈ 6.6
        assert optimal_num_hashes(m, n) == round(m / n * math.log(2))


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(capacity=200)
        items = [f"tag-{i}".encode() for i in range(200)]
        for item in items:
            bf.insert(item)
        assert all(bf.contains(item) for item in items)

    def test_fresh_filter_rejects_everything(self):
        bf = BloomFilter(capacity=100)
        assert not any(bf.contains(f"x{i}") for i in range(100))

    def test_false_positive_rate_near_design_point(self):
        bf = BloomFilter(capacity=500, max_fpp=1e-2, sizing_fpp=1e-2)
        for i in range(500):
            bf.insert(f"member-{i}")
        probes = 20000
        false_positives = sum(bf.contains(f"probe-{i}") for i in range(probes))
        rate = false_positives / probes
        assert rate < 5e-2  # within a few x of the 1e-2 design point

    def test_saturation_at_capacity(self):
        bf = BloomFilter(capacity=100, max_fpp=1e-4, sizing_fpp=1e-4)
        for i in range(99):
            bf.insert(f"t{i}")
        assert not bf.is_saturated()
        bf.insert("t99")
        bf.insert("t100")
        assert bf.is_saturated()

    def test_higher_threshold_absorbs_more_inserts(self):
        # Fixed sizing, swept reset threshold — the Fig. 8 lever.
        low = BloomFilter(capacity=100, max_fpp=1e-4, sizing_fpp=1e-4)
        high = BloomFilter(capacity=100, max_fpp=1e-2, sizing_fpp=1e-4)
        assert low.size_bits == high.size_bits

        def inserts_until_saturated(bf):
            count = 0
            while not bf.is_saturated():
                bf.insert(f"i{count}")
                count += 1
            return count

        assert inserts_until_saturated(high) > 2 * inserts_until_saturated(low)

    def test_reset_clears_membership_keeps_stats(self):
        bf = BloomFilter(capacity=100)
        bf.insert("a")
        assert bf.contains("a")
        bf.reset()
        assert bf.lookups_since_reset == 0
        assert not bf.contains("a")
        assert bf.count == 0
        assert bf.total_inserts == 1
        assert bf.reset_count == 1

    def test_insert_with_auto_reset(self):
        bf = BloomFilter(capacity=10)
        fired = [bf.insert_with_auto_reset(f"t{i}") for i in range(15)]
        assert any(fired)
        assert bf.reset_count >= 1

    def test_operation_counters(self):
        bf = BloomFilter(capacity=100)
        bf.insert("a")
        bf.insert("a")
        bf.contains("a")
        bf.contains("b")
        assert bf.total_inserts == 2
        assert bf.total_lookups == 2

    def test_str_and_bytes_items_equivalent(self):
        bf = BloomFilter(capacity=100)
        bf.insert("tag")
        assert bf.contains(b"tag")
        assert "tag" in bf

    def test_fill_ratio_grows(self):
        bf = BloomFilter(capacity=100)
        assert bf.fill_ratio() == 0.0
        for i in range(50):
            bf.insert(f"t{i}")
        assert 0.0 < bf.fill_ratio() < 1.0


class TestCountingBloomFilter:
    def test_insert_remove_roundtrip(self):
        cbf = CountingBloomFilter(capacity=100)
        cbf.insert("tag")
        assert cbf.contains("tag")
        assert cbf.remove("tag")
        assert not cbf.contains("tag")

    def test_remove_absent_is_safe(self):
        cbf = CountingBloomFilter(capacity=100)
        cbf.insert("present")
        assert not cbf.remove("absent")
        assert cbf.contains("present")

    def test_duplicate_inserts_need_duplicate_removes(self):
        cbf = CountingBloomFilter(capacity=100)
        cbf.insert("x")
        cbf.insert("x")
        assert cbf.remove("x")
        assert cbf.contains("x")
        assert cbf.remove("x")
        assert not cbf.contains("x")

    def test_saturation(self):
        cbf = CountingBloomFilter(capacity=10)
        for i in range(20):
            cbf.insert(f"t{i}")
        assert cbf.is_saturated()
