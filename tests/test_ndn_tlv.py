"""Tests for the TLV wire codec, including hypothesis round-trips."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tag import Tag, make_tag
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn.name import Name
from repro.ndn.packets import AttachedNack, Data, Interest, Nack, NackReason
from repro.ndn.tlv import (
    TlvError,
    decode_data,
    decode_interest,
    decode_nack,
    decode_name,
    decode_packet,
    decode_tag,
    decode_varnum,
    encode_data,
    encode_interest,
    encode_nack,
    encode_name,
    encode_packet,
    encode_tag,
    encode_tlv,
    encode_varnum,
    iter_tlvs,
)

_KP = SimulatedKeyPair.generate(random.Random(515151))


def sample_tag(**overrides):
    fields = dict(
        provider_key_locator="/prov-0/KEY/pub",
        client_key_locator="/client-0/KEY/pub",
        access_level=2,
        access_path=bytes(range(32)),
        expiry=123.456,
    )
    fields.update(overrides)
    return make_tag(provider_keypair=_KP, **fields)


class TestVarnum:
    @pytest.mark.parametrize(
        "value", [0, 1, 252, 253, 254, 255, 256, 65535, 65536, 2**32 - 1, 2**32, 2**63]
    )
    def test_roundtrip(self, value):
        encoded = encode_varnum(value)
        decoded, offset = decode_varnum(encoded, 0)
        assert decoded == value and offset == len(encoded)

    def test_width_boundaries(self):
        assert len(encode_varnum(252)) == 1
        assert len(encode_varnum(253)) == 3
        assert len(encode_varnum(65535)) == 3
        assert len(encode_varnum(65536)) == 5

    def test_negative_rejected(self):
        with pytest.raises(TlvError):
            encode_varnum(-1)

    def test_truncated_rejected(self):
        with pytest.raises(TlvError):
            decode_varnum(b"", 0)
        with pytest.raises(TlvError):
            decode_varnum(b"\xfd\x01", 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        assert decode_varnum(encode_varnum(value), 0)[0] == value


class TestTlvFraming:
    def test_iter_tlvs(self):
        buf = encode_tlv(1, b"a") + encode_tlv(2, b"bc")
        assert list(iter_tlvs(buf)) == [(1, b"a"), (2, b"bc")]

    def test_overrun_rejected(self):
        buf = encode_tlv(1, b"abc")[:-1]
        with pytest.raises(TlvError):
            list(iter_tlvs(buf))


class TestNameCodec:
    @pytest.mark.parametrize("uri", ["/", "/a", "/a/b/c", "/prov-0/obj-3/chunk-17"])
    def test_roundtrip(self, uri):
        name = Name(uri)
        encoded = encode_name(name)
        for tlv_type, value in iter_tlvs(encoded):
            assert decode_name(value) == name

    def test_foreign_tlv_inside_name_rejected(self):
        bogus = encode_tlv(0x99, b"x")
        with pytest.raises(TlvError):
            decode_name(bogus)


class TestTagCodec:
    def test_roundtrip_preserves_signature_validity(self):
        tag = sample_tag()
        for tlv_type, value in iter_tlvs(encode_tag(tag)):
            decoded = decode_tag(value)
        assert decoded == tag
        assert decoded.verify_signature(_KP.public)
        assert decoded.cache_key() == tag.cache_key()

    def test_public_level_roundtrip(self):
        tag = sample_tag(access_level=None)
        for _, value in iter_tlvs(encode_tag(tag)):
            assert decode_tag(value).access_level is None

    def test_missing_field_rejected(self):
        with pytest.raises(TlvError):
            decode_tag(encode_tlv(0x81, b"/prov/KEY/pub"))

    def test_wire_size_close_to_estimate(self):
        tag = sample_tag()
        wire = len(encode_tag(tag))
        estimate = tag.encoded_size()
        assert abs(wire - estimate) / wire < 0.35  # honest size modelling


class TestInterestCodec:
    def test_full_roundtrip(self):
        interest = Interest(
            name=Name("/prov-0/obj-1/chunk-2"),
            tag=sample_tag(),
            flag_f=0.25,
            observed_access_path=bytes(range(32)),
            lifetime=1.5,
            credentials=b"secret-bytes",
        )
        decoded = decode_interest(encode_interest(interest))
        assert decoded.name == interest.name
        assert decoded.nonce == interest.nonce
        assert decoded.flag_f == interest.flag_f
        assert decoded.observed_access_path == interest.observed_access_path
        assert decoded.lifetime == interest.lifetime
        assert decoded.credentials == interest.credentials
        assert decoded.tag == interest.tag

    def test_bare_interest(self):
        interest = Interest(name=Name("/x"))
        decoded = decode_interest(encode_interest(interest))
        assert decoded.tag is None and decoded.credentials is None

    def test_wire_size_close_to_estimate(self):
        interest = Interest(name=Name("/prov-0/obj-1/chunk-2"), tag=sample_tag())
        wire = len(encode_interest(interest))
        assert abs(wire - interest.size_bytes()) / wire < 0.35

    def test_not_an_interest(self):
        with pytest.raises(TlvError):
            decode_interest(encode_tlv(0x42, b""))


class TestDataCodec:
    def test_full_roundtrip(self):
        data = Data(
            name=Name("/prov-0/obj-1/chunk-2"),
            payload=b"payload-bytes" * 10,
            access_level=3,
            provider_key_locator="/prov-0/KEY/pub",
            signature=b"s" * 64,
            flag_f=0.125,
            tag=sample_tag(),
            nack=AttachedNack(tag_key=b"k" * 32, reason=NackReason.ACCESS_LEVEL),
            wrapped_key=b"w" * 48,
        )
        decoded = decode_data(encode_data(data))
        assert decoded.name == data.name
        assert decoded.payload == data.payload
        assert decoded.access_level == 3
        assert decoded.provider_key_locator == data.provider_key_locator
        assert decoded.flag_f == data.flag_f
        assert decoded.tag == data.tag
        assert decoded.nack == data.nack
        assert decoded.wrapped_key == data.wrapped_key

    def test_tag_response_roundtrip(self):
        data = Data(name=Name("/prov-0/register/c/1"), tag_response=sample_tag())
        decoded = decode_data(encode_data(data))
        assert decoded.tag_response == data.tag_response
        assert decoded.is_tag_response()

    def test_public_data_roundtrip(self):
        data = Data(name=Name("/x"), payload=b"p", access_level=None)
        assert decode_data(encode_data(data)).access_level is None


class TestNackCodec:
    @pytest.mark.parametrize("reason", list(NackReason))
    def test_all_reasons_roundtrip(self, reason):
        nack = Nack(name=Name("/a/b"), reason=reason, nonce=77)
        decoded = decode_nack(encode_nack(nack))
        assert decoded.reason is reason
        assert decoded.nonce == 77


class TestGenericCodec:
    def test_dispatch(self):
        packets = [
            Interest(name=Name("/i")),
            Data(name=Name("/d"), payload=b"p"),
            Nack(name=Name("/n"), reason=NackReason.NO_TAG),
        ]
        for packet in packets:
            decoded = decode_packet(encode_packet(packet))
            assert type(decoded) is type(packet)
            assert decoded.name == packet.name

    def test_unknown_object_rejected(self):
        with pytest.raises(TlvError):
            encode_packet(object())
        with pytest.raises(TlvError):
            decode_packet(encode_tlv(0x50, b""))


name_strategy = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
        min_size=1,
        max_size=10,
    ),
    max_size=5,
).map(Name)


class TestPropertyRoundtrips:
    @given(name_strategy)
    def test_name_roundtrip(self, name):
        for _, value in iter_tlvs(encode_name(name)):
            assert decode_name(value) == name

    @given(
        name_strategy,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.binary(min_size=32, max_size=32),
    )
    def test_interest_roundtrip(self, name, flag, path):
        interest = Interest(name=name, flag_f=flag, observed_access_path=path)
        decoded = decode_interest(encode_interest(interest))
        assert decoded.name == name
        assert decoded.flag_f == flag
        assert decoded.observed_access_path == path

    @given(name_strategy, st.binary(max_size=256))
    def test_data_roundtrip(self, name, payload):
        data = Data(name=name, payload=payload)
        decoded = decode_data(encode_data(data))
        assert decoded.name == name and decoded.payload == payload
