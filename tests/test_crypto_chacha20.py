"""Unit tests for ChaCha20, including the RFC 8439 vector."""

import pytest

from repro.crypto.chacha20 import ChaCha20, chacha20_decrypt, chacha20_encrypt

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000000000004a00000000")
RFC_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
RFC_CIPHERTEXT = bytes.fromhex(
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
    "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
    "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
    "5af90bbf74a35be6b40b8eedf2785e42874d"
)


class TestRfcVector:
    def test_encrypt_matches_rfc(self):
        assert chacha20_encrypt(RFC_KEY, RFC_NONCE, RFC_PLAINTEXT, counter=1) == RFC_CIPHERTEXT

    def test_decrypt_matches_rfc(self):
        assert chacha20_decrypt(RFC_KEY, RFC_NONCE, RFC_CIPHERTEXT, counter=1) == RFC_PLAINTEXT


class TestRoundtrip:
    def test_roundtrip_various_lengths(self):
        key, nonce = b"k" * 32, b"n" * 12
        for length in (0, 1, 63, 64, 65, 128, 1000):
            plaintext = bytes(range(256)) * 4
            plaintext = plaintext[:length]
            ciphertext = chacha20_encrypt(key, nonce, plaintext)
            assert chacha20_decrypt(key, nonce, ciphertext) == plaintext

    def test_different_nonce_different_ciphertext(self):
        key = b"k" * 32
        ct1 = chacha20_encrypt(key, b"a" * 12, b"message")
        ct2 = chacha20_encrypt(key, b"b" * 12, b"message")
        assert ct1 != ct2

    def test_different_key_different_ciphertext(self):
        nonce = b"n" * 12
        ct1 = chacha20_encrypt(b"a" * 32, nonce, b"message")
        ct2 = chacha20_encrypt(b"b" * 32, nonce, b"message")
        assert ct1 != ct2

    def test_wrong_key_garbles(self):
        ct = chacha20_encrypt(b"a" * 32, b"n" * 12, b"secret message")
        assert chacha20_decrypt(b"b" * 32, b"n" * 12, ct) != b"secret message"


class TestStreaming:
    def test_incremental_equals_oneshot(self):
        key, nonce = b"k" * 32, b"n" * 12
        plaintext = bytes(range(256)) * 2  # spans multiple 64-byte blocks
        oneshot = chacha20_encrypt(key, nonce, plaintext)
        cipher = ChaCha20(key, nonce)
        # NOTE: incremental calls must land on 64-byte block boundaries
        # for keystream continuity.
        incremental = cipher.encrypt(plaintext[:64]) + cipher.encrypt(plaintext[64:])
        assert incremental == oneshot

    def test_counter_offset(self):
        key, nonce = b"k" * 32, b"n" * 12
        full = chacha20_encrypt(key, nonce, b"\x00" * 128, counter=0)
        second_block = chacha20_encrypt(key, nonce, b"\x00" * 64, counter=1)
        assert full[64:] == second_block


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"short", b"n" * 12)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"k" * 32, b"toolongnonce!")
