"""Flight recorder: the bounded ring, the NACK-storm and SimSan
triggers, on-demand bundles, snapshot contents, and env gating."""

from __future__ import annotations

import json

from repro.core.access_path import expected_access_path
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Interest
from repro.ndn.pit import Pit, PitRecord
from repro.obs.audit import DecisionAudit
from repro.obs.flightrec import (
    DEFAULT_RING_SIZE,
    FlightRecorder,
    maybe_flightrec,
)
from repro.qa.simsan import SimSan
from repro.sim.engine import Simulator

from tests.conftest import build_mini_net


class Probe(Node):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.nacks = []

    def on_data(self, data, in_face):
        pass

    def on_nack(self, nack, in_face):
        self.nacks.append(nack)


def probed_net():
    net = build_mini_net()
    probe = Probe(net.sim, "probe")
    net.network.add_node(probe, routable=False)
    net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
    return net, probe


def mismatched_tag(net, user_id="probe"):
    """A tag whose access path NACKs at the edge (Protocol 2)."""
    net.provider.directory.enroll(user_id, 3)
    return net.provider.issue_tag_direct(
        user_id, expected_access_path(("ap-elsewhere",))
    )


# ---------------------------------------------------------------------------
# The ring
# ---------------------------------------------------------------------------
class TestRing:
    def test_ring_is_bounded(self, tmp_path):
        sim = Simulator()
        rec = FlightRecorder(tmp_path, size=4).install(sim)
        for i in range(10):
            sim.trace.emit("node.rx.interest", float(i), node=f"n{i}")
        assert len(rec.ring) == 4
        assert rec.ring[0][1] == 6.0  # oldest survivor

    def test_install_is_what_activates_tracing(self, tmp_path):
        sim = Simulator()
        assert not sim.trace.active  # zero-cost off: no subscriber
        FlightRecorder(tmp_path).install(sim)
        assert sim.trace.active

    def test_span_lifecycle_tracked(self, tmp_path):
        sim = Simulator()
        rec = FlightRecorder(tmp_path).install(sim)
        sim.trace.emit("span.start", 0.1, span=7, kind="interest")
        sim.trace.emit("span.start", 0.2, span=8, kind="interest")
        sim.trace.emit("span.end", 0.3, span=7)
        assert sorted(rec._active_spans) == [8]
        bundle = rec.bundle("test")
        assert list(bundle["active_spans"]) == ["8"]
        assert bundle["active_spans"]["8"]["started"] == 0.2

    def test_audit_decisions_ride_the_ring(self, tmp_path):
        net = build_mini_net()
        rec = FlightRecorder(tmp_path).install(net.sim, network=net.network)
        audit = DecisionAudit(sink=rec.on_decision).attach(net.network)
        audit.record_decision("bf_miss", net.edge, outcome="miss")
        names = [name for name, _, _ in rec.ring]
        assert "audit.decision" in names


# ---------------------------------------------------------------------------
# Triggers
# ---------------------------------------------------------------------------
class TestNackStormTrigger:
    def test_storm_dumps_once(self, tmp_path):
        net, probe = probed_net()
        rec = FlightRecorder(
            tmp_path, nack_threshold=2, nack_window=60.0
        ).install(net.sim, network=net.network)
        tag = mismatched_tag(net)
        for chunk in range(4):
            net.sim.schedule(
                0.0,
                probe.faces[0].send,
                Interest(name=Name(f"/prov-0/obj-0/chunk-{chunk}"), tag=tag),
            )
        net.run()
        assert len(probe.nacks) == 4
        assert len(rec.dumps) == 1  # the storm latch fires exactly once
        bundle = json.loads(rec.dumps[0].read_text())
        assert bundle["reason"] == "nack-storm"

    def test_sparse_nacks_stay_quiet(self, tmp_path):
        sim = Simulator()
        rec = FlightRecorder(
            tmp_path, nack_threshold=3, nack_window=1.0
        ).install(sim)
        for i in range(5):
            sim.trace.emit("node.tx.nack", float(i * 10), node="edge-0")
        assert rec.dumps == []

    def test_attached_nack_on_data_counts(self, tmp_path):
        sim = Simulator()
        rec = FlightRecorder(
            tmp_path, nack_threshold=2, nack_window=1.0
        ).install(sim)
        sim.trace.emit("node.tx.data", 0.1, node="core-0", nack="invalid_signature")
        sim.trace.emit("node.tx.data", 0.2, node="core-0", nack="invalid_signature")
        sim.trace.emit("node.tx.data", 0.3, node="core-0", nack=None)
        assert len(rec.dumps) == 1


class TestSimSanTrigger:
    def test_first_violation_dumps_a_bundle(self, tmp_path):
        san = SimSan(mode="collect")
        san.flightrec = FlightRecorder(tmp_path, label="san")
        pit = Pit(entry_lifetime=2.0)
        pit.san = san
        pit.insert(
            "/a/1",
            PitRecord(tag=None, flag_f=0.0, in_face="f0", arrived_at=0.0),
            now=0.0,
        )
        pit._entries.clear()  # leak the record
        violations = san.finish()
        assert [v.kind for v in violations] == ["pit-conservation"]
        assert len(san.flightrec.dumps) == 1
        bundle = json.loads(san.flightrec.dumps[0].read_text())
        assert bundle["reason"] == "simsan-pit-conservation"
        assert bundle["label"] == "san"


# ---------------------------------------------------------------------------
# Bundles
# ---------------------------------------------------------------------------
class TestBundle:
    def test_end_to_end_bundle_snapshots_tables(self, tmp_path):
        scenario = Scenario.paper_topology(1, duration=2.0, seed=5, scale=0.1)
        rec = FlightRecorder(tmp_path, size=4096, dump_on_exit=True)
        result = run_scenario(scenario, audit=DecisionAudit(), flightrec=rec)
        assert result.flightrec is rec
        assert len(rec.dumps) == 1
        bundle = json.loads(rec.dumps[0].read_text())
        assert bundle["reason"] == "on-demand"
        assert bundle["events_executed"] > 0
        assert bundle["ring"]
        names = {entry["name"] for entry in bundle["ring"]}
        assert "audit.decision" in names  # the audit sink feeds the ring
        some_router = next(
            snap for snap in bundle["nodes"].values() if "bf" in snap
        )
        assert {"count", "size_bits", "fill_ratio", "current_fpp", "resets"} \
            <= set(some_router["bf"])
        assert "pit_entries" in some_router
        assert {"entries", "hits", "misses"} <= set(some_router["cs"])

    def test_bundle_is_json_round_trippable(self, tmp_path):
        sim = Simulator()
        rec = FlightRecorder(tmp_path).install(sim)
        sim.trace.emit("node.rx.data", 0.1, node="edge-0", key=b"\x01\x02")
        bundle = rec.bundle("test")
        assert json.loads(json.dumps(bundle)) == bundle
        assert bundle["ring"][0]["payload"]["key"] == "0102"  # bytes hexed

    def test_dump_filenames_sequence(self, tmp_path):
        rec = FlightRecorder(tmp_path, label="fig6")
        first = rec.dump("on-demand")
        second = rec.dump("on-demand")
        assert first.name == "flightrec-fig6-000.json"
        assert second.name == "flightrec-fig6-001.json"

    def test_finish_without_dump_on_exit_writes_nothing(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        rec.finish()
        assert rec.dumps == []
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Environment gating
# ---------------------------------------------------------------------------
class TestEnvGating:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        assert maybe_flightrec() is None

    def test_directory_opts_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLIGHTREC", str(tmp_path))
        monkeypatch.delenv("REPRO_FLIGHTREC_SIZE", raising=False)
        monkeypatch.delenv("REPRO_FLIGHTREC_DUMP", raising=False)
        rec = maybe_flightrec(label="x")
        assert rec is not None
        assert rec.size == DEFAULT_RING_SIZE
        assert rec.label == "x"
        assert not rec.dump_on_exit

    def test_size_and_dump_envs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLIGHTREC", str(tmp_path))
        monkeypatch.setenv("REPRO_FLIGHTREC_SIZE", "64")
        monkeypatch.setenv("REPRO_FLIGHTREC_DUMP", "1")
        rec = maybe_flightrec()
        assert rec.size == 64
        assert rec.dump_on_exit

    def test_bad_size_falls_back(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLIGHTREC", str(tmp_path))
        monkeypatch.setenv("REPRO_FLIGHTREC_SIZE", "not-a-number")
        assert maybe_flightrec().size == DEFAULT_RING_SIZE
