"""Tests for forwarding strategies, multipath FIBs, and link failover."""

import pytest

from repro.ndn import Data, Interest, Name, Network, Node
from repro.ndn.fib import Fib, NextHop
from repro.ndn.strategy import (
    BestRouteStrategy,
    LoadBalanceStrategy,
    MulticastStrategy,
    make_strategy,
)
from repro.sim import Simulator

from tests.conftest import attach_client, build_mini_net


class TestMultipathFib:
    def test_hops_ranked_by_cost(self):
        fib = Fib()
        fib.add("/p", face="slow", cost=5.0)
        fib.add("/p", face="fast", cost=1.0)
        hops = fib.lookup_nexthops("/p/x")
        assert [h.face for h in hops] == ["fast", "slow"]
        assert fib.lookup("/p/x") == "fast"

    def test_duplicate_face_updates_cost(self):
        fib = Fib()
        fib.add("/p", face="f", cost=5.0)
        fib.add("/p", face="f", cost=1.0)
        hops = fib.lookup_nexthops("/p")
        assert len(hops) == 1 and hops[0].cost == 1.0

    def test_remove_nexthop(self):
        fib = Fib()
        fib.add("/p", face="a", cost=1.0)
        fib.add("/p", face="b", cost=2.0)
        assert fib.remove_nexthop("/p", "a")
        assert fib.lookup("/p") == "b"
        assert fib.remove_nexthop("/p", "b")
        assert fib.lookup("/p") is None
        assert not fib.remove_nexthop("/p", "ghost")

    def test_purge_face_everywhere(self):
        fib = Fib()
        fib.add("/p", face="dead", cost=1.0)
        fib.add("/q", face="dead", cost=1.0)
        fib.add("/q", face="alive", cost=2.0)
        assert fib.purge_face("dead") == 2
        assert fib.lookup("/p") is None
        assert fib.lookup("/q") == "alive"

    def test_lookup_entry_backcompat(self):
        fib = Fib()
        fib.add("/p", face="f", cost=3.0)
        assert fib.lookup_entry("/p/x") == ("f", 3.0)
        assert fib.lookup_entry("/none") is None


class _FakeFace:
    def __init__(self, up=True):
        class _Link:
            pass

        self.link = _Link()
        self.link.up = up


class TestStrategies:
    def hops(self, *costs, up=None):
        up = up or [True] * len(costs)
        return [
            NextHop(face=_FakeFace(up=u), cost=c) for c, u in zip(costs, up)
        ]

    def test_best_route_picks_cheapest(self):
        import random

        hops = self.hops(3.0, 1.0, 2.0)
        picked = BestRouteStrategy().select(sorted(hops, key=lambda h: h.cost),
                                            None, random.Random(0))
        assert picked == [min(hops, key=lambda h: h.cost).face]

    def test_best_route_skips_in_face(self):
        import random

        hops = self.hops(1.0, 2.0)
        picked = BestRouteStrategy().select(hops, hops[0].face, random.Random(0))
        assert picked == [hops[1].face]

    def test_best_route_skips_down_links(self):
        import random

        hops = self.hops(1.0, 2.0, up=[False, True])
        picked = BestRouteStrategy().select(hops, None, random.Random(0))
        assert picked == [hops[1].face]

    def test_multicast_selects_all_usable(self):
        import random

        hops = self.hops(1.0, 2.0, 3.0, up=[True, False, True])
        picked = MulticastStrategy().select(hops, None, random.Random(0))
        assert picked == [hops[0].face, hops[2].face]

    def test_load_balance_spreads_by_inverse_cost(self):
        import random

        hops = self.hops(1.0, 10.0)
        rng = random.Random(7)
        strategy = LoadBalanceStrategy()
        counts = {0: 0, 1: 0}
        for _ in range(2000):
            face = strategy.select(hops, None, rng)[0]
            counts[0 if face is hops[0].face else 1] += 1
        assert counts[0] > 5 * counts[1]  # 10:1 weighting, roughly

    def test_no_usable_hops_empty(self):
        import random

        hops = self.hops(1.0, up=[False])
        for strategy in (BestRouteStrategy(), MulticastStrategy(), LoadBalanceStrategy()):
            assert strategy.select(hops, None, random.Random(0)) == []

    def test_factory(self):
        assert make_strategy("multicast").name == "multicast"
        with pytest.raises(ValueError):
            make_strategy("teleport")


def diamond_net():
    """a - {b, c} - d: two disjoint paths for failover tests."""
    sim = Simulator(seed=4)
    net = Network(sim)
    a, b, c, d = (net.add_node(Node(sim, x)) for x in "abcd")
    net.connect(a, b, latency=0.001)
    net.connect(a, c, latency=0.002)  # backup: slightly worse
    net.connect(b, d, latency=0.001)
    net.connect(c, d, latency=0.002)
    net.announce_prefix("/prov", d)
    d.cs.insert(Data(name=Name("/prov/1"), payload=b"x"))
    d.cs.capacity = 10**6
    for i in range(50):
        d.cs.insert(Data(name=Name(f"/prov/obj/{i}"), payload=b"x"))
    return sim, net, a, b, c, d


class TestLinkFailover:
    def fetch(self, sim, net, a, name):
        got = []
        a.on_data = lambda data, f: got.append(data)
        sim.schedule(0.0, a.faces[0].send, Interest(name=Name(name)))
        # faces[0] is a's face toward b... fetch must be driven from a
        # itself: inject directly instead.
        return got

    def test_primary_path_used_initially(self, ):
        sim, net, a, b, c, d = diamond_net()
        assert a.fib.lookup("/prov/1").peer is b

    def test_failover_reroutes_through_backup(self):
        sim, net, a, b, c, d = diamond_net()
        net.fail_link(a, b)
        assert a.fib.lookup("/prov/1").peer is c
        # And traffic actually flows end to end on the backup: inject as
        # if it arrived on the (dead) b-side face so the strategy picks c.
        got = []
        a.on_data = lambda data, f: got.append(data)
        sim.schedule(0.0, a.on_interest, Interest(name=Name("/prov/obj/3")),
                     a.face_toward(b))
        sim.run(until=1.0)
        assert got

    def test_down_link_drops_traffic(self):
        sim, net, a, b, c, d = diamond_net()
        link = net.fail_link(a, b, reroute=False)
        before = link.packets_dropped
        a.face_toward(b).send(Interest(name=Name("/prov/1")))
        assert link.packets_dropped == before + 1

    def test_restore_returns_to_primary(self):
        sim, net, a, b, c, d = diamond_net()
        net.fail_link(a, b)
        net.restore_link(a, b)
        assert a.fib.lookup("/prov/1").peer is b

    def test_unknown_link_raises(self):
        sim, net, a, b, c, d = diamond_net()
        with pytest.raises(LookupError):
            net.fail_link(a, d)

    def test_partitioned_origin_tolerated(self):
        sim, net, a, b, c, d = diamond_net()
        net.fail_link(b, d, reroute=False)
        net.fail_link(c, d, reroute=False)
        net.reannounce()  # d unreachable: old routes purged, no crash
        assert a.fib.lookup("/prov/1") is None or True


class TestEndToEndFailover:
    def test_client_survives_midrun_link_failure(self):
        # mini-net is a chain, so give it a bypass: edge -- core2.
        net = build_mini_net()
        bypass = net.network.connect(
            net.edge, net.core2, bandwidth_bps=500e6, latency=0.005
        )
        net.network.reannounce()
        client = attach_client(net, "alice")
        client.start(at=0.0, until=10.0)
        net.sim.schedule(4.0, net.network.fail_link, net.edge, net.core1)
        net.run(until=12.0)
        stats = net.metrics.user("alice")
        late = [t for t, _ in stats.latency_samples if t > 5.0]
        assert late, "client should keep retrieving over the bypass"
        assert stats.delivery_ratio() > 0.9
