"""Run history: append/read round-trip, drift diffs, CLI exit codes."""

from __future__ import annotations

import copy
import json

import pytest

from repro.exec.engine import ExperimentEngine
from repro.experiments.fig6_tag_rates import enumerate_fig6
from repro.obs.history import (
    RunHistory,
    diff_entries,
    main,
    spec_fingerprint,
)


def _specs(n=2):
    return enumerate_fig6(duration=2.0, scale=0.1)[:n]


def _record_run(history_dir, figure="fig6", n=2):
    engine = ExperimentEngine(jobs=1, use_cache=False,
                              history_dir=str(history_dir))
    summaries = engine.run_specs(_specs(n), figure=figure)
    return summaries


class TestFingerprint:
    def test_stable_and_code_independent(self):
        a, b = _specs(2)
        assert spec_fingerprint(a) == spec_fingerprint(a)
        assert spec_fingerprint(a) != spec_fingerprint(b)
        assert len(spec_fingerprint(a)) == 24  # blake2b digest_size=12


class TestAppendReadRoundTrip:
    def test_engine_appends_one_entry_per_run(self, tmp_path):
        _record_run(tmp_path)
        _record_run(tmp_path)
        history = RunHistory(tmp_path)
        entries = history.entries()
        assert [e["sequence"] for e in entries] == [1, 2]
        assert all(e["figure"] == "fig6" for e in entries)
        assert all(len(e["specs"]) == 2 for e in entries)

    def test_entry_carries_summary_metrics(self, tmp_path):
        summaries = _record_run(tmp_path, n=1)
        entry = RunHistory(tmp_path).latest("fig6")
        spec_row = entry["specs"][0]
        # (JSON round-trip turns tuples into lists; normalise both sides.)
        expected = json.loads(json.dumps(summaries[0].metrics_dict()))
        assert spec_row["metrics"] == expected
        assert spec_row["label"] == summaries[0].label
        assert spec_row["cached"] is False
        assert entry["jobs"] == 1 and entry["wall_seconds"] > 0.0

    def test_figure_filter_and_latest_offset(self, tmp_path):
        history = RunHistory(tmp_path)
        for figure in ("fig5", "fig6", "fig6"):
            history.append(figure=figure, jobs=1, wall_seconds=1.0,
                           specs=[], summaries=[], timestamp=0.0)
        assert [e["figure"] for e in history.entries("fig6")] == ["fig6", "fig6"]
        assert history.latest("fig6")["sequence"] == 3
        assert history.latest("fig6", offset=1)["sequence"] == 2
        assert history.latest("fig5", offset=1) is None
        assert history.by_sequence(1)["figure"] == "fig5"
        assert history.by_sequence(99) is None

    def test_no_history_dir_means_no_file(self, tmp_path):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run_specs(_specs(1), figure="fig6")
        assert RunHistory(tmp_path).entries() == []

    def test_audit_metrics_folded_into_entry(self, tmp_path):
        # With auditing on, the misauthorization rates ride the entry's
        # metrics dict, putting them under the regression gate.
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  history_dir=str(tmp_path), audit=True)
        engine.run_specs(_specs(1), figure="fig6")
        metrics = RunHistory(tmp_path).latest("fig6")["specs"][0]["metrics"]
        assert metrics["audit.decisions_total"] > 0
        assert metrics["audit.false_positives"] == 0
        assert any(key.endswith(".bf_misauth_rate") for key in metrics)


class TestDiff:
    def _entry(self, tmp_path):
        _record_run(tmp_path)
        return RunHistory(tmp_path).latest("fig6")

    def test_identical_entries_are_clean(self, tmp_path):
        entry = self._entry(tmp_path)
        assert diff_entries(entry, copy.deepcopy(entry)) == []

    def test_metric_drift_reported(self, tmp_path):
        entry = self._entry(tmp_path)
        drifted = copy.deepcopy(entry)
        key = sorted(drifted["specs"][0]["metrics"])[0]
        metrics = drifted["specs"][0]["metrics"]
        value = metrics[key]
        metrics[key] = (value + 1) if isinstance(value, (int, float)) else "x"
        problems = diff_entries(entry, drifted)
        assert len(problems) == 1 and "drifted" in problems[0]

    def test_tolerance_absorbs_small_drift(self):
        base = {"wall_seconds": 1.0, "specs": [
            {"fingerprint": "f", "label": "a", "metrics": {"m": 100.0}}]}
        cand = copy.deepcopy(base)
        cand["specs"][0]["metrics"]["m"] = 100.5
        assert diff_entries(base, cand) != []
        assert diff_entries(base, cand, rel_tol=0.01) == []

    def test_missing_spec_and_metric_reported(self):
        base = {"wall_seconds": 1.0, "specs": [
            {"fingerprint": "f1", "label": "a", "metrics": {"m": 1, "n": 2}},
            {"fingerprint": "f2", "label": "b", "metrics": {"m": 1}}]}
        cand = {"wall_seconds": 1.0, "specs": [
            {"fingerprint": "f1", "label": "a", "metrics": {"m": 1}}]}
        problems = diff_entries(base, cand)
        assert any("missing from candidate" in p for p in problems)
        assert any("present on one side only" in p for p in problems)

    def test_wall_clock_regression_gate(self):
        base = {"wall_seconds": 1.0, "specs": []}
        cand = {"wall_seconds": 1.4, "specs": []}
        assert diff_entries(base, cand) == []  # ignored by default
        assert diff_entries(base, cand, wall_tol_pct=50.0) == []
        problems = diff_entries(base, cand, wall_tol_pct=20.0)
        assert len(problems) == 1 and "wall clock regressed" in problems[0]

    def test_bool_metric_not_numeric_matched(self):
        base = {"wall_seconds": 1.0, "specs": [
            {"fingerprint": "f", "label": "a", "metrics": {"ok": True}}]}
        cand = copy.deepcopy(base)
        cand["specs"][0]["metrics"]["ok"] = 1.0000001
        assert diff_entries(base, cand, rel_tol=0.1) != []

    def test_zero_baseline_admits_no_tolerance(self):
        # A zero-baseline counter (e.g. audit.false_positives) must stay
        # zero: rel_tol scales with magnitude, so without this rule any
        # drift away from 0 would slip through every tolerance.
        base = {"wall_seconds": 1.0, "specs": [
            {"fingerprint": "f", "label": "a", "metrics": {"fp": 0}}]}
        cand = copy.deepcopy(base)
        cand["specs"][0]["metrics"]["fp"] = 1
        problems = diff_entries(base, cand, rel_tol=0.5)
        assert len(problems) == 1 and "drifted" in problems[0]

    def test_zero_baseline_zero_candidate_clean(self):
        base = {"wall_seconds": 1.0, "specs": [
            {"fingerprint": "f", "label": "a", "metrics": {"fp": 0}}]}
        cand = copy.deepcopy(base)
        cand["specs"][0]["metrics"]["fp"] = 0.0  # int/float zero match
        assert diff_entries(base, cand, rel_tol=0.5) == []
        assert diff_entries(base, cand) == []


class TestCli:
    def test_diff_identical_runs_exits_zero(self, tmp_path, capsys):
        _record_run(tmp_path)
        _record_run(tmp_path)
        code = main(["diff", "--history-dir", str(tmp_path),
                     "--figure", "fig6", "--wall-tolerance", "10000"])
        assert code == 0
        assert "identical within tolerance" in capsys.readouterr().out

    def test_diff_drift_exits_one(self, tmp_path, capsys):
        _record_run(tmp_path)
        # Forge a drifted second entry directly in the file.
        history = RunHistory(tmp_path)
        entry = copy.deepcopy(history.latest("fig6"))
        entry["sequence"] += 1
        key = sorted(entry["specs"][0]["metrics"])[0]
        entry["specs"][0]["metrics"][key] = -12345
        with open(history.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")
        code = main(["diff", "--history-dir", str(tmp_path), "--figure", "fig6"])
        assert code == 1
        assert "drifted" in capsys.readouterr().out

    def test_diff_explicit_baseline(self, tmp_path):
        _record_run(tmp_path)
        _record_run(tmp_path)
        _record_run(tmp_path)
        assert main(["diff", "--history-dir", str(tmp_path),
                     "--figure", "fig6", "--baseline", "1"]) == 0
        assert main(["diff", "--history-dir", str(tmp_path),
                     "--baseline", "42"]) == 2

    def test_usage_errors_exit_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_HISTORY_DIR", raising=False)
        assert main(["diff"]) == 2
        assert main(["diff", "--history-dir", str(tmp_path)]) == 2  # empty
        _record_run(tmp_path)
        assert main(["diff", "--history-dir", str(tmp_path)]) == 2  # single
        capsys.readouterr()

    def test_env_var_supplies_directory(self, tmp_path, monkeypatch, capsys):
        _record_run(tmp_path)
        _record_run(tmp_path)
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
        assert main(["diff", "--figure", "fig6"]) == 0
        capsys.readouterr()

    def test_list_renders_entries(self, tmp_path, capsys):
        _record_run(tmp_path)
        assert main(["list", "--history-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "#1" in out and "fig6" in out and "2 specs" in out


class TestDeterminism:
    def test_two_runs_identical_metrics(self, tmp_path):
        """The gate is only useful if fixed-seed reruns really agree."""
        _record_run(tmp_path)
        _record_run(tmp_path)
        history = RunHistory(tmp_path)
        first, second = history.entries("fig6")
        assert diff_entries(first, second) == []

    @pytest.mark.parametrize("jobs", [1])
    def test_cached_rerun_matches_fresh(self, tmp_path, jobs):
        cache = tmp_path / "cache"
        for _ in range(2):
            engine = ExperimentEngine(jobs=jobs, cache_dir=str(cache),
                                      use_cache=True,
                                      history_dir=str(tmp_path))
            engine.run_specs(_specs(1), figure="fig6")
        history = RunHistory(tmp_path)
        first, second = history.entries("fig6")
        assert second["specs"][0]["cached"] is True
        assert first["specs"][0]["cached"] is False
        # Cached flag lives outside metrics; the metrics agree exactly.
        assert diff_entries(first, second) == []
