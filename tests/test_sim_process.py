"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Process, Simulator, Timeout


def test_process_runs_and_sleeps():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield Timeout(1.5)
        log.append(("mid", sim.now))
        yield Timeout(0.5)
        log.append(("end", sim.now))

    process = Process(sim, worker())
    sim.run()
    assert log == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]
    assert not process.alive


def test_process_start_delay():
    sim = Simulator()
    log = []

    def worker():
        log.append(sim.now)
        yield Timeout(1.0)
        log.append(sim.now)

    Process(sim, worker(), start_delay=3.0)
    sim.run()
    assert log == [3.0, 4.0]


def test_interrupt_stops_process():
    sim = Simulator()
    log = []

    def worker():
        while True:
            log.append(sim.now)
            yield Timeout(1.0)

    process = Process(sim, worker())
    sim.schedule(2.5, process.interrupt)
    sim.run(until=10.0)
    assert log == [0.0, 1.0, 2.0]
    assert not process.alive


def test_invalid_yield_type_raises():
    sim = Simulator()

    def worker():
        yield "not a timeout"

    Process(sim, worker())
    with pytest.raises(TypeError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def worker(name, period):
        for _ in range(3):
            log.append((name, sim.now))
            yield Timeout(period)

    Process(sim, worker("fast", 1.0))
    Process(sim, worker("slow", 2.0))
    sim.run()
    assert ("fast", 2.0) in log and ("slow", 4.0) in log
