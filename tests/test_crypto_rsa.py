"""Unit tests for the from-scratch RSA implementation."""

import random

import pytest

from repro.crypto.rsa import (
    RsaPublicKey,
    _emsa_encode,
    _is_probable_prime,
    generate_keypair,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=512, rng=random.Random(1234))


class TestPrimality:
    def test_known_primes(self):
        rng = random.Random(0)
        for p in (2, 3, 5, 7, 97, 7919, 104729):
            assert _is_probable_prime(p, rng)

    def test_known_composites(self):
        rng = random.Random(0)
        for n in (0, 1, 4, 100, 7917, 561, 41041):  # incl. Carmichael numbers
            assert not _is_probable_prime(n, rng)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 511 <= keypair.n.bit_length() <= 512

    def test_key_identity(self, keypair):
        # d inverts e modulo phi: m^(ed) == m (mod n)
        m = 0xDEADBEEF
        assert pow(pow(m, keypair.e, keypair.n), keypair.d, keypair.n) == m

    def test_deterministic_with_seeded_rng(self):
        a = generate_keypair(bits=512, rng=random.Random(7))
        b = generate_keypair(bits=512, rng=random.Random(7))
        assert a.n == b.n and a.d == b.d

    def test_distinct_seeds_distinct_keys(self):
        a = generate_keypair(bits=512, rng=random.Random(1))
        b = generate_keypair(bits=512, rng=random.Random(2))
        assert a.n != b.n


class TestSignVerify:
    def test_roundtrip(self, keypair):
        message = b"the quick brown fox"
        signature = keypair.sign(message)
        assert keypair.public.verify(message, signature)

    def test_tampered_message_fails(self, keypair):
        signature = keypair.sign(b"original")
        assert not keypair.public.verify(b"tampered", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(keypair.sign(b"msg"))
        signature[5] ^= 0xFF
        assert not keypair.public.verify(b"msg", bytes(signature))

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(bits=512, rng=random.Random(99))
        signature = keypair.sign(b"msg")
        assert not other.public.verify(b"msg", signature)

    def test_wrong_length_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"msg", b"short")

    def test_oversized_signature_value_rejected(self, keypair):
        bogus = (keypair.n + 1).to_bytes(keypair.byte_length + 1, "big")
        assert not keypair.public.verify(b"msg", bogus[: keypair.byte_length])

    def test_empty_message(self, keypair):
        signature = keypair.sign(b"")
        assert keypair.public.verify(b"", signature)

    def test_signature_length_matches_modulus(self, keypair):
        assert len(keypair.sign(b"x")) == keypair.byte_length


class TestEmsaEncoding:
    def test_structure(self):
        em = _emsa_encode(b"hello", 64)
        assert em[:2] == b"\x00\x01"
        assert len(em) == 64
        assert b"\x00" in em[2:]

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            _emsa_encode(b"hello", 32)  # SHA-256 DigestInfo needs > 51 bytes

    def test_deterministic(self):
        assert _emsa_encode(b"x", 64) == _emsa_encode(b"x", 64)


class TestFingerprint:
    def test_stable(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()

    def test_distinct_keys_distinct_fingerprints(self, keypair):
        other = generate_keypair(bits=512, rng=random.Random(5))
        assert keypair.public.fingerprint() != other.public.fingerprint()

    def test_reconstructed_key_same_fingerprint(self, keypair):
        clone = RsaPublicKey(n=keypair.n, e=keypair.e)
        assert clone.fingerprint() == keypair.public.fingerprint()
