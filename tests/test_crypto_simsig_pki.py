"""Unit tests for simulated signatures and the PKI store."""

import random

import pytest

from repro.crypto.pki import Certificate, CertificateStore, PkiError
from repro.crypto.sim_signature import (
    SimulatedKeyPair,
    SimulatedPublicKey,
    reset_registry,
)


class TestSimulatedSignatures:
    def test_roundtrip(self):
        kp = SimulatedKeyPair.generate(random.Random(1))
        sig = kp.sign(b"message")
        assert kp.public.verify(b"message", sig)

    def test_tampered_message_fails(self):
        kp = SimulatedKeyPair.generate(random.Random(1))
        sig = kp.sign(b"message")
        assert not kp.public.verify(b"messagE", sig)

    def test_forged_signature_fails(self):
        kp = SimulatedKeyPair.generate(random.Random(1))
        assert not kp.public.verify(b"message", b"\x00" * 32)

    def test_cross_key_verification_fails(self):
        a = SimulatedKeyPair.generate(random.Random(1))
        b = SimulatedKeyPair.generate(random.Random(2))
        assert not b.public.verify(b"m", a.sign(b"m"))

    def test_unregistered_fingerprint_fails(self):
        ghost = SimulatedPublicKey(fp=b"\x01" * 32)
        assert not ghost.verify(b"m", b"\x00" * 32)

    def test_registry_reset_kills_verification(self):
        from repro.crypto import sim_signature

        kp = SimulatedKeyPair.generate(random.Random(3))
        sig = kp.sign(b"m")
        snapshot = dict(sim_signature._KEY_REGISTRY)
        reset_registry()
        try:
            assert not kp.public.verify(b"m", sig)
        finally:
            # Restore every key other test modules registered at import.
            sim_signature._KEY_REGISTRY.update(snapshot)

    def test_deterministic_generation(self):
        a = SimulatedKeyPair.generate(random.Random(9))
        b = SimulatedKeyPair.generate(random.Random(9))
        assert a.fp == b.fp


class TestCertificateStore:
    def make_cert(self, locator="/prov-0/KEY/pub", **kwargs):
        kp = SimulatedKeyPair.generate(random.Random(11))
        return Certificate(locator=locator, public_key=kp.public, **kwargs), kp

    def test_register_and_lookup(self):
        store = CertificateStore()
        cert, _ = self.make_cert()
        store.register(cert)
        assert store.lookup("/prov-0/KEY/pub") is cert
        assert "/prov-0/KEY/pub" in store
        assert len(store) == 1

    def test_unknown_locator_raises(self):
        store = CertificateStore()
        with pytest.raises(PkiError):
            store.lookup("/nobody")

    def test_idempotent_reregistration(self):
        store = CertificateStore()
        cert, _ = self.make_cert()
        store.register(cert)
        store.register(cert)  # same key: fine
        assert len(store) == 1

    def test_conflicting_registration_rejected(self):
        store = CertificateStore()
        cert, _ = self.make_cert()
        other_kp = SimulatedKeyPair.generate(random.Random(12))
        conflict = Certificate(locator=cert.locator, public_key=other_kp.public)
        store.register(cert)
        with pytest.raises(PkiError):
            store.register(conflict)

    def test_overwrite_flag(self):
        store = CertificateStore()
        cert, _ = self.make_cert()
        other_kp = SimulatedKeyPair.generate(random.Random(13))
        replacement = Certificate(locator=cert.locator, public_key=other_kp.public)
        store.register(cert)
        store.register(replacement, overwrite=True)
        assert store.lookup(cert.locator).public_key == other_kp.public

    def test_validity_window(self):
        store = CertificateStore()
        cert, _ = self.make_cert(issued_at=10.0, expires_at=20.0)
        store.register(cert)
        with pytest.raises(PkiError):
            store.get_public_key(cert.locator, now=5.0)
        assert store.get_public_key(cert.locator, now=15.0) is not None
        with pytest.raises(PkiError):
            store.get_public_key(cert.locator, now=25.0)

    def test_try_get_returns_none_on_failure(self):
        store = CertificateStore()
        assert store.try_get_public_key("/ghost") is None
