"""Tests for Che's approximation, link loss, and trace-driven workloads."""

import random

import pytest

from repro.analysis.cache_math import (
    aggregate_hit_ratio,
    characteristic_time,
    expected_origin_load,
    hit_ratios,
    zipf_popularities,
)
from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.workload.trace import RequestTrace, TraceClient, TraceRecordEntry
from repro.workload.zipf import ZipfSampler

from tests.conftest import build_mini_net


class TestCheApproximation:
    def test_everything_fits(self):
        pops = zipf_popularities(10, 0.7)
        assert characteristic_time(pops, capacity=10) == float("inf")
        assert aggregate_hit_ratio(pops, capacity=10) == 1.0

    def test_hit_ratio_monotone_in_capacity(self):
        pops = zipf_popularities(100, 0.7)
        ratios = [aggregate_hit_ratio(pops, c) for c in (5, 20, 50, 90)]
        assert ratios == sorted(ratios)
        assert 0.0 < ratios[0] < ratios[-1] <= 1.0

    def test_popular_objects_hit_more(self):
        pops = zipf_popularities(50, 1.0)
        ratios = hit_ratios(pops, capacity=10)
        assert ratios[0] > ratios[10] > ratios[-1]

    def test_expected_occupancy_equals_capacity(self):
        import math

        pops = zipf_popularities(200, 0.7)
        tc = characteristic_time(pops, capacity=40)
        occupied = sum(1.0 - math.exp(-q * tc) for q in pops)
        assert occupied == pytest.approx(40.0, rel=1e-6)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            characteristic_time([0.5, 0.5], capacity=0)
        with pytest.raises(ValueError):
            characteristic_time([0.0, 0.0], capacity=1)

    def test_origin_load(self):
        pops = zipf_popularities(100, 0.7)
        load = expected_origin_load(1000.0, pops, capacity=50)
        assert 0.0 < load < 1000.0

    def test_prediction_matches_simulated_lru(self):
        # Drive a real ContentStore with a Zipf stream and compare the
        # measured hit ratio against Che's prediction.
        num_objects, capacity, alpha = 200, 30, 0.8
        pops = zipf_popularities(num_objects, alpha)
        predicted = aggregate_hit_ratio(pops, capacity)

        cs = ContentStore(capacity=capacity, policy="lru")
        sampler = ZipfSampler(num_objects, alpha, random.Random(5))
        hits = misses = 0
        for _ in range(40000):
            index = sampler.sample()
            name = Name(f"/o/{index}")
            if cs.lookup(name) is not None:
                hits += 1
            else:
                misses += 1
                cs.insert(Data(name=name, payload=b"x"))
        measured = hits / (hits + misses)
        assert measured == pytest.approx(predicted, abs=0.05)


class TestLinkLoss:
    def test_loss_rate_validated(self):
        from repro.ndn.link import Link
        from repro.ndn.node import Node
        from repro.sim import Simulator

        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, loss_rate=1.5)

    def test_lossy_link_drops_expected_fraction(self):
        from repro.ndn import Interest, Network, Node
        from repro.sim import Simulator

        sim = Simulator(seed=3)
        net = Network(sim)
        a = net.add_node(Node(sim, "a"))
        b = net.add_node(Node(sim, "b"))
        link = net.connect(a, b, loss_rate=0.3)
        received = []
        b.on_interest = lambda i, f: received.append(i)
        for i in range(2000):
            sim.schedule(i * 0.001, a.faces[0].send, Interest(name=Name(f"/x/{i}")))
        sim.run()
        loss = link.packets_dropped / 2000
        assert loss == pytest.approx(0.3, abs=0.04)
        assert len(received) + link.packets_dropped == 2000

    def test_edge_loss_config_reaches_table4_shape(self):
        from repro.experiments import Scenario, run_scenario

        result = run_scenario(
            Scenario.paper_topology(1, duration=5.0, seed=2, scale=0.15).with_config(
                edge_loss_rate=0.01, max_retransmissions=0
            )
        )
        ratio = result.client_delivery_ratio()
        # Loss shows up as sub-1.0 delivery (the paper's "minimal amount
        # of network packet losses"), but the system keeps working.
        assert 0.9 < ratio < 1.0
        assert result.attacker_delivery_ratio() < 0.01


class TestRequestTrace:
    def test_generate_sorted_and_bounded(self):
        trace = RequestTrace.generate_zipf(
            ["u1", "u2"], num_objects=50, alpha=0.7, duration=10.0,
            mean_interarrival=0.5, seed=1,
        )
        times = [e.time for e in trace]
        assert times == sorted(times)
        assert all(0 <= e.time < 10.0 for e in trace)
        assert set(trace.users()) == {"u1", "u2"}

    def test_generation_deterministic(self):
        a = RequestTrace.generate_zipf(["u"], 20, 0.7, 5.0, 0.5, seed=9)
        b = RequestTrace.generate_zipf(["u"], 20, 0.7, 5.0, 0.5, seed=9)
        assert a.entries == b.entries

    def test_save_load_roundtrip(self, tmp_path):
        trace = RequestTrace.generate_zipf(["u1"], 20, 0.7, 5.0, 0.5, seed=2)
        path = tmp_path / "trace.jsonl"
        written = trace.save(str(path))
        loaded = RequestTrace.load(str(path))
        assert written == len(loaded) == len(trace)
        assert loaded.entries == trace.entries

    def test_for_user_filter(self):
        entries = [
            TraceRecordEntry(1.0, "a", 0),
            TraceRecordEntry(2.0, "b", 1),
            TraceRecordEntry(3.0, "a", 2),
        ]
        trace = RequestTrace(entries)
        assert [e.object_index for e in trace.for_user("a")] == [0, 2]
        assert trace.duration() == 3.0


class TestTraceClient:
    def test_replays_prescribed_objects(self):
        net = build_mini_net()
        from repro.crypto.sim_signature import SimulatedKeyPair
        from repro.workload.catalog import build_catalog

        catalog = build_catalog([net.provider]).accessible_to(3)
        entries = [
            TraceRecordEntry(time=0.5, user_id="alice", object_index=0),
            TraceRecordEntry(time=1.0, user_id="alice", object_index=3),
        ]
        keys = SimulatedKeyPair.generate(net.sim.rng.stream("alice"))
        client = TraceClient(
            net.sim, "alice", net.config, catalog, net.metrics.user("alice"),
            access_level=3, keypair=keys, trace_entries=entries,
        )
        client.credentials["prov-0"] = net.provider.directory.enroll(
            "alice", 3, public_key=keys.public
        )
        net.network.add_node(client, routable=False)
        net.network.connect(client, net.ap, bandwidth_bps=10e6, latency=0.002)
        client.start(at=0.0, until=15.0)
        net.run(until=17.0)

        stats = net.metrics.user("alice")
        expected_chunks = 2 * net.config.chunks_per_object
        assert stats.chunks_requested == expected_chunks
        assert stats.chunks_received == expected_chunks
        assert client.trace_exhausted

    def test_idle_without_trace_entries(self):
        net = build_mini_net()
        from repro.crypto.sim_signature import SimulatedKeyPair
        from repro.workload.catalog import build_catalog

        catalog = build_catalog([net.provider]).accessible_to(3)
        client = TraceClient(
            net.sim, "alice", net.config, catalog, net.metrics.user("alice"),
            access_level=3,
            keypair=SimulatedKeyPair.generate(net.sim.rng.stream("k")),
            trace_entries=[],
        )
        net.network.add_node(client, routable=False)
        net.network.connect(client, net.ap, bandwidth_bps=10e6, latency=0.002)
        client.start(at=0.0, until=5.0)
        net.run(until=6.0)
        assert net.metrics.user("alice").chunks_requested == 0
