"""Unit tests for hierarchical names."""

import pytest

from repro.ndn.name import Name


class TestConstruction:
    def test_from_uri(self):
        n = Name("/a/b/c")
        assert n.components == ("a", "b", "c")
        assert len(n) == 3

    def test_from_components(self):
        assert Name(["a", "b"]) == Name("/a/b")

    def test_root(self):
        assert len(Name("/")) == 0
        assert len(Name()) == 0
        assert Name("/").to_uri() == "/"

    def test_trailing_and_duplicate_slashes_normalized(self):
        assert Name("/a/b/") == Name("/a/b")
        assert Name("a/b") == Name("/a/b")

    def test_from_name_is_identity(self):
        n = Name("/a/b")
        assert Name(n) is n  # fast-path: no reallocation

    def test_component_with_slash_rejected(self):
        with pytest.raises(ValueError):
            Name(["a/b"])

    def test_immutability(self):
        n = Name("/a")
        with pytest.raises(AttributeError):
            n.components = ()


class TestStructure:
    def test_prefix(self):
        n = Name("/a/b/c")
        assert n.prefix(2) == Name("/a/b")
        assert n.prefix(0) == Name("/")

    def test_parent(self):
        assert Name("/a/b").parent == Name("/a")
        with pytest.raises(ValueError):
            _ = Name("/").parent

    def test_append_and_div(self):
        assert Name("/a") / "b" == Name("/a/b")
        assert Name("/a").append("b", "c") == Name("/a/b/c")

    def test_indexing_and_iteration(self):
        n = Name("/a/b/c")
        assert n[0] == "a" and n[2] == "c"
        assert list(n) == ["a", "b", "c"]


class TestMatching:
    def test_prefix_of(self):
        assert Name("/a").is_prefix_of("/a/b/c")
        assert Name("/").is_prefix_of("/anything")
        assert Name("/a/b").is_prefix_of("/a/b")
        assert not Name("/a/b").is_prefix_of("/a")
        assert not Name("/a").is_prefix_of("/ab")  # component, not string, prefix


class TestEqualityHashing:
    def test_equality_with_string(self):
        assert Name("/a/b") == "/a/b"
        assert Name("/a/b") != "/a/c"

    def test_hashable(self):
        d = {Name("/a"): 1}
        assert d[Name("/a")] == 1

    def test_ordering(self):
        assert Name("/a") < Name("/b")
        assert Name("/a") < Name("/a/b")

    def test_repr_roundtrip(self):
        n = Name("/a/b")
        assert eval(repr(n)) == n


class TestWireSize:
    def test_encoded_size(self):
        assert Name("/ab/cd").encoded_size() == 2 * 2 + 4
        assert Name("/").encoded_size() == 0
