"""Tests for simflow (repro.qa.flow): the whole-program analyzer.

Fixture trees that should resolve like project packages live under a
directory *containing a ``repro`` path component* (``tmp/repro/...``)
so :func:`repro.qa.rules.package_relpath` anchors them; bare files in
``tmp_path`` get bare-filename relpaths, which every flow rule treats
as in scope.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.qa.flow import analyze_paths, main
from repro.qa.flow.baseline import new_findings, write_baseline, load_baseline
from repro.qa.flow.cachedb import NullCache, SummaryCache
from repro.qa.flow.extract import extract_module
from repro.qa.flow.model import ModuleSummary
from repro.qa.lint import lint_paths

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def flow(paths, select=None):
    return analyze_paths([str(p) for p in paths], select=select, cache=NullCache())


def codes(report):
    return [f.rule for f in report.findings]


# ---------------------------------------------------------------------------
# SL010: enforcement-path dominance
# ---------------------------------------------------------------------------
class TestSL010:
    UNGUARDED = (
        "class ScratchRouter:\n"
        "    def on_interest(self, interest, face):\n"
        "        data = self.cs.lookup(interest.name)\n"
        "        if data is not None:\n"
        "            self.send(face, data)\n"
    )

    def test_unguarded_send_is_flagged(self, tmp_path):
        router = tmp_path / "scratch_router.py"
        router.write_text(self.UNGUARDED)
        report = flow([router], select={"SL010"})
        assert codes(report) == ["SL010"]
        [finding] = report.findings
        assert finding.line == 5
        assert "ScratchRouter.on_interest" in finding.message
        assert "entry point" in finding.message

    def test_dominating_primitive_discharges(self, tmp_path):
        router = tmp_path / "scratch_router.py"
        router.write_text(
            "class ScratchRouter:\n"
            "    def on_interest(self, interest, face):\n"
            "        data = self.cs.lookup(interest.name)\n"
            "        if data is None:\n"
            "            return\n"
            "        self.bf_lookup(interest.tag)\n"
            "        self.send(face, data)\n"
        )
        report = flow([router], select={"SL010"})
        assert codes(report) == []

    def test_guard_must_have_matching_polarity(self, tmp_path):
        # Mentioning .nack in a branch test does NOT discharge the
        # send reached on the *other* arm — the laundering SL010's
        # Assume nodes exist to catch.
        router = tmp_path / "scratch_router.py"
        router.write_text(
            "class ScratchRouter:\n"
            "    def on_data(self, data, face):\n"
            "        if data.nack is None:\n"
            "            pass\n"
            "        self.send(face, data)\n"
        )
        report = flow([router], select={"SL010"})
        assert codes(report) == ["SL010"]

    def test_nack_clearance_guard_discharges(self, tmp_path):
        router = tmp_path / "scratch_router.py"
        router.write_text(
            "class ScratchRouter:\n"
            "    def on_data(self, data, face):\n"
            "        if data.nack is None:\n"
            "            self.send(face, data)\n"
        )
        report = flow([router], select={"SL010"})
        assert codes(report) == []

    def test_enforcing_helper_discharges_via_summary(self, tmp_path):
        # The call-graph summary: `vet` is enforcing (its exit is
        # dominated by bf_lookup), so a send dominated by a vet() call
        # is discharged interprocedurally.
        router = tmp_path / "scratch_router.py"
        router.write_text(
            "class ScratchRouter:\n"
            "    def vet(self, tag):\n"
            "        found, _ = self.bf_lookup(tag)\n"
            "        return found\n"
            "    def on_interest(self, interest, face):\n"
            "        data = self.cs.lookup(interest.name)\n"
            "        self.vet(interest.tag)\n"
            "        self.send(face, data)\n"
        )
        report = flow([router], select={"SL010"})
        assert codes(report) == []

    def test_obligation_propagates_to_callers(self, tmp_path):
        # The raw send in `_push` is fine when every caller dominates
        # the call; unguarded caller -> finding naming the chain.
        router = tmp_path / "scratch_router.py"
        router.write_text(
            "class ScratchRouter:\n"
            "    def _push(self, face, data):\n"
            "        self.send(face, data)\n"
            "    def on_interest(self, interest, face):\n"
            "        data = self.cs.lookup(interest.name)\n"
            "        self._push(face, data)\n"
        )
        report = flow([router], select={"SL010"})
        assert codes(report) == ["SL010"]
        [finding] = report.findings
        assert "via ScratchRouter.on_interest" in finding.message

    def test_suppression_comment_silences(self, tmp_path):
        router = tmp_path / "scratch_router.py"
        router.write_text(
            self.UNGUARDED.replace(
                "self.send(face, data)",
                "self.send(face, data)  # simflow: disable=SL010",
            )
        )
        report = flow([router], select={"SL010"})
        assert codes(report) == []


# ---------------------------------------------------------------------------
# SL010 against the real routers: unguarding a real enforcement site
# ---------------------------------------------------------------------------
class TestRouterMutations:
    @pytest.fixture()
    def tree(self, tmp_path):
        # Keep the `repro` anchor so relpaths resolve as in the repo.
        dest = tmp_path / "repro"
        shutil.copytree(
            REPO_SRC, dest, ignore=shutil.ignore_patterns("__pycache__")
        )
        return dest

    def _mutate(self, path: Path, old: str, new: str) -> None:
        source = path.read_text()
        assert old in source, f"mutation anchor vanished from {path.name}"
        path.write_text(source.replace(old, new))

    def test_clean_tree_has_no_findings(self, tree):
        report = flow([tree])
        assert codes(report) == []

    def test_unguarding_edge_router_aggregate_validation(self, tree):
        self._mutate(
            tree / "core" / "edge_router.py",
            "            found, lookup_delay = self.bf_lookup(record.tag)\n"
            "            delay += lookup_delay\n"
            "            if found:\n"
            "                self._deliver(data, record, flag=self.current_flag_value(), delay=delay)\n"
            "                continue\n"
            "            valid, verify_delay = self.verify_tag_signature(record.tag)\n"
            "            delay += verify_delay\n"
            "            if valid and not record.tag.is_expired(self.sim.now):\n"
            "                delay += self.bf_insert(record.tag)\n"
            "                self._deliver(data, record, flag=0.0, delay=delay)\n",
            "            self._deliver(data, record, flag=0.0, delay=delay)\n",
        )
        report = flow([tree], select={"SL010"})
        assert codes(report) == ["SL010"]
        [finding] = report.findings
        assert finding.path.endswith("core/edge_router.py")
        assert "_deliver" in finding.message
        assert "on_data" in finding.message

    def test_unguarding_content_router_precheck(self, tree):
        self._mutate(
            tree / "core" / "content_router.py",
            "        reason = content_precheck(tag, data)\n"
            "        if reason is not None:\n"
            "            self.counters.precheck_drops += 1\n"
            "            self._serve_with_nack(data, interest, in_face, reason, delay)\n"
            "            return\n",
            "",
        )
        report = flow([tree], select={"SL010"})
        assert codes(report) == ["SL010"]
        [finding] = report.findings
        assert finding.path.endswith("core/content_router.py")
        assert "serve_content" in finding.message


# ---------------------------------------------------------------------------
# SL011: interprocedural determinism taint
# ---------------------------------------------------------------------------
class TestSL011:
    @pytest.fixture()
    def tree(self, tmp_path):
        root = tmp_path / "repro"
        (root / "experiments").mkdir(parents=True)
        (root / "core").mkdir()
        (root / "experiments" / "helpers.py").write_text(
            "import time\n"
            "\n"
            "def _stamp():\n"
            "    return time.time()\n"
            "\n"
            "def jitter_for(node):\n"
            "    return _stamp() % 1.0\n"
        )
        (root / "core" / "patch.py").write_text(
            "from repro.experiments.helpers import _stamp, jitter_for\n"
            "\n"
            "class Patch:\n"
            "    def on_interest(self, interest):\n"
            "        return jitter_for(interest)\n"
            "\n"
            "def direct(x):\n"
            "    return _stamp()\n"
        )
        return root

    def test_laundered_wall_clock_is_caught(self, tree):
        report = flow([tree], select={"SL011"})
        assert codes(report) == ["SL011", "SL011"]
        messages = sorted(f.message for f in report.findings)
        # 2-level: on_interest -> jitter_for -> _stamp -> time.time
        assert any(
            "Patch.on_interest launders" in m and "jitter_for" in m
            and "time.time" in m
            for m in messages
        )
        # 1-level: direct -> _stamp -> time.time
        assert any(
            "direct launders" in m and "_stamp" in m for m in messages
        )
        for finding in report.findings:
            assert finding.path.endswith("core/patch.py")

    def test_lexical_sl001_misses_the_same_leak(self, tree):
        # The point of SL011: simlint's SL001 sees no wall-clock call
        # in the sim-scope file (the helper lives outside sim scope).
        findings = lint_paths([str(tree)], select={"SL001"})
        assert findings == []

    def test_alias_use_in_sim_scope(self, tmp_path):
        mod = tmp_path / "sneaky.py"
        mod.write_text(
            "import time\n"
            "\n"
            "def tick():\n"
            "    clock = time.time\n"
            "    return clock()\n"
        )
        report = flow([mod], select={"SL011"})
        assert codes(report) == ["SL011"]
        assert "alias" in report.findings[0].message

    def test_sanctioned_rng_module_is_exempt(self, tmp_path):
        root = tmp_path / "repro"
        (root / "sim").mkdir(parents=True)
        (root / "sim" / "rng.py").write_text(
            "import os\n"
            "\n"
            "def seed_material():\n"
            "    return os.urandom(16)\n"
        )
        report = flow([root], select={"SL011"})
        assert codes(report) == []


# ---------------------------------------------------------------------------
# SL012/SL013: worker-boundary safety
# ---------------------------------------------------------------------------
class TestWorkerBoundary:
    def test_lambda_pool_submit(self, tmp_path):
        mod = tmp_path / "fanout.py"
        mod.write_text(
            "def run(pool, items):\n"
            "    return pool.map(lambda x: x + 1, items)\n"
        )
        report = flow([mod], select={"SL012"})
        assert codes(report) == ["SL012"]
        assert "lambda" in report.findings[0].message

    def test_method_pool_submit(self, tmp_path):
        mod = tmp_path / "fanout.py"
        mod.write_text(
            "class Driver:\n"
            "    def work(self, x):\n"
            "        return x\n"
            "    def run(self, pool, items):\n"
            "        return pool.map(self.work, items)\n"
        )
        report = flow([mod], select={"SL012"})
        assert codes(report) == ["SL012"]
        assert "method" in report.findings[0].message

    def test_module_level_function_is_fine(self, tmp_path):
        mod = tmp_path / "fanout.py"
        mod.write_text(
            "def work(x):\n"
            "    return x\n"
            "\n"
            "def run(pool, items):\n"
            "    return pool.map(work, items)\n"
        )
        report = flow([mod], select={"SL012", "SL013"})
        assert codes(report) == []

    def test_global_write_in_worker_reachable_code(self, tmp_path):
        mod = tmp_path / "fanout.py"
        mod.write_text(
            "COUNT = 0\n"
            "\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
            "\n"
            "def work(x):\n"
            "    bump()\n"
            "    return x\n"
            "\n"
            "def run(pool, items):\n"
            "    return pool.map(work, items)\n"
        )
        report = flow([mod], select={"SL013"})
        assert codes(report) == ["SL013"]
        assert "global COUNT" in report.findings[0].message
        # The same global write NOT reachable from a pool submit is
        # none of SL013's business.
        mod.write_text(
            "COUNT = 0\n"
            "\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
        )
        report = flow([mod], select={"SL013"})
        assert codes(report) == []


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------
class TestCache:
    def test_warm_run_skips_parsing_and_is_fast(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        cold = analyze_paths([str(REPO_SRC)], cache=cache)
        assert cold.modules_parsed == cold.modules_total
        assert cold.modules_cached == 0
        warm = analyze_paths([str(REPO_SRC)], cache=cache)
        assert warm.modules_parsed == 0
        assert warm.modules_cached == warm.modules_total
        assert warm.findings == cold.findings
        assert warm.wall_seconds < 0.25 * cold.wall_seconds, (
            f"warm {warm.wall_seconds:.3f}s vs cold {cold.wall_seconds:.3f}s"
        )

    def test_edited_file_reparses(self, tmp_path):
        mod = tmp_path / "thing.py"
        mod.write_text("x = 1\n")
        cache = SummaryCache(tmp_path / "cache")
        analyze_paths([str(mod)], cache=cache)
        mod.write_text("x = 2\n")
        report = analyze_paths([str(mod)], cache=cache)
        assert report.modules_parsed == 1
        assert report.modules_cached == 0


# ---------------------------------------------------------------------------
# Baseline workflow and CLI
# ---------------------------------------------------------------------------
class TestBaselineAndCli:
    def test_baseline_roundtrip(self, tmp_path):
        router = tmp_path / "scratch_router.py"
        router.write_text(TestSL010.UNGUARDED)
        report = flow([router], select={"SL010"})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        baseline = load_baseline(str(baseline_path))
        assert new_findings(report.findings, baseline) == []
        # A second, different finding is new against that baseline.
        router.write_text(
            TestSL010.UNGUARDED
            + "    def on_data(self, data, face):\n"
            "        self.send(face, data)\n"
        )
        fresh = flow([router], select={"SL010"})
        assert len(new_findings(fresh.findings, baseline)) == 1

    def test_cli_baseline_gates_only_new(self, tmp_path, capsys):
        router = tmp_path / "scratch_router.py"
        router.write_text(TestSL010.UNGUARDED)
        baseline_path = tmp_path / "baseline.json"
        assert main(
            [str(router), "--no-cache", "--write-baseline", str(baseline_path)]
        ) == 0
        assert main(
            [str(router), "--no-cache", "--baseline", str(baseline_path)]
        ) == 0
        capsys.readouterr()

    def test_cli_exit_codes_and_sarif(self, tmp_path, capsys):
        router = tmp_path / "scratch_router.py"
        router.write_text(TestSL010.UNGUARDED)
        assert main(["--list-rules"]) == 0
        assert main([str(router), "--select", "SL999"]) == 2
        capsys.readouterr()
        assert main([str(router), "--no-cache", "--format", "sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "simflow"
        assert [r["ruleId"] for r in run["results"]] == ["SL010"]


# ---------------------------------------------------------------------------
# Summary serialisation
# ---------------------------------------------------------------------------
class TestModuleSummary:
    def test_json_roundtrip(self, tmp_path):
        source = (
            "import time\n"
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class Spec:\n"
            "    name: str\n"
            "    payload: bytes\n"
            "\n"
            "class Router:\n"
            "    def on_data(self, data, face):\n"
            "        if data.nack is None:\n"
            "            self.send(face, data)\n"
            "\n"
            "def helper(pool, items):\n"
            "    return pool.imap_unordered(work, items)\n"
            "\n"
            "def work(x):\n"
            "    global STATE\n"
            "    return time.time()\n"
        )
        summary = extract_module(str(tmp_path / "sample.py"), source)
        blob = json.dumps(summary.to_json_dict())
        restored = ModuleSummary.from_json_dict(json.loads(blob))
        assert restored == summary
