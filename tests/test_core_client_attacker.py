"""Behavioural tests for clients and the attacker modes."""

import pytest

from repro.core.attacker import Attacker, AttackerMode
from repro.core.client import Client
from repro.core.access_path import expected_access_path
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.workload.catalog import build_catalog

from tests.conftest import attach_client, build_mini_net


@pytest.fixture
def net():
    return build_mini_net()


def attach_attacker(net, attacker_id, mode, victim=None, catalog=None):
    catalog = catalog or build_catalog([net.provider]).private_only()
    stats = net.metrics.user(attacker_id, is_attacker=True)
    attacker = Attacker(
        net.sim,
        attacker_id,
        net.config,
        catalog,
        stats,
        mode=mode,
        victim=victim,
        provider_key_locators={net.provider.node_id: net.provider.key_locator},
    )
    attacker.expected_access_path = expected_access_path(["ap-0"])
    net.network.add_node(attacker, routable=False)
    net.network.connect(attacker, net.ap, bandwidth_bps=10e6, latency=0.002)
    return attacker


class TestClient:
    def test_registers_then_retrieves(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=5.0)
        net.run(until=7.0)
        stats = net.metrics.user("client-0")
        assert stats.tags_requested >= 1
        assert stats.tags_received >= 1
        assert stats.chunks_received > 0
        assert stats.delivery_ratio() > 0.95

    def test_window_respected(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=5.0)
        max_outstanding = 0

        original = client._send_interest

        def tracking_send(name, tag):
            nonlocal max_outstanding
            original(name, tag)
            max_outstanding = max(max_outstanding, len(client._outstanding))

        client._send_interest = tracking_send
        net.run(until=7.0)
        assert 0 < max_outstanding <= net.config.window_size

    def test_reregisters_on_expiry(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=25.0)
        net.run(until=27.0)
        stats = net.metrics.user("client-0")
        # 25 s of activity at 10 s tag expiry: at least 2 registrations.
        assert stats.tags_requested >= 2

    def test_latency_samples_recorded(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=3.0)
        net.run(until=5.0)
        stats = net.metrics.user("client-0")
        assert len(stats.latency_samples) == stats.chunks_received
        assert all(latency > 0 for _, latency in stats.latency_samples)

    def test_unwraps_master_key(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=2.0)
        net.run(until=4.0)
        assert client.master_keys.get("prov-0") == net.provider.master_key

    def test_stops_issuing_after_end_time(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=2.0)
        net.run(until=10.0)
        requested_at_end = net.metrics.user("client-0").chunks_requested
        net.sim.schedule(0.0, client._pump)
        net.run(until=15.0)
        assert net.metrics.user("client-0").chunks_requested == requested_at_end

    def test_empty_catalog_rejected(self, net):
        catalog = build_catalog([net.provider]).accessible_to(0)
        stats = net.metrics.user("c", is_attacker=False)
        with pytest.raises(ValueError):
            Client(net.sim, "c", net.config, catalog, stats)

    def test_registration_timeout_retries(self, net):
        client = attach_client(net, "client-0")
        # Sabotage credentials so registrations are refused (silently).
        client.credentials["prov-0"] = b"wrong"
        client.start(at=0.0, until=4.0)
        net.run(until=5.0)
        stats = net.metrics.user("client-0")
        assert stats.tags_requested >= 2  # retried after the 1 s timeout
        assert stats.tags_received == 0
        assert stats.chunks_received == 0


class TestAttackerModes:
    def run_attack(self, net, mode, **kwargs):
        attacker = attach_attacker(net, "attacker-0", mode, **kwargs)
        attacker.start(at=0.0, until=6.0)
        net.run(until=8.0)
        return attacker, net.metrics.user("attacker-0")

    def test_no_tag_attacker_blocked(self, net):
        _, stats = self.run_attack(net, AttackerMode.NO_TAG)
        assert stats.chunks_requested > 0
        assert stats.chunks_received == 0

    def test_fake_tag_attacker_blocked(self, net):
        attacker, stats = self.run_attack(net, AttackerMode.FAKE_TAG)
        assert stats.chunks_requested > 0
        assert stats.chunks_received == 0
        # The fake tag passed the edge pre-check (well-formed), so the
        # signature check upstream is what killed it.
        verifs = (
            net.core1.counters.signature_verifications
            + net.core2.counters.signature_verifications
            + net.provider.counters.signature_verifications
        )
        assert verifs > 0

    def test_fake_tag_fields_defeat_cheap_checks(self, net):
        attacker = attach_attacker(net, "attacker-0", AttackerMode.FAKE_TAG)
        tag = attacker._fake_tag("prov-0")
        from repro.core.precheck import edge_precheck

        assert edge_precheck(tag, "/prov-0/obj-0/chunk-0", now=0.0) is None
        assert tag.access_path == attacker.expected_access_path
        assert not tag.verify_signature(net.provider.keypair.public)

    def test_expired_tag_attacker_blocked(self, net):
        attacker = attach_attacker(net, "attacker-0", AttackerMode.EXPIRED_TAG)
        net.provider.directory.enroll("attacker-0", 3)
        stale = net.provider.issue_tag_direct(
            "attacker-0", expected_access_path(["ap-0"])
        )
        attacker.stale_tags["prov-0"] = stale
        attacker.start(at=net.config.tag_expiry + 1.0, until=net.config.tag_expiry + 6.0)
        net.run(until=net.config.tag_expiry + 8.0)
        stats = net.metrics.user("attacker-0")
        assert stats.chunks_requested > 0
        assert stats.chunks_received == 0
        assert net.edge.counters.precheck_drops > 0  # expiry caught at edge

    def test_expired_attacker_without_stale_tag_degrades_to_no_tag(self, net):
        _, stats = self.run_attack(net, AttackerMode.EXPIRED_TAG)
        assert stats.chunks_received == 0

    def test_low_access_level_attacker_blocked(self, net):
        attacker = attach_attacker(net, "attacker-0", AttackerMode.LOW_ACCESS_LEVEL)
        attacker.credentials["prov-0"] = net.provider.directory.enroll("attacker-0", 0)
        attacker.start(at=0.0, until=6.0)
        net.run(until=8.0)
        stats = net.metrics.user("attacker-0")
        assert stats.tags_received >= 1  # registration succeeds (level 0)
        assert stats.chunks_received == 0  # but every request under-privileged

    def test_shared_tag_attacker_blocked_by_access_path(self, net):
        victim = attach_client(net, "client-0")
        victim.start(at=0.0, until=6.0)
        # Attacker at a *different* access point: wire a second AP.
        from repro.ndn.node import AccessPoint

        ap2 = AccessPoint(net.sim, "ap-1")
        net.network.add_node(ap2, routable=False)
        net.network.connect(ap2, net.edge, bandwidth_bps=10e6, latency=0.002)
        ap2.set_uplink(ap2.face_toward(net.edge))

        catalog = build_catalog([net.provider]).private_only()
        stats = net.metrics.user("attacker-0", is_attacker=True)
        attacker = Attacker(
            net.sim,
            "attacker-0",
            net.config,
            catalog,
            stats,
            mode=AttackerMode.SHARED_TAG,
            victim=victim,
        )
        net.network.add_node(attacker, routable=False)
        net.network.connect(attacker, ap2, bandwidth_bps=10e6, latency=0.002)
        attacker.start(at=1.0, until=6.0)
        net.run(until=8.0)
        assert stats.chunks_requested > 0
        assert stats.chunks_received == 0
        assert net.edge.counters.access_path_drops > 0

    def test_shared_tag_succeeds_when_access_path_disabled(self):
        net = build_mini_net()
        net.config.enable_access_path = False
        victim = attach_client(net, "client-0")
        victim.start(at=0.0, until=6.0)
        attacker = attach_attacker(
            net, "attacker-0", AttackerMode.SHARED_TAG, victim=victim
        )
        attacker.start(at=1.0, until=6.0)
        net.run(until=8.0)
        stats = net.metrics.user("attacker-0")
        # Without the location binding the shared tag works — exactly the
        # gap the paper's access-path feature exists to close.
        assert stats.chunks_received > 0

    def test_shared_tag_requires_victim(self, net):
        stats = net.metrics.user("a", is_attacker=True)
        catalog = build_catalog([net.provider]).private_only()
        with pytest.raises(ValueError):
            Attacker(
                net.sim, "a", net.config, catalog, stats, mode=AttackerMode.SHARED_TAG
            )

    def test_attacker_window_throttled_by_request_expiry(self, net):
        attacker, stats = self.run_attack(net, AttackerMode.NO_TAG)
        # Silently dropped requests stall the window until the 1 s expiry:
        # rate is bounded by window/request_lifetime (plus slack for the
        # start burst) — the paper's request-based DoS prevention.
        duration = 6.0
        bound = net.config.window_size * (duration / net.config.request_lifetime + 1)
        assert stats.chunks_requested <= bound
        assert stats.timeouts > 0


class TestKeyIsolation:
    def test_attacker_cannot_unwrap_client_master_key(self, net):
        client = attach_client(net, "client-0")
        client.start(at=0.0, until=2.0)
        net.run(until=4.0)
        blob_holder = SimulatedKeyPair.generate(net.sim.rng.stream("mallory"))
        from repro.crypto.keywrap import KeyWrapError, wrap_key, unwrap_key

        blob = wrap_key(client.keypair.public, net.provider.master_key)
        with pytest.raises(KeyWrapError):
            unwrap_key(blob_holder, blob)
