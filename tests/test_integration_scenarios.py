"""Integration tests: full scenario runs through the experiment harness.

These exercise the complete stack — topology plan, providers, TACTIC
routers, access points, the client/attacker population, metrics — at a
small scale (documented per test) so the suite stays fast while still
reproducing the paper's qualitative outcomes.
"""

import pytest

from repro.core.attacker import AttackerMode
from repro.experiments import Scenario, run_scenario


@pytest.fixture(scope="module")
def tactic_result():
    """One shared TACTIC run: Topology 1 at 25%, 8 virtual seconds."""
    scenario = Scenario.paper_topology(1, duration=8.0, seed=3, scale=0.25)
    return run_scenario(scenario)


class TestTacticEndToEnd:
    def test_clients_deliver_near_one(self, tactic_result):
        assert tactic_result.client_delivery_ratio() > 0.98

    def test_attackers_near_zero(self, tactic_result):
        assert tactic_result.attacker_delivery_ratio() < 0.01

    def test_clients_actually_requested_a_lot(self, tactic_result):
        assert tactic_result.metrics.total_requested(False) > 1000

    def test_attackers_throttled(self, tactic_result):
        # Attacker request volume is orders of magnitude below clients'
        # (windows stall on silent drops) — the Table IV shape.
        clients = tactic_result.metrics.total_requested(False)
        attackers = tactic_result.metrics.total_requested(True)
        assert attackers * 20 < clients

    def test_edge_dominates_core_computation(self, tactic_result):
        edge = tactic_result.operation_counts(edge=True)
        core = tactic_result.operation_counts(edge=False)
        assert edge.bf_lookups > 10 * core.bf_lookups  # Fig. 7's story

    def test_lookups_dwarf_verifications_at_edge(self, tactic_result):
        edge = tactic_result.operation_counts(edge=True)
        assert edge.bf_lookups > 100 * max(1, edge.signature_verifications)

    def test_latency_series_nonempty_and_positive(self, tactic_result):
        series = tactic_result.latency_series()
        assert len(series) >= 5
        assert all(latency > 0 for _, latency in series)

    def test_tag_rates_positive(self, tactic_result):
        q, r = tactic_result.tag_rates()
        assert q > 0 and r > 0
        assert r <= q  # cannot receive more tags than requested

    def test_determinism(self):
        a = run_scenario(Scenario.paper_topology(1, duration=4.0, seed=5, scale=0.15))
        b = run_scenario(Scenario.paper_topology(1, duration=4.0, seed=5, scale=0.15))
        assert a.delivery_table_row() == b.delivery_table_row()
        assert a.sim.events_executed == b.sim.events_executed

    def test_seed_changes_outcome(self):
        a = run_scenario(Scenario.paper_topology(1, duration=4.0, seed=5, scale=0.15))
        b = run_scenario(Scenario.paper_topology(1, duration=4.0, seed=6, scale=0.15))
        assert a.sim.events_executed != b.sim.events_executed


class TestTagExpirySweep:
    def test_longer_expiry_fewer_registrations(self):
        short = run_scenario(
            Scenario.paper_topology(1, duration=12.0, seed=2, scale=0.2).with_config(
                tag_expiry=3.0
            )
        )
        long = run_scenario(
            Scenario.paper_topology(1, duration=12.0, seed=2, scale=0.2).with_config(
                tag_expiry=30.0
            )
        )
        q_short, _ = short.tag_rates()
        q_long, _ = long.tag_rates()
        assert q_short > 1.5 * q_long  # Fig. 6's inset trend


class TestBaselines:
    def test_client_side_leaks_bandwidth_to_attackers(self):
        result = run_scenario(
            Scenario.paper_topology(
                1, duration=6.0, seed=2, scale=0.2, scheme="client_side"
            )
        )
        # Everyone gets (encrypted) content: the bandwidth-waste story.
        assert result.attacker_delivery_ratio() > 0.9
        assert result.client_delivery_ratio() > 0.9

    def test_provider_auth_hammers_origin(self):
        tactic = run_scenario(
            Scenario.paper_topology(1, duration=6.0, seed=2, scale=0.2)
        )
        always_online = run_scenario(
            Scenario.paper_topology(
                1, duration=6.0, seed=2, scale=0.2, scheme="provider_auth"
            )
        )
        tactic_origin = sum(p.stats.chunks_served for p in tactic.providers)
        baseline_origin = sum(p.stats.chunks_served for p in always_online.providers)
        # With caching disabled every request reaches the origin.
        assert baseline_origin > 2 * tactic_origin

    def test_no_bloom_pays_per_request_crypto(self):
        tactic = run_scenario(
            Scenario.paper_topology(1, duration=6.0, seed=2, scale=0.2)
        )
        ablation = run_scenario(
            Scenario.paper_topology(1, duration=6.0, seed=2, scale=0.2, scheme="no_bloom")
        )

        def router_verifs(result):
            return (
                result.operation_counts(edge=True).signature_verifications
                + result.operation_counts(edge=False).signature_verifications
            )

        # Same security outcome...
        assert ablation.attacker_delivery_ratio() < 0.01
        # ...but orders of magnitude more router crypto.
        assert router_verifs(ablation) > 50 * max(1, router_verifs(tactic))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            Scenario.paper_topology(1, scheme="nonsense")


class TestAttackerMixVariants:
    def test_shared_tag_mode_in_full_scenario(self):
        scenario = Scenario.paper_topology(
            1,
            duration=6.0,
            seed=4,
            scale=0.2,
            attacker_modes=(AttackerMode.SHARED_TAG,),
        )
        result = run_scenario(scenario)
        # Access path on (default): shared tags from other locations fail.
        assert result.attacker_delivery_ratio() == 0.0

    def test_shared_tag_succeeds_without_access_path(self):
        scenario = Scenario.paper_topology(
            1,
            duration=6.0,
            seed=4,
            scale=0.2,
            attacker_modes=(AttackerMode.SHARED_TAG,),
        ).with_config(enable_access_path=False)
        result = run_scenario(scenario)
        assert result.attacker_delivery_ratio() > 0.5

    def test_public_content_needs_no_tag(self):
        scenario = Scenario.paper_topology(
            1,
            duration=6.0,
            seed=4,
            scale=0.2,
            attacker_modes=(AttackerMode.NO_TAG,),
        ).with_config(public_fraction=1.0)
        result = run_scenario(scenario)
        # With everything public, even tag-less "attackers" retrieve.
        assert result.attacker_delivery_ratio() > 0.9
