"""Behavioural tests for Protocols 3 and 4 (content/intermediate routers)."""

import pytest

from repro.core.access_path import ZERO_PATH
from repro.core.tag import Tag
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Data, Interest, NackReason

from tests.conftest import build_mini_net


class Probe(Node):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.datas = []
        self.nacks = []

    def on_data(self, data, in_face):
        self.datas.append(data)

    def on_nack(self, nack, in_face):
        self.nacks.append(nack)


@pytest.fixture
def net():
    return build_mini_net()


@pytest.fixture
def downstream(net):
    """A probe attached directly to core1 (bypassing the edge), so tests
    can exercise core-router logic with hand-set F values."""
    probe = Probe(net.sim, "downstream")
    net.network.add_node(probe, routable=False)
    net.network.connect(probe, net.core1, bandwidth_bps=500e6, latency=0.001)
    return probe


def valid_tag(net, user="u1", level=3):
    net.provider.directory.enroll(user, level)
    return net.provider.issue_tag_direct(user, ZERO_PATH)


def forged_tag(tag):
    return Tag(
        provider_key_locator=tag.provider_key_locator,
        client_key_locator=tag.client_key_locator,
        access_level=tag.access_level,
        access_path=tag.access_path,
        expiry=tag.expiry,
        signature=b"bogus" * 6 + b"xx",
    )


def cache_chunk(net, router, name="/prov-0/obj-0/chunk-0", level=1):
    data = Data(
        name=Name(name),
        payload=b"z" * 64,
        access_level=level,
        provider_key_locator=net.provider.key_locator,
    )
    router.cs.insert(data)
    return Name(name)


class TestContentRouterProtocol3:
    def test_f_zero_unknown_valid_tag_verifies_and_inserts(self, net, downstream):
        tag = valid_tag(net)
        name = cache_chunk(net, net.core1)
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=0.0)
        )
        net.run()
        assert len(downstream.datas) == 1
        assert downstream.datas[0].nack is None
        assert downstream.datas[0].flag_f == 0.0
        assert net.core1.counters.signature_verifications == 1
        assert net.core1.bloom.contains(tag.cache_key())

    def test_f_zero_known_tag_skips_verification(self, net, downstream):
        tag = valid_tag(net)
        name = cache_chunk(net, net.core1)
        net.core1.bloom.insert(tag.cache_key())
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=0.0)
        )
        net.run()
        assert net.core1.counters.signature_verifications == 0
        assert net.core1.counters.bf_lookups == 1
        assert downstream.datas[0].flag_f == 0.0

    def test_f_zero_invalid_tag_gets_nack_with_content(self, net, downstream):
        tag = forged_tag(valid_tag(net))
        name = cache_chunk(net, net.core1)
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=0.0)
        )
        net.run()
        assert len(downstream.datas) == 1  # content still flows downstream
        assert downstream.datas[0].nack is not None
        assert downstream.datas[0].nack.reason is NackReason.INVALID_SIGNATURE
        assert not net.core1.bloom.contains(tag.cache_key())

    def test_nonzero_f_trusts_edge_with_high_probability(self, net, downstream):
        tag = forged_tag(valid_tag(net))  # even a forged tag rides trust
        name = cache_chunk(net, net.core1)
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=1e-9)
        )
        net.run()
        # With F = 1e-9 the router essentially never re-validates.
        assert net.core1.counters.signature_verifications == 0
        assert downstream.datas[0].nack is None
        assert downstream.datas[0].flag_f == pytest.approx(1e-9)  # F echoed

    def test_nonzero_f_revalidates_with_probability_f(self, net, downstream):
        tag = forged_tag(valid_tag(net))
        name = cache_chunk(net, net.core1)
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=1.0)
        )
        net.run()
        # F = 1.0 forces re-validation; the forgery is caught.
        assert net.core1.counters.signature_verifications == 1
        assert downstream.datas[0].nack is not None

    def test_public_content_served_without_any_tag_ops(self, net, downstream):
        name = cache_chunk(net, net.core1, level=None)
        net.sim.schedule(0.0, downstream.faces[0].send, Interest(name=name))
        net.run()
        assert len(downstream.datas) == 1
        assert downstream.datas[0].nack is None
        assert net.core1.counters.bf_lookups == 0
        assert net.core1.counters.signature_verifications == 0

    def test_private_content_without_tag_nacked(self, net, downstream):
        name = cache_chunk(net, net.core1, level=1)
        net.sim.schedule(0.0, downstream.faces[0].send, Interest(name=name))
        net.run()
        assert downstream.datas[0].nack is not None
        assert downstream.datas[0].nack.reason is NackReason.NO_TAG

    def test_insufficient_access_level_nacked_before_crypto(self, net, downstream):
        tag = valid_tag(net, user="lowly", level=1)
        name = cache_chunk(net, net.core1, level=3)
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=0.0)
        )
        net.run()
        assert downstream.datas[0].nack.reason is NackReason.ACCESS_LEVEL
        assert net.core1.counters.signature_verifications == 0  # pre-check short-circuits
        assert net.core1.counters.precheck_drops == 1

    def test_key_locator_mismatch_nacked(self, net, downstream):
        tag = valid_tag(net)
        name = Name("/prov-0/obj-0/chunk-1")
        data = Data(
            name=name,
            payload=b"z",
            access_level=1,
            provider_key_locator="/someone-else/KEY/pub",
        )
        net.core1.cs.insert(data)
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=0.0)
        )
        net.run()
        assert downstream.datas[0].nack.reason is NackReason.KEY_MISMATCH


class TestIntermediateRouterProtocol4:
    def two_probes(self, net):
        a = Probe(net.sim, "probe-a")
        b = Probe(net.sim, "probe-b")
        for probe in (a, b):
            net.network.add_node(probe, routable=False)
            net.network.connect(probe, net.core1, bandwidth_bps=500e6, latency=0.001)
        return a, b

    def test_aggregated_valid_tag_verified_and_delivered(self, net):
        a, b = self.two_probes(net)
        tag_a, tag_b = valid_tag(net, "ua"), valid_tag(net, "ub")
        name = Name("/prov-0/obj-0/chunk-0")
        # Two interests for the same (uncached) chunk: the second is
        # aggregated at core1; content comes from the provider.
        net.sim.schedule(0.0, a.faces[0].send, Interest(name=name, tag=tag_a, flag_f=0.0))
        net.sim.schedule(0.0, b.faces[0].send, Interest(name=name, tag=tag_b, flag_f=0.0))
        net.run()
        assert len(a.datas) == 1 and len(b.datas) == 1
        assert a.datas[0].nack is None and b.datas[0].nack is None
        # The aggregated tag was signature-verified at core1 and inserted.
        assert net.core1.bloom.contains(tag_b.cache_key()) or net.core1.bloom.contains(
            tag_a.cache_key()
        )

    def test_aggregated_forged_tag_gets_nack_others_unharmed(self, net):
        a, b = self.two_probes(net)
        tag_a = valid_tag(net, "ua")
        tag_b = forged_tag(valid_tag(net, "ub"))
        name = Name("/prov-0/obj-0/chunk-0")
        net.sim.schedule(0.0, a.faces[0].send, Interest(name=name, tag=tag_a, flag_f=0.0))
        net.sim.schedule(0.0, b.faces[0].send, Interest(name=name, tag=tag_b, flag_f=0.0))
        net.run()
        outcomes = {}
        for probe in (a, b):
            assert len(probe.datas) == 1
            outcomes[probe.node_id] = probe.datas[0].nack
        # Exactly one of the two got a NACK (whichever carried the forgery
        # on the non-primary slot; the primary was validated upstream).
        nacks = [n for n in outcomes.values() if n is not None]
        assert len(nacks) == 1

    def test_aggregated_low_level_tag_caught_by_precheck(self, net):
        a, b = self.two_probes(net)
        tag_a = valid_tag(net, "ua", level=3)
        tag_b = valid_tag(net, "lowly", level=0)
        name = Name("/prov-0/obj-0/chunk-0")  # catalog publishes level >= 1
        net.sim.schedule(0.0, a.faces[0].send, Interest(name=name, tag=tag_a, flag_f=0.0))
        net.sim.schedule(0.0, b.faces[0].send, Interest(name=name, tag=tag_b, flag_f=0.0))
        net.run()
        got_nack = [p for p in (a, b) if p.datas and p.datas[0].nack is not None]
        assert len(got_nack) == 1

    def test_content_cached_after_distribution(self, net, downstream):
        tag = valid_tag(net)
        name = Name("/prov-0/obj-0/chunk-0")
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, tag=tag, flag_f=0.0)
        )
        net.run()
        assert name in net.core1.cs
        assert name in net.core2.cs

    def test_registration_response_not_cached(self, net, downstream):
        net.provider.directory.enroll("downstream", 3)
        secret = net.provider.directory._entries["downstream"].secret
        name = Name("/prov-0/register/downstream/1")
        net.sim.schedule(
            0.0, downstream.faces[0].send, Interest(name=name, credentials=secret)
        )
        net.run()
        assert len(downstream.datas) == 1
        assert name not in net.core1.cs
