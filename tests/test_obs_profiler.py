"""Profiler, sampler, and scheduler-observability behaviour."""

from __future__ import annotations

import io

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SimProfiler
from repro.obs.samplers import PeriodicSampler
from repro.sim.engine import Simulator
from tests.conftest import attach_client, build_mini_net


class TestSimProfiler:
    def test_categories_and_rates(self):
        sim = Simulator(seed=1)
        profiler = SimProfiler()
        sim.profiler = profiler

        def tick():
            pass

        class Widget:
            def poke(self):
                pass

        widget = Widget()
        for i in range(10):
            sim.schedule(0.1 * i, tick)
            sim.schedule(0.1 * i + 0.05, widget.poke)
        profiler.start()
        sim.run()
        profiler.stop()

        report = profiler.report()
        assert report["events"] == 20
        assert report["events_per_second"] > 0
        assert report["heap_high_water"] >= 1
        categories = {row["category"]: row for row in report["categories"]}
        qual = tick.__qualname__
        assert categories[qual]["calls"] == 10
        assert categories["TestSimProfiler.test_categories_and_rates.<locals>.Widget.poke"]["calls"] == 10
        assert sum(row["share"] for row in report["categories"]) == pytest.approx(1.0)

    def test_profiled_run_executes_identically(self):
        def trail(sim):
            order = []
            sim.schedule(2.0, order.append, "b")
            sim.schedule(1.0, order.append, "a")
            event = sim.schedule(1.5, order.append, "x")
            sim.schedule(0.5, event.cancel)
            return order

        plain = Simulator(seed=3)
        expected = trail(plain)
        plain.run()

        profiled = Simulator(seed=3)
        profiled.profiler = SimProfiler()
        got = trail(profiled)
        profiled.run()
        assert got == expected == ["a", "b"]
        assert profiled.events_executed == plain.events_executed
        assert profiled.now == plain.now

    def test_render_is_textual(self):
        profiler = SimProfiler()
        profiler.start()
        profiler.record(len, 0.001)
        profiler.stop()
        text = profiler.render()
        assert "events/sec" in text
        assert "len" in text

    def test_heartbeat_writes_pulses(self):
        stream = io.StringIO()
        fake_time = [0.0]
        profiler = SimProfiler(
            heartbeat=1.0, stream=stream, clock=lambda: fake_time[0]
        )
        profiler.start()
        for _ in range(5):
            fake_time[0] += 0.6
            profiler.record(len, 0.0)
        profiler.stop()
        pulses = stream.getvalue().strip().splitlines()
        assert len(pulses) == 2  # beats at t>=1.0 and t>=2.0 within 3.0s
        assert "ev/s" in pulses[0]

    def test_max_rss_reported_on_posix(self):
        profiler = SimProfiler()
        rss = profiler.max_rss_bytes()
        assert rss is None or rss > 1 << 20


class TestPeriodicSampler:
    def test_series_and_registry_gauges(self):
        sim = Simulator(seed=2)
        registry = MetricsRegistry()
        sampler = PeriodicSampler(sim, interval=1.0, until=5.0, registry=registry)
        state = {"v": 0.0}
        sampler.add_probe("queue_depth", lambda: state["v"], node="edge-0")

        def bump():
            state["v"] += 1.0
            sim.schedule(1.0, bump)

        sim.schedule(0.5, bump)
        sampler.start()
        sim.run(until=5.0)

        series = sampler.series_dict()
        assert series[0]["name"] == "queue_depth"
        assert series[0]["labels"] == {"node": "edge-0"}
        times = [t for t, _ in series[0]["samples"]]
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        values = [v for _, v in series[0]["samples"]]
        assert values == [1.0, 2.0, 3.0, 4.0, 5.0]
        # The registry gauge reads the live value at snapshot time.
        snap = registry.snapshot()
        assert snap["queue_depth"]["samples"][0]["value"] == state["v"]

    def test_horizon_bounds_ticking(self):
        sim = Simulator(seed=2)
        sampler = PeriodicSampler(sim, interval=1.0, until=3.0)
        sampler.add_probe("pending", sim.pending)
        sampler.start()
        sim.run(until=10.0)
        assert sampler.ticks == 3
        assert sim.pending() == 0  # no stray tick left queued

    def test_standard_probes_cover_tables_and_links(self):
        net = build_mini_net()
        sampler = PeriodicSampler(net.sim, interval=1.0, until=4.0)
        sampler.install_standard_probes(net.network)
        names = {probe.name for probe in sampler.probes}
        assert {
            "sim_pending_events",
            "pit_entries",
            "cs_entries",
            "cs_hit_ratio",
            "bf_fill_ratio",
            "bf_current_fpp",
            "link_queue_seconds",
        } <= names
        client = attach_client(net, "alice")
        client.start(at=0.0, until=3.0)
        sampler.start()
        net.sim.run(until=6.0)
        assert sampler.ticks == 4
        pit_series = [
            series for series in sampler.series_dict()
            if series["name"] == "pit_entries"
        ]
        assert pit_series and all(len(s["samples"]) == 4 for s in pit_series)

    def test_flush_captures_partial_tail_interval(self):
        sim = Simulator(seed=2)
        sampler = PeriodicSampler(sim, interval=1.0)
        state = {"v": 0.0}
        sampler.add_probe("depth", lambda: state["v"])
        sampler.start()
        sim.run(until=2.0)
        state["v"] = 7.0
        sim.run(until=2.6)  # past the last whole-interval tick
        assert sampler.flush() == 1
        samples = sampler.series_dict()[0]["samples"]
        assert samples[-1] == [2.6, 7.0]
        assert sampler.ticks == 3

    def test_flush_idempotent_per_instant(self):
        sim = Simulator(seed=2)
        sampler = PeriodicSampler(sim, interval=1.0)
        sampler.add_probe("pending", sim.pending)
        sampler.start()
        sim.run(until=1.5)
        assert sampler.flush() == 1
        assert sampler.flush() == 0  # same instant: no duplicate sample
        samples = sampler.series_dict()[0]["samples"]
        assert [t for t, _ in samples] == [1.0, 1.5]

    def test_flush_noop_on_tick_boundary(self):
        sim = Simulator(seed=2)
        sampler = PeriodicSampler(sim, interval=1.0)
        sampler.add_probe("pending", sim.pending)
        sampler.start()
        sim.run(until=3.0)
        # The tick at t=3.0 already sampled this instant.
        assert sampler.flush() == 0
        assert sampler.ticks == 3

    def test_stop_flushes_then_silences(self):
        sim = Simulator(seed=2)
        sampler = PeriodicSampler(sim, interval=1.0)
        sampler.add_probe("pending", sim.pending)
        sampler.start()
        sim.run(until=0.4)  # shorter than one interval: only flush sees it
        sampler.stop()
        samples = sampler.series_dict()[0]["samples"]
        assert [t for t, _ in samples] == [0.4]
        assert sampler.flush() == 0  # stopped: flush is inert
        sim.run(until=5.0)
        assert sampler.ticks == 1  # no further ticks after stop

    def test_sampling_does_not_change_published_values(self):
        def measure(with_sampler):
            net = build_mini_net()
            if with_sampler:
                sampler = PeriodicSampler(net.sim, interval=0.5, until=8.0)
                sampler.install_standard_probes(net.network)
                sampler.start()
            client = attach_client(net, "alice")
            client.start(at=0.0, until=5.0)
            net.sim.run(until=8.0)
            return [latency for _, latency in client.stats.latency_samples]

        assert measure(True) == measure(False)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSampler(Simulator(), interval=0.0)


class TestSchedulerObservability:
    def test_pending_tracks_schedule_execute_cancel(self):
        sim = Simulator(seed=1)
        assert sim.pending() == 0
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        first.cancel()
        assert sim.pending() == 1
        first.cancel()  # double-cancel is a no-op
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_cancel_after_execution_is_noop(self):
        sim = Simulator(seed=1)
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        event.cancel()  # already executed; count must not underflow
        assert sim.pending() == 0

    def test_pending_matches_heap_under_churn(self):
        sim = Simulator(seed=5)
        rng = sim.rng.stream("churn")
        live = []

        def spawn():
            for _ in range(3):
                live.append(sim.schedule(rng.uniform(0.1, 2.0), lambda: None))
            if live and rng.random() < 0.5:
                live.pop(rng.randint(0, len(live) - 1)).cancel()
            if sim.now < 10.0:
                sim.schedule(0.5, spawn)

        sim.schedule(0.0, spawn)
        sim.run(until=5.0)
        expected = sum(
            1 for (_, _, _, event) in sim._heap if not event.cancelled
        )
        assert sim.pending() == expected


class TestTraceSummaryRate:
    def test_rate_conventions(self):
        from repro.experiments.tracelog import TraceSummary, summarize
        from repro.sim.tracing import TraceRecord

        assert TraceSummary().rate() == 0.0
        single = summarize([TraceRecord("cs.hit", 3.0, {"node": "a"})])
        assert single.rate() == 1.0  # minimal 1-second window
        same_time = summarize(
            [TraceRecord("cs.hit", 3.0, {}), TraceRecord("cs.hit", 3.0, {})]
        )
        assert same_time.rate() == 2.0
        spread = summarize(
            [TraceRecord("cs.hit", 0.0, {}), TraceRecord("cs.hit", 4.0, {})]
        )
        assert spread.rate() == 0.5
