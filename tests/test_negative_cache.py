"""Tests for the negative-tag-cache DoS hardening extension."""

import pytest

from repro.core.attacker import Attacker, AttackerMode
from repro.core.config import TacticConfig
from repro.core.core_router import CoreRouter
from repro.core.metrics import MetricsCollector
from repro.core.provider import Provider
from repro.crypto.cost_model import ZERO_COST_MODEL
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.extensions import HardenedEdgeRouter, NegativeTagCache
from repro.ndn.network import Network
from repro.ndn.node import AccessPoint
from repro.sim.engine import Simulator
from repro.workload.catalog import build_catalog


class TestNegativeTagCache:
    def test_remember_and_hit(self):
        cache = NegativeTagCache(capacity=10, ttl=5.0)
        cache.remember(b"bad", now=0.0)
        assert cache.contains(b"bad", now=1.0)
        assert cache.hits == 1

    def test_ttl_expiry(self):
        cache = NegativeTagCache(capacity=10, ttl=5.0)
        cache.remember(b"bad", now=0.0)
        assert not cache.contains(b"bad", now=6.0)
        assert len(cache) == 0

    def test_expiry_cap_shortens_ttl(self):
        cache = NegativeTagCache(capacity=10, ttl=100.0)
        cache.remember(b"bad", now=0.0, expires_cap=2.0)
        assert cache.contains(b"bad", now=1.0)
        assert not cache.contains(b"bad", now=3.0)

    def test_past_cap_is_noop(self):
        cache = NegativeTagCache(capacity=10, ttl=100.0)
        cache.remember(b"bad", now=5.0, expires_cap=4.0)
        assert len(cache) == 0

    def test_lru_bound(self):
        cache = NegativeTagCache(capacity=3, ttl=100.0)
        for i in range(5):
            cache.remember(f"k{i}".encode(), now=0.0)
        assert len(cache) == 3
        assert cache.evictions == 2
        assert not cache.contains(b"k0", now=1.0)
        assert cache.contains(b"k4", now=1.0)

    def test_validation_args(self):
        with pytest.raises(ValueError):
            NegativeTagCache(capacity=0)
        with pytest.raises(ValueError):
            NegativeTagCache(ttl=0.0)


def hardened_net():
    """chain with a hardened edge and one fake-tag flooder."""
    config = TacticConfig(cost_model=ZERO_COST_MODEL, tag_expiry=30.0)
    sim = Simulator(seed=21)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()
    provider = Provider(
        sim, "prov-0", config, cert_store, SimulatedKeyPair.generate(sim.rng.stream("p"))
    )
    provider.publish_catalog([1, 2, 3])
    edge = HardenedEdgeRouter(sim, "edge-0", config, cert_store, metrics)
    core = CoreRouter(sim, "core-0", config, cert_store, metrics)
    ap = AccessPoint(sim, "ap-0")
    for node in (provider, edge, core):
        network.add_node(node)
    network.add_node(ap, routable=False)
    network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
    network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
    network.connect(core, provider, bandwidth_bps=500e6, latency=0.001)
    ap.set_uplink(ap.face_toward(edge))
    network.announce_prefix(provider.prefix, provider)

    from repro.core.access_path import expected_access_path

    attacker = Attacker(
        sim, "flooder", config, build_catalog([provider]).private_only(),
        metrics.user("flooder", is_attacker=True),
        mode=AttackerMode.FAKE_TAG,
        provider_key_locators={"prov-0": provider.key_locator},
    )
    attacker.expected_access_path = expected_access_path(["ap-0"])
    network.add_node(attacker, routable=False)
    network.connect(attacker, ap, bandwidth_bps=10e6, latency=0.002)
    return sim, network, metrics, edge, core, attacker


class TestHardenedEdge:
    def test_repeat_forgeries_dropped_at_edge(self):
        sim, network, metrics, edge, core, attacker = hardened_net()
        attacker.start(at=0.0, until=10.0)
        sim.run(until=12.0)
        # The first forged request per tag travels upstream; repeats die
        # at the edge.
        assert edge.negative_drops > 0
        assert metrics.user("flooder").chunks_received == 0

    def test_upstream_amplification_suppressed(self):
        # Same attack, stock edge vs hardened edge: compare how much
        # attacker traffic reaches the core.
        results = {}
        for hardened in (False, True):
            config = TacticConfig(cost_model=ZERO_COST_MODEL, tag_expiry=30.0)
            sim = Simulator(seed=21)
            network = Network(sim)
            cert_store = CertificateStore()
            metrics = MetricsCollector()
            provider = Provider(
                sim, "prov-0", config, cert_store,
                SimulatedKeyPair.generate(sim.rng.stream("p")),
            )
            provider.publish_catalog([1, 2, 3])
            if hardened:
                edge = HardenedEdgeRouter(sim, "edge-0", config, cert_store, metrics)
            else:
                from repro.core.edge_router import EdgeRouter

                edge = EdgeRouter(sim, "edge-0", config, cert_store, metrics)
            core = CoreRouter(sim, "core-0", config, cert_store, metrics)
            ap = AccessPoint(sim, "ap-0")
            for node in (provider, edge, core):
                network.add_node(node)
            network.add_node(ap, routable=False)
            network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
            network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
            network.connect(core, provider, bandwidth_bps=500e6, latency=0.001)
            ap.set_uplink(ap.face_toward(edge))
            network.announce_prefix(provider.prefix, provider)
            from repro.core.access_path import expected_access_path

            attacker = Attacker(
                sim, "flooder", config, build_catalog([provider]).private_only(),
                metrics.user("flooder", is_attacker=True),
                mode=AttackerMode.FAKE_TAG,
                provider_key_locators={"prov-0": provider.key_locator},
            )
            attacker.expected_access_path = expected_access_path(["ap-0"])
            network.add_node(attacker, routable=False)
            network.connect(attacker, ap, bandwidth_bps=10e6, latency=0.002)
            attacker.start(at=0.0, until=10.0)
            sim.run(until=12.0)
            results[hardened] = core.interests_received
        assert results[True] * 3 < results[False]

    def test_nacked_tag_key_learned_from_data(self):
        sim, network, metrics, edge, core, attacker = hardened_net()
        attacker.start(at=0.0, until=5.0)
        sim.run(until=7.0)
        fake = attacker._fake_tags.get("prov-0")
        assert fake is not None
        assert edge.negative_cache.contains(fake.cache_key(), sim.now) or (
            edge.negative_cache.insertions > 0
        )

    def test_legit_clients_unaffected(self):
        sim, network, metrics, edge, core, attacker = hardened_net()
        from tests.conftest import MiniNet  # reuse helper signatures

        # Attach a legitimate client alongside the flooder.
        from repro.core.client import Client

        keys = SimulatedKeyPair.generate(sim.rng.stream("alice"))
        provider = network.node("prov-0")
        client = Client(
            sim, "alice", edge.config,
            build_catalog([provider]).accessible_to(3),
            metrics.user("alice"), access_level=3, keypair=keys,
        )
        client.credentials["prov-0"] = provider.directory.enroll(
            "alice", 3, public_key=keys.public
        )
        network.add_node(client, routable=False)
        network.connect(client, network.node("ap-0"), bandwidth_bps=10e6, latency=0.002)
        client.start(at=0.0, until=8.0)
        attacker.start(at=0.0, until=8.0)
        sim.run(until=10.0)
        assert metrics.user("alice").delivery_ratio() > 0.95
