"""Tests for content manifests and their end-to-end integrity story."""

import random

import pytest

from repro.core.config import TacticConfig
from repro.crypto.cost_model import ZERO_COST_MODEL
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn.manifest import MANIFEST_COMPONENT, Manifest, is_manifest_name
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Interest

from tests.conftest import build_mini_net


@pytest.fixture(scope="module")
def keypair():
    return SimulatedKeyPair.generate(random.Random(31337))


class TestManifestStructure:
    def test_build_and_verify_chunks(self):
        payloads = [f"chunk-{i}".encode() for i in range(10)]
        manifest = Manifest.build("/prov/obj-0", payloads)
        assert manifest.num_chunks == 10
        for i, payload in enumerate(payloads):
            assert manifest.verify_chunk(i, payload)

    def test_tampered_chunk_detected(self):
        manifest = Manifest.build("/prov/obj-0", [b"a", b"b"])
        assert not manifest.verify_chunk(0, b"A")
        assert not manifest.verify_chunk(1, b"a")  # wrong position too

    def test_out_of_range_index(self):
        manifest = Manifest.build("/p", [b"x"])
        assert not manifest.verify_chunk(-1, b"x")
        assert not manifest.verify_chunk(1, b"x")

    def test_signature_roundtrip(self, keypair):
        manifest = Manifest.build("/p/o", [b"a"]).sign_with(keypair)
        assert manifest.verify_signature(keypair.public)
        assert not Manifest.build("/p/o", [b"a"]).verify_signature(keypair.public)

    def test_signature_covers_digests(self, keypair):
        signed = Manifest.build("/p/o", [b"a", b"b"]).sign_with(keypair)
        forged = Manifest(
            object_prefix=signed.object_prefix,
            chunk_digests=list(reversed(signed.chunk_digests)),
            signature=signed.signature,
        )
        assert not forged.verify_signature(keypair.public)

    def test_root_digest_stable_and_sensitive(self):
        a = Manifest.build("/p", [b"a", b"b"])
        b = Manifest.build("/p", [b"a", b"b"])
        c = Manifest.build("/p", [b"a", b"c"])
        assert a.root_digest() == b.root_digest()
        assert a.root_digest() != c.root_digest()

    def test_name_helpers(self):
        manifest = Manifest.build("/prov/obj-3", [b"x"])
        assert manifest.name == Name(f"/prov/obj-3/{MANIFEST_COMPONENT}")
        assert is_manifest_name(manifest.name)
        assert not is_manifest_name("/prov/obj-3/chunk-0")

    def test_wire_roundtrip(self, keypair):
        manifest = Manifest.build("/p/o", [b"a", b"b", b"c"]).sign_with(keypair)
        decoded = Manifest.decode(manifest.encode())
        assert decoded.object_prefix == manifest.object_prefix
        assert decoded.chunk_digests == manifest.chunk_digests
        assert decoded.verify_signature(keypair.public)

    def test_malformed_wire_rejected(self):
        with pytest.raises(ValueError):
            Manifest.decode(b"xx")
        with pytest.raises(ValueError):
            Manifest.decode(b"\x00\x00\x00\x05WRONG-sig")


class Probe(Node):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, cs_capacity=0)
        self.datas = []

    def on_data(self, data, in_face):
        self.datas.append(data)


class TestManifestEndToEnd:
    def build(self):
        net = build_mini_net(
            TacticConfig(cost_model=ZERO_COST_MODEL, publish_manifests=True,
                         tag_expiry=30.0)
        )
        probe = Probe(net.sim, "probe")
        net.network.add_node(probe, routable=False)
        net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
        net.provider.directory.enroll("probe", 3)
        from repro.core.access_path import expected_access_path

        tag = net.provider.issue_tag_direct("probe", expected_access_path(["ap-0"]))
        return net, probe, tag

    def fetch(self, net, probe, name, tag):
        net.sim.schedule(0.0, probe.faces[0].send, Interest(name=Name(name), tag=tag))
        net.run(until=net.sim.now + 2.0)

    def test_manifest_retrievable_and_verifies_chunks(self):
        net, probe, tag = self.build()
        self.fetch(net, probe, "/prov-0/obj-0/manifest", tag)
        assert len(probe.datas) == 1
        manifest = Manifest.decode(probe.datas[0].payload)
        assert manifest.verify_signature(net.provider.keypair.public)

        # Fetch a chunk (possibly from an intermediate cache) and verify.
        self.fetch(net, probe, "/prov-0/obj-0/chunk-4", tag)
        chunk = probe.datas[1]
        assert manifest.verify_chunk(4, chunk.payload)

    def test_cache_poisoning_detected(self):
        net, probe, tag = self.build()
        self.fetch(net, probe, "/prov-0/obj-0/manifest", tag)
        manifest = Manifest.decode(probe.datas[0].payload)

        # Poison the core router's cache with a bogus chunk.
        from repro.ndn.packets import Data

        net.core1.cs.insert(
            Data(
                name=Name("/prov-0/obj-0/chunk-7"),
                payload=b"\x00" * net.config.chunk_size_bytes,
                access_level=1,
                provider_key_locator=net.provider.key_locator,
            )
        )
        self.fetch(net, probe, "/prov-0/obj-0/chunk-7", tag)
        poisoned = probe.datas[1]
        assert not manifest.verify_chunk(7, poisoned.payload)

    def test_manifest_respects_access_control(self):
        net, probe, tag = self.build()
        # obj-0 is level 1; enroll a level-0 user whose tag cannot read it.
        net.provider.directory.enroll("lowly", 0)
        from repro.core.access_path import expected_access_path

        low_tag = net.provider.issue_tag_direct("lowly", expected_access_path(["ap-0"]))
        self.fetch(net, probe, "/prov-0/obj-0/manifest", low_tag)
        assert probe.datas == [] or all(d.nack is not None for d in probe.datas)

    def test_manifest_cached_like_content(self):
        net, probe, tag = self.build()
        self.fetch(net, probe, "/prov-0/obj-0/manifest", tag)
        assert Name("/prov-0/obj-0/manifest") in net.core1.cs

    def test_unknown_object_manifest_dropped(self):
        net, probe, tag = self.build()
        before = net.provider.unroutable_drops
        self.fetch(net, probe, "/prov-0/obj-999/manifest", tag)
        assert net.provider.unroutable_drops == before + 1

    def test_manifests_disabled_by_default(self):
        net = build_mini_net()
        assert net.config.publish_manifests is False
        probe = Probe(net.sim, "probe")
        net.network.add_node(probe, routable=False)
        net.network.connect(probe, net.ap, bandwidth_bps=10e6, latency=0.002)
        net.sim.schedule(
            0.0, probe.faces[0].send, Interest(name=Name("/prov-0/obj-0/manifest"))
        )
        net.run(until=2.0)
        assert probe.datas == []  # falls through to unknown-chunk drop
