"""Tests for the multi-seed sweep engine."""

import math

import pytest

from repro.experiments.sweeps import (
    Aggregate,
    SweepSpec,
    aggregate,
    render_sweep,
    run_sweep,
    t_critical,
)


class TestAggregate:
    def test_single_sample(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0 and agg.std == 0.0 and agg.ci_halfwidth == 0.0

    def test_known_values(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(1.0)
        assert agg.count == 3
        # t(0.975, dof=2) = 4.303 -> halfwidth = 4.303 / sqrt(3)
        assert agg.ci_halfwidth == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)

    def test_ci_bounds(self):
        agg = aggregate([10.0, 12.0, 14.0, 16.0])
        assert agg.ci_low < agg.mean < agg.ci_high
        assert agg.ci_high - agg.ci_low == pytest.approx(2 * agg.ci_halfwidth)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_identical_samples_zero_spread(self):
        agg = aggregate([7.0] * 5)
        assert agg.std == 0.0 and agg.ci_halfwidth == 0.0

    def test_t_critical_monotone(self):
        assert t_critical(1) > t_critical(2) > t_critical(10) > 1.9


class TestSweepSpec:
    def test_grid_cross_product(self):
        spec = SweepSpec(
            base={}, grid={"a": [1, 2], "b": [10, 20]}, seeds=[1], metrics={}
        )
        points = spec.points()
        assert len(points) == 4
        assert {"a": 1, "b": 20} in points

    def test_empty_grid_single_point(self):
        spec = SweepSpec(base={}, grid={}, seeds=[1], metrics={})
        assert spec.points() == [{}]


class TestRunSweep:
    def test_end_to_end(self):
        spec = SweepSpec(
            base=dict(topology=1, duration=4.0, scale=0.15),
            grid={"tag_expiry": [2.0, 50.0]},
            seeds=[1, 2],
            metrics={
                "q_rate": lambda r: r.tag_rates()[0],
                "delivery": lambda r: r.client_delivery_ratio(),
            },
        )
        points = run_sweep(spec)
        assert len(points) == 2
        for point in points:
            assert len(point.samples["q_rate"]) == 2
            assert point.aggregate("delivery").mean > 0.95
        short = next(p for p in points if p.overrides["tag_expiry"] == 2.0)
        long = next(p for p in points if p.overrides["tag_expiry"] == 50.0)
        # The paper trend holds in the mean across seeds.
        assert short.aggregate("q_rate").mean > long.aggregate("q_rate").mean

    def test_render(self):
        spec = SweepSpec(
            base=dict(topology=1, duration=3.0, scale=0.15),
            grid={},
            seeds=[1],
            metrics={"delivery": lambda r: r.client_delivery_ratio()},
        )
        points = run_sweep(spec)
        text = render_sweep(points, ["delivery"])
        assert "Sweep results" in text and "(base)" in text

    def test_label(self):
        from repro.experiments.sweeps import SweepPoint

        assert SweepPoint(overrides={}).label() == "(base)"
        assert "a=1" in SweepPoint(overrides={"a": 1, "b": 2}).label()


class TestAggregateDataclass:
    def test_frozen(self):
        agg = Aggregate(mean=1.0, std=0.0, count=1, ci_halfwidth=0.0)
        with pytest.raises(Exception):
            agg.mean = 2.0
