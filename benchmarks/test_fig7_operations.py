"""Bench: Fig. 7 — BF lookups (L), insertions (I), verifications (V).

Paper (log scale): at edges, L dominates and V is orders of magnitude
rarer; core routers show drastically lower totals than edges thanks to
aggregation and the F-flag collaboration.  Here: Topologies 1 and 2 at
25% scale, 20 s.
"""

from benchmarks.conftest import publish
from repro.experiments.fig7_operations import render_fig7, reproduce_fig7


def run_fig7():
    return reproduce_fig7(topologies=(1, 2), duration=20.0, seed=1, scale=0.25)


def test_fig7_operations(benchmark):
    rows = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    publish("fig7_operations", render_fig7(rows))

    for row in rows:
        # Edge: the cheap op dominates, the expensive op is rare.
        assert row.edge_lookups > 100 * max(1, row.edge_verifications)
        assert row.edge_lookups > row.edge_inserts
        # Core totals drastically below edge totals.
        core_total = row.core_lookups + row.core_inserts + row.core_verifications
        edge_total = row.edge_lookups + row.edge_inserts + row.edge_verifications
        assert core_total * 10 < edge_total
    # Bigger topology -> more operations overall.
    assert rows[1].edge_lookups > rows[0].edge_lookups
