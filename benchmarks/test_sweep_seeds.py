"""Bench: multi-seed reproduction with confidence intervals.

The paper "averaged the results of each topology over five runs with
different seeds"; this bench applies the same discipline to the Fig. 6
tag-rate sweep (three seeds, CI-reported) and checks the trend is
significant, not a seed artifact: the TE=10 s and TE=100 s confidence
intervals must not overlap.
"""

from benchmarks.conftest import publish
from repro.experiments.sweeps import SweepSpec, render_sweep, run_sweep


def run_seeded_sweep():
    # Duration must cover several short-expiry refresh cycles for the
    # TE contrast to exist (a 10 s run sees exactly one registration
    # per provider under BOTH expiries).
    spec = SweepSpec(
        base=dict(topology=1, duration=25.0, scale=0.2),
        grid={"tag_expiry": [5.0, 100.0]},
        seeds=[1, 2, 3],
        metrics={
            "q_rate": lambda r: r.tag_rates()[0],
            "delivery": lambda r: r.client_delivery_ratio(),
            "mean_latency": lambda r: r.mean_latency() or 0.0,
        },
    )
    return run_sweep(spec)


def test_seeded_tag_rate_sweep(benchmark):
    points = benchmark.pedantic(run_seeded_sweep, rounds=1, iterations=1)
    publish(
        "sweep_seeds",
        render_sweep(points, ["q_rate", "delivery", "mean_latency"]),
    )

    by_te = {p.overrides["tag_expiry"]: p for p in points}
    short = by_te[5.0].aggregate("q_rate")
    long = by_te[100.0].aggregate("q_rate")
    # The Fig. 6 trend is seed-robust: CIs separated, not just means.
    assert short.ci_low > long.ci_high
    # Delivery stays ~1 across every seed and expiry.
    for point in points:
        assert point.aggregate("delivery").mean > 0.99
