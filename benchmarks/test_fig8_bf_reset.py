"""Bench: Fig. 8 — requests absorbed before a Bloom-filter reset.

Paper (Topology 1): raising the max FPP from 1e-4 to 1e-2 on a fixed
filter significantly raises the requests-per-reset budget, while the
tag expiry barely moves it.  Here: 25% scale, 40 s, filter capacity
scaled to 12 (paper 500) so saturation occurs within the run.
"""

from benchmarks.conftest import publish
from repro.experiments.fig8_bf_reset import render_fig8, reproduce_fig8


def run_fig8():
    return reproduce_fig8(
        topology=1,
        tag_expiries=(5.0, 10.0),
        fpps=(1e-4, 1e-2),
        duration=40.0,
        seed=1,
        scale=0.25,
        bf_capacity=12,
    )


def test_fig8_bf_reset(benchmark):
    points = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    publish("fig8_bf_reset", render_fig8(points))

    by_key = {(p.tag_expiry, p.max_fpp): p for p in points}
    for expiry in (5.0, 10.0):
        low = by_key[(expiry, 1e-4)]
        high = by_key[(expiry, 1e-2)]
        # The FPP lever: a laxer threshold absorbs more before resetting.
        assert low.edge_resets >= high.edge_resets
        if low.edge_requests_per_reset and high.edge_requests_per_reset:
            assert high.edge_requests_per_reset > low.edge_requests_per_reset
    # The strict-FPP configurations must actually reset in this window.
    assert by_key[(5.0, 1e-4)].edge_resets > 0
