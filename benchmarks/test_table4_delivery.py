"""Bench: Table IV — delivery ratios, clients vs. attackers.

Paper (2000 s, full topologies): clients 0.9997-0.9999, attackers
0.0-0.0078 with successes attributable only to Bloom-filter false
positives.  Here: Topologies 1 and 2 at 25% scale for 20 s.  Expected
shape: clients ~= 1.0, attackers ~= 0, attacker request volume orders
of magnitude below clients'.
"""

from benchmarks.conftest import publish
from repro.experiments.table4_delivery import (
    PAPER_TABLE4,
    render_table4,
    reproduce_table4,
)


def run_table4():
    return reproduce_table4(topologies=(1, 2), duration=20.0, seed=1, scale=0.25)


def test_table4_delivery(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    lines = [render_table4(rows), "", "Paper reference cells:"]
    for topo, cells in PAPER_TABLE4.items():
        lines.append(
            f"  Topo {topo}: client {cells['client_ratio']}, "
            f"attacker {cells['attacker_ratio']}"
        )
    publish("table4_delivery", "\n".join(lines))

    for row in rows:
        assert row.client_ratio > 0.99
        assert row.attacker_ratio < 0.01
        assert row.attacker_requested * 10 < row.client_requested
