"""SimSan overhead micro-benchmark.

The sanitizer's contract is *zero cost when off*: the engine selects a
separate sanitized run loop only when ``sim.sanitizer`` is set (the
default loop carries no per-event branch), and the table hooks are
single ``x.san is not None`` attribute checks.  This benchmark times
the hot paths in both states and asserts the off state never costs
more than the on state (within timer noise) — i.e. disabling SimSan
really does shed all of its work.  Absolute event rates are published
to ``benchmarks/results/`` for the record; they are not asserted (CI
machines vary), only the off/on ordering is.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import publish
from repro.filters.bloom import BloomFilter
from repro.ndn.pit import Pit, PitRecord
from repro.qa.simsan import SimSan
from repro.sim.engine import Simulator

#: Generous multiplier: "off is no slower than on, modulo timer noise".
NOISE_BOUND = 1.15

REPEATS = 5


def _best_of(fn) -> float:
    """Minimum of several timed runs — the standard noise filter."""
    samples = []
    for _ in range(REPEATS):
        began = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - began)
    return min(samples)


def _engine_workload(sanitized: bool, events: int = 20_000) -> float:
    def run() -> None:
        sim = Simulator(seed=1)
        if sanitized:
            SimSan(mode="collect").attach_engine(sim)
        sink = []
        for i in range(events):
            sim.schedule(i * 1e-4, sink.append, i)
        sim.run()

    return _best_of(run)


def _table_workload(sanitized: bool, ops: int = 5_000) -> float:
    def run() -> None:
        san = SimSan(mode="collect") if sanitized else None
        pit = Pit(entry_lifetime=10.0)
        bf = BloomFilter(capacity=ops * 2)
        if san is not None:
            pit.san = san
            san.attach_bloom(bf)
        for i in range(ops):
            name = f"/bench/{i}"
            pit.insert(
                name,
                PitRecord(tag=None, flag_f=0.0, in_face=None, arrived_at=0.0),
                now=0.0,
            )
            pit.consume(name, now=0.0)
            bf.insert(name.encode())

    return _best_of(run)


def test_simsan_off_is_zero_cost():
    engine_off = _engine_workload(sanitized=False)
    engine_on = _engine_workload(sanitized=True)
    tables_off = _table_workload(sanitized=False)
    tables_on = _table_workload(sanitized=True)

    lines = [
        "SimSan overhead (best-of-%d wall times)" % REPEATS,
        f"  engine loop   off={engine_off * 1e3:8.2f} ms   on={engine_on * 1e3:8.2f} ms"
        f"   on/off={engine_on / engine_off:5.2f}x",
        f"  table hooks   off={tables_off * 1e3:8.2f} ms   on={tables_on * 1e3:8.2f} ms"
        f"   on/off={tables_on / tables_off:5.2f}x",
    ]
    publish("qa_overhead", "\n".join(lines))

    # The off state must shed all sanitizer work: it may never cost
    # more than the sanitized state beyond timer noise.
    assert engine_off <= engine_on * NOISE_BOUND
    assert tables_off <= tables_on * NOISE_BOUND


def _fleet_workload(collect: bool) -> float:
    from repro.exec.engine import ExperimentEngine
    from repro.experiments.fig6_tag_rates import enumerate_fig6

    specs = enumerate_fig6(duration=2.0, scale=0.1)[:1]

    def run() -> None:
        engine = ExperimentEngine(
            jobs=1, use_cache=False, collect_telemetry=collect
        )
        engine.run_specs(specs, figure="bench")

    return _best_of(run)


def test_fleet_telemetry_off_is_zero_cost():
    """Same contract at the engine layer: with the worker telemetry
    round-trip off (the default), ``run_specs`` installs no session,
    merges nothing, and may never cost more than the collecting state
    beyond timer noise."""
    fleet_off = _fleet_workload(collect=False)
    fleet_on = _fleet_workload(collect=True)

    publish(
        "fleet_overhead",
        "Fleet telemetry overhead (best-of-%d wall times)\n" % REPEATS
        + f"  run_specs     off={fleet_off * 1e3:8.2f} ms   "
        + f"on={fleet_on * 1e3:8.2f} ms   on/off={fleet_on / fleet_off:5.2f}x",
    )

    assert fleet_off <= fleet_on * NOISE_BOUND


def _fleetperf_workload(on: bool) -> float:
    from repro.exec.engine import ExperimentEngine
    from repro.experiments.fig6_tag_rates import enumerate_fig6

    specs = enumerate_fig6(duration=2.0, scale=0.1)[:1]

    def run() -> None:
        engine = ExperimentEngine(jobs=1, use_cache=False, fleetperf=on)
        engine.run_specs(specs, figure="bench")

    return _best_of(run)


def test_fleetperf_off_is_zero_cost():
    """The fleet scheduling observatory holds the engine-layer zero-cost
    contract: with ``fleetperf`` off (the default) ``run_specs`` builds
    no collector and every instrumentation site is one ``x is not
    None`` check, so the off state may never cost more than the
    observed state beyond timer noise — and the observed state (a
    handful of clock reads plus one envelope pickle per run) must stay
    within the same noise bound of the off state."""
    fleetperf_off = _fleetperf_workload(on=False)
    fleetperf_on = _fleetperf_workload(on=True)

    publish(
        "fleetperf_overhead",
        "Fleetperf overhead (best-of-%d wall times)\n" % REPEATS
        + f"  run_specs     off={fleetperf_off * 1e3:8.2f} ms   "
        + f"on={fleetperf_on * 1e3:8.2f} ms   "
        + f"on/off={fleetperf_on / fleetperf_off:5.2f}x",
    )

    assert fleetperf_off <= fleetperf_on * NOISE_BOUND
    assert fleetperf_on <= fleetperf_off * NOISE_BOUND


def _audit_workload(mode: str, tmp_path=None) -> float:
    """One scenario run with auditing/flight-recording off or on.

    ``mode`` is ``"off"`` (the default run: ``node.audit`` is ``None``
    and the trace hub has no subscriber, so every hook is a single
    attribute check), ``"audit"``, or ``"flightrec"``.
    """
    from repro.experiments.scenario import Scenario
    from repro.experiments.runner import run_scenario
    from repro.obs.audit import DecisionAudit
    from repro.obs.flightrec import FlightRecorder

    scenario = Scenario.paper_topology(1, duration=2.0, seed=1, scale=0.1)

    def run() -> None:
        if mode == "audit":
            run_scenario(scenario, audit=DecisionAudit())
        elif mode == "flightrec":
            run_scenario(scenario, flightrec=FlightRecorder(tmp_path))
        else:
            run_scenario(scenario)

    return _best_of(run)


def test_audit_off_is_zero_cost(tmp_path):
    """The decision audit's contract mirrors SimSan's: with no audit
    attached the routers pay one ``self.audit is not None`` check per
    enforcement site, so the off state may never cost more than the
    audited state beyond timer noise."""
    audit_off = _audit_workload("off")
    audit_on = _audit_workload("audit")
    rec_on = _audit_workload("flightrec", tmp_path=tmp_path)

    publish(
        "audit_overhead",
        "Decision-audit overhead (best-of-%d wall times)\n" % REPEATS
        + f"  run_scenario  off={audit_off * 1e3:8.2f} ms   "
        + f"audit={audit_on * 1e3:8.2f} ms   "
        + f"audit/off={audit_on / audit_off:5.2f}x\n"
        + f"  flight rec    on={rec_on * 1e3:8.2f} ms   "
        + f"rec/off={rec_on / audit_off:5.2f}x",
    )

    assert audit_off <= audit_on * NOISE_BOUND
    # The recorder arms the whole trace hub (every emission site fires),
    # so the plain run must also undercut it.
    assert audit_off <= rec_on * NOISE_BOUND


def _statescope_workload(on: bool) -> float:
    from repro.exec.engine import ExperimentEngine
    from repro.experiments.fig6_tag_rates import enumerate_fig6

    specs = enumerate_fig6(duration=2.0, scale=0.1)[:1]

    def run() -> None:
        engine = ExperimentEngine(jobs=1, use_cache=False, statescope=on)
        engine.run_specs(specs, figure="bench")

    return _best_of(run)


def test_statescope_off_is_zero_cost():
    """The state-footprint observatory holds the engine-layer zero-cost
    contract: with ``statescope`` off (the default) ``run_scenario``
    builds no scope and schedules no sampling ticks, so the off state
    may never cost more than the observed state beyond timer noise.
    Only that one direction is asserted — sampling pays a deep-sizeof
    walk per tick, so the on state is legitimately slower."""
    scope_off = _statescope_workload(on=False)
    scope_on = _statescope_workload(on=True)

    publish(
        "statescope_overhead",
        "Statescope overhead (best-of-%d wall times)\n" % REPEATS
        + f"  run_specs     off={scope_off * 1e3:8.2f} ms   "
        + f"on={scope_on * 1e3:8.2f} ms   "
        + f"on/off={scope_on / scope_off:5.2f}x",
    )

    assert scope_off <= scope_on * NOISE_BOUND


def test_off_state_run_to_run_stability():
    """The off path's cost is its own noise floor: repeated runs agree
    to well within the margin the zero-cost assertion relies on."""
    samples = [_table_workload(sanitized=False) for _ in range(3)]
    spread = (max(samples) - min(samples)) / statistics.fmean(samples)
    publish(
        "qa_overhead_stability",
        f"off-state spread over 3 runs: {spread * 100:.1f}% of mean",
    )
    assert spread < 0.5  # pathological-only guard; typical spread is a few %


def _perf_workload(observed: bool, events: int = 20_000) -> float:
    from repro.obs.perf import PerfObservatory

    def run() -> None:
        sim = Simulator(seed=1)
        if observed:
            sim.perf = PerfObservatory()
        sink = []
        for i in range(events):
            sim.schedule(i * 1e-4, sink.append, i)
        sim.run()

    return _best_of(run)


def test_perf_observatory_off_is_zero_cost():
    """The perf observatory holds the same contract as SimSan: the
    engine selects its observed loop only when ``sim.perf`` is set (the
    default loop is untouched), and every component hook is one
    ``self.perf is not None`` attribute read.  The off state may never
    cost more than the observed state beyond timer noise, and the
    observed state — which pays four clock reads per event — must stay
    within a generous constant factor of the plain loop."""
    perf_off = _perf_workload(observed=False)
    perf_on = _perf_workload(observed=True)

    publish(
        "perf_overhead",
        "Perf-observatory overhead (best-of-%d wall times)\n" % REPEATS
        + f"  engine loop   off={perf_off * 1e3:8.2f} ms   "
        + f"on={perf_on * 1e3:8.2f} ms   on/off={perf_on / perf_off:5.2f}x",
    )

    assert perf_off <= perf_on * NOISE_BOUND
    # Sanity bound on the observed mode itself: phase accounting is a
    # constant per-event cost, not a blowup.
    assert perf_on <= perf_off * 5.0
