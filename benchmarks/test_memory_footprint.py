"""State-footprint benchmark — the ``BENCH_memory.json`` source.

Runs the canonical fig6-scale scenario (paper topology 1; duration via
``REPRO_BENCH_MEMORY_DURATION``, default 4 virtual seconds at scale
0.2 — a documented fraction of the paper's 2000-second ns-3 runs)
under the :class:`~repro.obs.statescope.StateScope` observatory and
publishes the fleet's state footprint: per-series peaks (PIT entries,
content-store bytes, Bloom-filter fill, …), deep byte totals, the
capacity-model conformance verdicts, and any growth findings.

The document is written to ``benchmarks/results/BENCH_memory.json``
AND the repo root ``BENCH_memory.json``, and — when
``REPRO_HISTORY_DIR`` is set — recorded in the run-history store so
``python -m repro.obs.history diff --figure memory`` gates footprint
regressions in CI.  The human-readable conformance report rides
``results/memory_footprint.txt``.
"""

from __future__ import annotations

import json
import os
import pathlib

from benchmarks.conftest import RESULTS_DIR, publish
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.obs.statescope import (
    STATESCOPE_SERIES,
    StateScope,
    render_statescope_report,
    statescope_metrics,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent

DURATION = float(os.environ.get("REPRO_BENCH_MEMORY_DURATION", "4.0"))
SCALE = 0.2
SEED = 1


def test_memory_footprint():
    scenario = Scenario.paper_topology(1, duration=DURATION, seed=SEED, scale=SCALE)
    result = run_scenario(scenario, statescope=StateScope(interval=1.0))
    record = result.statescope.record()

    # The observatory must have seen the whole run: every registered
    # series sampled, trends fitted, and the conformance engine run.
    assert set(record["series"]) == set(STATESCOPE_SERIES)
    assert all(row["samples"] >= 1 for row in record["series"].values())
    assert record["conformance"]["checks"]
    # The canonical scenario is leak-free and model-conformant; a
    # failure here is a real regression, not benchmark noise.
    assert record["findings"] == []
    assert record["conformance"]["pass"] is True

    metrics = statescope_metrics(record)

    from repro.obs.history import host_metadata

    document = {
        "benchmark": "memory_footprint",
        "host": host_metadata(),
        "scenario": {
            "topology": 1,
            "duration": DURATION,
            "seed": SEED,
            "scale": SCALE,
            "schemes": ["tactic"],
        },
        "series": record["series"],
        "conformance": record["conformance"],
        "findings": record["findings"],
        "deep_bytes_peak": metrics["mem.deep_bytes.peak"],
    }
    blob = json.dumps(document, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_memory.json").write_text(blob)
    (REPO_ROOT / "BENCH_memory.json").write_text(blob)

    history_dir = os.environ.get("REPRO_HISTORY_DIR")
    if history_dir:
        from repro.obs.history import RunHistory

        RunHistory(history_dir).append_benchmark(
            "memory",
            label="paper-topo1",
            metrics={
                "deep_bytes_peak": metrics["mem.deep_bytes.peak"],
                "pit_entries_peak": metrics["state.pit.entries.peak"],
                "cs_bytes_peak": metrics["state.cs.bytes.peak"],
                "model_pass": metrics["model.pass"],
            },
            wall_seconds=result.wall_seconds,
        )

    publish(
        "memory_footprint",
        "\n".join(
            [
                f"state footprint — paper topology 1, "
                f"{DURATION:g}s virtual @ scale {SCALE:g}",
                f"  deep bytes (peak)      {int(metrics['mem.deep_bytes.peak']):>12,}",
                f"  PIT entries (peak)     {int(metrics['state.pit.entries.peak']):>12,}",
                f"  CS bytes (peak)        {int(metrics['state.cs.bytes.peak']):>12,}",
                f"  BF bits set (peak)     {int(metrics['state.bf.bits_set.peak']):>12,}",
                "",
            ]
            + render_statescope_report(record)
        ),
    )
