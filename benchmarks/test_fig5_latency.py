"""Bench: Fig. 5 — retrieval latency vs. Bloom-filter size.

Paper: four topologies, BF sizes 500/2500/10000, 2000 s.  Here:
Topology 1 at 25% scale for 20 s with proportionally scaled BF sizes
(so saturation dynamics match the shortened run).  Expected shape:
larger filters -> fewer resets -> lower (or equal) mean latency, and
clients retrieve throughout.
"""

from benchmarks.conftest import publish
from repro.experiments.fig5_latency import render_fig5, reproduce_fig5

SCALE = 0.25
DURATION = 20.0
#: Paper sizes 500/2500/10000 scaled by ~1/25 (duration x population).
BF_SIZES = (20, 100, 400)


def run_fig5():
    return reproduce_fig5(
        topologies=(1,),
        bf_sizes=BF_SIZES,
        duration=DURATION,
        seed=1,
        scale=SCALE,
        tag_expiry=5.0,
    )


def test_fig5_latency(benchmark):
    points = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    publish("fig5_latency", render_fig5(points))

    by_size = {p.bf_capacity: p for p in points}
    # Every curve has real latency samples across the run.
    for point in points:
        assert point.mean_latency > 0
        assert len(point.series) >= DURATION * 0.5
    # Paper trend: bigger filters reset less...
    assert by_size[BF_SIZES[0]].bf_resets_edge >= by_size[BF_SIZES[-1]].bf_resets_edge
    # ...and do not cost more latency.
    assert (
        by_size[BF_SIZES[-1]].mean_latency
        <= by_size[BF_SIZES[0]].mean_latency * 1.25
    )
