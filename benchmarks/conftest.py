"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (visible with ``pytest -s``, and
always written to ``benchmarks/results/``).  Benchmarks run at a
documented fraction of the paper's scale — pure-Python event rates
cannot match C++ ns-3 over 2000-second runs — and each module's
docstring records the scaling; EXPERIMENTS.md compares shapes against
the paper's numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
