"""Bench: Fig. 6 — tag-request (Q) and tag-receive (R) rates.

Paper: rates grow linearly with topology size (clients); the Topo 1
inset shows TE=100 s cutting the rates to a fraction of TE=10 s.
Here: Topologies 1 and 2 at 25% scale, TE in {10, 100}, 30 s.
"""

from benchmarks.conftest import publish
from repro.experiments.fig6_tag_rates import render_fig6, reproduce_fig6


def run_fig6():
    return reproduce_fig6(
        topologies=(1, 2),
        tag_expiries=(10.0, 100.0),
        duration=30.0,
        seed=1,
        scale=0.25,
    )


def test_fig6_tag_rates(benchmark):
    points = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    publish("fig6_tag_rates", render_fig6(points))

    by_key = {(p.topology, p.tag_expiry): p for p in points}
    # Inset trend: longer expiry -> lower rates, on every topology.
    for topo in (1, 2):
        assert by_key[(topo, 10.0)].request_rate > by_key[(topo, 100.0)].request_rate
    # Main-panel trend: more clients -> higher rates (TE fixed).
    assert by_key[(2, 10.0)].request_rate > by_key[(1, 10.0)].request_rate
    # Receive rate tracks request rate (registrations succeed).
    for point in points:
        assert point.receive_rate <= point.request_rate
        assert point.receive_rate > 0.8 * point.request_rate
