"""Sim-core throughput benchmark — the ``BENCH_simcore.json`` source.

Measures single-core event throughput on the canonical fig6-scale
scenario (paper topology 1; duration via ``REPRO_BENCH_SIMCORE_DURATION``,
default 4 virtual seconds at scale 0.2 — a documented fraction of the
paper's 2000-second ns-3 runs) in three configurations:

1. **off** — the plain engine loop, no instruments: the headline
   ``events_per_sec`` number and the baseline ROADMAP item 1's 10×
   overhaul is judged against.
2. **observed** — the same scenario under the
   :class:`~repro.obs.perf.PerfObservatory` with a
   :class:`~repro.obs.profiler.StackSampler` alongside: the per-phase
   breakdown, handler table, and collapsed stacks
   (``results/flame_simcore.txt``).
3. **replica** — a verbatim copy of the seed hot loop driven over the
   engine's internals, vs ``sim.run()``, to measure what the observatory
   *hooks* cost when disabled (``observatory_off_overhead_pct``).

The document is written to ``benchmarks/results/BENCH_simcore.json``
AND the repo root ``BENCH_simcore.json``, and — when
``REPRO_HISTORY_DIR`` is set — recorded in the run-history store so
``python -m repro.obs.history diff --figure simcore`` gates throughput
regressions in CI.  Two local runs diff with
``python -m repro.obs.perf report``.
"""

from __future__ import annotations

import gc
import heapq
import json
import os
import pathlib
import time

from benchmarks.conftest import RESULTS_DIR, publish
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.obs.perf import PerfObservatory
from repro.obs.profiler import StackSampler
from repro.sim.engine import Simulator

REPO_ROOT = pathlib.Path(__file__).parent.parent

DURATION = float(os.environ.get("REPRO_BENCH_SIMCORE_DURATION", "4.0"))
SCALE = 0.2
SEED = 1

OFF_REPEATS = 3
REPLICA_REPEATS = 5
REPLICA_EVENTS = 30_000


def _scenario() -> Scenario:
    return Scenario.paper_topology(1, duration=DURATION, seed=SEED, scale=SCALE)


def _replica_sim(events: int = REPLICA_EVENTS) -> Simulator:
    sim = Simulator(seed=1)
    sink = []
    for i in range(events):
        sim.schedule(i * 1e-4, sink.append, i)
    return sim


def _drain_replica(sim: Simulator, until=None) -> None:
    """The seed repo's hot loop, verbatim, over the engine internals.

    No ``self.perf`` selection, no observability branches at all — the
    floor the instrumented-but-disabled engine is compared against.
    """
    heap = sim._heap
    while heap and not sim._stopped:
        event = heap[0][3]
        if event.cancelled:
            heapq.heappop(heap)
            continue
        if until is not None and event.time > until:
            break
        heapq.heappop(heap)
        sim._live -= 1
        event.on_cancel = None
        sim._now = event.time
        sim.events_executed += 1
        event.callback(*event.args)


def _timed_drain(drain) -> float:
    """Wall time of ``drain(sim)`` on a fresh workload: construction and
    scheduling stay outside the timed region and the collector is pinned
    during it, so the number is the loop itself."""
    sim = _replica_sim()
    gc.collect()
    gc.disable()
    began = time.perf_counter()
    drain(sim)
    elapsed = time.perf_counter() - began
    gc.enable()
    return elapsed


def _paired_best(drain_a, drain_b, repeats: int):
    """Best-of-N for two drains, measured in alternation so that CPU
    warm-up, frequency scaling, and neighbour load hit both equally
    instead of biasing whichever went first."""
    samples_a = []
    samples_b = []
    for _ in range(repeats):
        samples_a.append(_timed_drain(drain_a))
        samples_b.append(_timed_drain(drain_b))
    return min(samples_a), min(samples_b)


def test_simcore_throughput():
    # -- 1. hook cost when disabled: seed-loop replica vs run() --------
    # Measured first, on a fresh heap: a large live object graph (the
    # scenario runs below retain one) adds several percent of noise to
    # these few-ms loop timings.
    replica_wall, engine_wall = _paired_best(
        _drain_replica, lambda sim: sim.run(), REPLICA_REPEATS
    )
    off_overhead_pct = (engine_wall / replica_wall - 1.0) * 100.0
    # Wall-clock noise makes a tight bound flaky in CI; the honest
    # number is published below, this only guards against a blowup.
    assert engine_wall <= replica_wall * 1.25

    # -- 2. headline: the plain loop, best of several full runs --------
    best_off = None
    for _ in range(OFF_REPEATS):
        result = run_scenario(_scenario())
        if best_off is None or result.wall_seconds < best_off.wall_seconds:
            best_off = result
    events_off = best_off.sim.events_executed
    wall_off = best_off.wall_seconds
    events_per_sec = events_off / wall_off if wall_off > 0 else 0.0

    # -- 3. observed: the same scenario under the observatory ----------
    perf = PerfObservatory(timeline_interval=1000)
    sampler = StackSampler(interval=0.002)
    sampler.start()
    try:
        observed = run_scenario(_scenario(), perf=perf)
    finally:
        sampler.stop()
    report = perf.report()

    # The observatory must not change what the simulation does…
    assert observed.sim.events_executed == events_off
    assert report["events"] == events_off
    # …and its phase self-times must explain the observed loop wall.
    assert report["phase_coverage"] >= 0.9

    from repro.obs.history import host_metadata

    document = {
        "benchmark": "simcore_throughput",
        "host": host_metadata(),
        "scenario": {
            "topology": 1,
            "duration": DURATION,
            "seed": SEED,
            "scale": SCALE,
            "schemes": ["tactic"],
        },
        "events_executed": events_off,
        "wall_seconds_off": round(wall_off, 4),
        "events_per_sec": round(events_per_sec, 1),
        "events_per_sec_observed": round(report["events_per_second"], 1),
        "observatory_overhead_pct": round(
            (report["wall_seconds"] / wall_off - 1.0) * 100.0, 1
        )
        if wall_off > 0
        else 0.0,
        "observatory_off_overhead_pct": round(off_overhead_pct, 2),
        "phase_coverage": round(report["phase_coverage"], 4),
        "phases": {
            name: {
                "calls": row["calls"],
                "self_seconds": round(row["self_seconds"], 4),
                "cum_seconds": round(row["cum_seconds"], 4),
                "self_share": round(row["self_share"], 4),
            }
            for name, row in report["phases"].items()
        },
        "handlers_top": [
            {
                "handler": row["handler"],
                "calls": row["calls"],
                "seconds": round(row["seconds"], 4),
                "share": round(row["share"], 4),
            }
            for row in report["handlers"][:10]
        ],
        "flame_samples": sampler.samples,
    }
    blob = json.dumps(document, indent=2) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_simcore.json").write_text(blob)
    (REPO_ROOT / "BENCH_simcore.json").write_text(blob)
    if sampler.collapsed:
        sampler.write_collapsed(str(RESULTS_DIR / "flame_simcore.txt"))

    # -- 4. CI gate: record the datapoint in the run-history store -----
    history_dir = os.environ.get("REPRO_HISTORY_DIR")
    if history_dir:
        from repro.obs.history import RunHistory

        RunHistory(history_dir).append_benchmark(
            "simcore",
            label="paper-topo1",
            metrics={
                "events_per_sec": round(events_per_sec, 1),
                "events_executed": events_off,
                "phase_coverage": round(report["phase_coverage"], 4),
            },
            wall_seconds=wall_off,
        )

    publish(
        "simcore_throughput",
        "\n".join(
            [
                f"sim-core throughput — paper topology 1, "
                f"{DURATION:g}s virtual @ scale {SCALE:g}",
                f"  events executed        {events_off:>12,}",
                f"  events/sec (off)       {events_per_sec:>12,.0f}",
                f"  events/sec (observed)  "
                f"{report['events_per_second']:>12,.0f}",
                f"  hook cost when off     {off_overhead_pct:>11.2f}%",
                f"  phase coverage         "
                f"{report['phase_coverage']:>11.1%}",
                "",
                perf.render(),
            ]
        ),
    )
