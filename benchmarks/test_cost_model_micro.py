"""Bench: Section 8.B — microbenchmarks of the computation primitives.

The paper calibrated its simulation by timing BF lookup, BF insertion,
and signature verification on a host (Core-i7 2.93 GHz), obtaining
means of 9.14e-7 s, 3.35e-7 s, and 1.12e-5 s respectively.  This bench
times *our* implementations the same way and checks the ordering the
whole design rests on: lookup and insert are orders of magnitude
cheaper than signature verification.
"""

import random

from benchmarks.conftest import publish
from repro.crypto.cost_model import PAPER_COST_MODEL, benchmark_local_costs
from repro.experiments.report import render_table
from repro.filters.bloom import BloomFilter


def test_bf_lookup_micro(benchmark):
    bloom = BloomFilter(capacity=500, max_fpp=1e-4)
    for i in range(400):
        bloom.insert(f"tag-{i}".encode())
    items = [f"probe-{i}".encode() for i in range(1000)]
    index = iter(range(10**9))
    benchmark(lambda: bloom.contains(items[next(index) % 1000]))


def test_bf_insert_micro(benchmark):
    bloom = BloomFilter(capacity=10**9, max_fpp=0.5, size_bits=1 << 20)
    index = iter(range(10**9))
    benchmark(lambda: bloom.insert(str(next(index))))


def test_signature_verify_micro(benchmark):
    from repro.crypto.sim_signature import SimulatedKeyPair

    keypair = SimulatedKeyPair.generate(random.Random(3))
    message = b"m" * 300  # a tag-sized payload
    signature = keypair.sign(message)
    benchmark(lambda: keypair.public.verify(message, signature))


def test_rsa_verify_micro(benchmark):
    from repro.crypto.rsa import generate_keypair

    keypair = generate_keypair(bits=1024, rng=random.Random(4))
    message = b"m" * 300
    signature = keypair.sign(message)
    benchmark(lambda: keypair.public.verify(message, signature))


def test_cost_model_calibration(benchmark):
    """Full calibration pass, compared against the paper's numbers."""
    model = benchmark.pedantic(
        lambda: benchmark_local_costs(iterations=500), rounds=1, iterations=1
    )
    rows = []
    for op in ("bf_lookup", "bf_insert", "signature_verify"):
        rows.append([op, PAPER_COST_MODEL.mean(op), model.mean(op)])
    publish(
        "cost_model_micro",
        render_table(
            ["operation", "paper mean (s)", "measured mean (s)"],
            rows,
            title="Section 8.B — computation-event calibration",
        ),
    )
    # The ordering the design depends on: filters cheap, crypto expensive.
    assert model.mean("bf_lookup") < model.mean("signature_verify")
    assert model.mean("bf_insert") < model.mean("signature_verify")
