"""Bench: the future-work extensions, quantified.

The paper names mobility testing and traitor tracing as future work and
implies explicit revocation is possible but costly.  These benches put
numbers on all three over the mini deployment:

- revocation exposure: tag expiry (stock) vs. control-plane broadcast
  (extension) — seconds of post-revocation access;
- mobility: handover rate vs. registration overhead and delivery;
- traitor tracing: detection latency for a shared tag.
"""

from benchmarks.conftest import publish
from repro.experiments.report import render_table


def run_revocation_exposure():
    """Measured seconds of access after revocation, both mechanisms."""
    import tests.conftest as helpers
    from repro.core.config import TacticConfig
    from repro.core.revocation import ExpiryRevocation
    from repro.crypto.cost_model import ZERO_COST_MODEL

    outcomes = {}
    for mechanism in ("expiry", "explicit"):
        if mechanism == "expiry":
            net = helpers.build_mini_net(
                TacticConfig(cost_model=ZERO_COST_MODEL, tag_expiry=20.0)
            )
            edge, core1, core2 = net.edge, net.core1, net.core2
        else:
            # Rebuild the same topology with revocable routers.
            from tests.test_extensions import build_revocable_net

            (sim, network, config, provider, edge, core, client, metrics) = (
                build_revocable_net()
            )
        if mechanism == "expiry":
            client = helpers.attach_client(net, "alice")
            sim, provider, metrics = net.sim, net.provider, net.metrics

        revoke_at = 5.0
        client.start(at=0.0, until=30.0)
        if mechanism == "expiry":
            policy = ExpiryRevocation(tag_lifetime=20.0)
            sim.schedule(revoke_at, policy.revoke, provider, "alice")
        else:
            from repro.extensions import RevocationAuthority

            authority = RevocationAuthority(sim, routers=[edge, core], propagation_delay=0.01)
            sim.schedule(revoke_at, authority.revoke_user, provider, "alice")
        sim.run(until=35.0)
        stats = metrics.user("alice")
        last = max((t for t, _ in stats.latency_samples), default=revoke_at)
        outcomes[mechanism] = max(0.0, last - revoke_at)
    return outcomes


def run_mobility_overhead():
    """Handover interval vs. registration load and delivery ratio."""
    from tests.test_extensions import build_mobile_net
    from repro.extensions import MobilityManager

    results = {}
    for interval in (None, 10.0, 3.0):
        net, client = build_mobile_net()
        client.start(at=0.0, until=25.0)
        if interval is not None:
            MobilityManager(net.sim, [client], interval=interval, until=24.0)
        net.run(until=27.0)
        stats = net.metrics.user("mobile-0")
        results["static" if interval is None else f"move/{interval:.0f}s"] = {
            "migrations": client.mobility.migrations,
            "tags_requested": stats.tags_requested,
            "delivery": stats.delivery_ratio(),
        }
    return results


def run_traitor_detection():
    """Virtual seconds from first shared-tag use to detection."""
    from tests.test_extensions import build_tracing_net

    sim, metrics, detector, edge, victim, freeloader = build_tracing_net()
    victim.start(at=0.0, until=15.0)
    share_at = 1.0
    freeloader.start(at=share_at, until=15.0)
    sim.run(until=17.0)
    if not detector.alerts:
        return None
    return detector.alerts[0].detected_at - share_at


def test_extension_benchmarks(benchmark):
    def run_all():
        return (
            run_revocation_exposure(),
            run_mobility_overhead(),
            run_traitor_detection(),
        )

    exposure, mobility, detection_latency = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    lines = [
        render_table(
            ["revocation mechanism", "post-revocation access (s)"],
            [[k, round(v, 3)] for k, v in exposure.items()],
            title="Extension: revocation exposure (tag expiry 20 s)",
        ),
        "",
        render_table(
            ["mobility pattern", "migrations", "tag requests", "delivery"],
            [
                [k, r["migrations"], r["tags_requested"], round(r["delivery"], 4)]
                for k, r in mobility.items()
            ],
            title="Extension: handover rate vs registration overhead",
        ),
        "",
        f"Extension: traitor tracing — shared tag detected "
        f"{detection_latency:.3f} s after first misuse",
    ]
    publish("extensions", "\n".join(lines))

    # Explicit revocation is orders faster than waiting out the expiry.
    assert exposure["explicit"] < 1.0
    assert exposure["expiry"] > 5.0
    # More handovers cost more registrations, not delivery.
    assert mobility["move/3s"]["tags_requested"] > mobility["static"]["tags_requested"]
    assert mobility["move/3s"]["delivery"] > 0.8
    # Sharing is caught within seconds.
    assert detection_latency is not None and detection_latency < 5.0
