"""Bench: Bloom-filter hot-path micro-optimizations.

Three operations dominate router CPU time in long runs: ``contains``
(every Interest), ``reset`` (every saturation), and ``fill_ratio``
(every sanitizer/sampler probe).  This module pins their optimized
implementations against straightforward reference versions —
list-allocating double hashing, per-byte zeroing, per-byte popcount —
and publishes the measured ratios.  Equivalence is asserted;
the timing ratios are published, not asserted, because shared CI
runners jitter too much for tight thresholds.
"""

from __future__ import annotations

import hashlib
import time

from benchmarks.conftest import publish
from repro.experiments.report import render_table
from repro.filters.bloom import BloomFilter, _popcount


def _filled_filter():
    bloom = BloomFilter(capacity=500, max_fpp=1e-4)
    for i in range(400):
        bloom.insert(f"tag-{i}".encode())
    return bloom


# --------------------------------------------------------------------------
# Reference (pre-optimization) implementations
# --------------------------------------------------------------------------
def _naive_contains(bloom, item):
    digest = hashlib.blake2b(item, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1
    indices = [(h1 + i * h2) % bloom.size_bits for i in range(bloom.num_hashes)]
    for idx in indices:
        if not (bloom._bits[idx >> 3] >> (idx & 7)) & 1:
            return False
    return True


def _naive_reset_bits(bits):
    for i in range(len(bits)):
        bits[i] = 0


def _naive_fill_ratio(bloom):
    return sum(bin(b).count("1") for b in bloom._bits) / bloom.size_bits


def _time(fn, iterations):
    began = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - began) / iterations


# --------------------------------------------------------------------------
# Equivalence: the optimizations must not change a single answer
# --------------------------------------------------------------------------
def test_optimized_paths_match_reference():
    bloom = _filled_filter()
    probes = [f"tag-{i}".encode() for i in range(0, 800, 7)]
    assert [bloom.contains(p) for p in probes] == [
        _naive_contains(bloom, p) for p in probes
    ]
    assert bloom.fill_ratio() == _naive_fill_ratio(bloom)
    assert _popcount(0) == 0 and _popcount((1 << 977) | 7) == 4

    reference = bytearray(bloom._bits)
    _naive_reset_bits(reference)
    bloom.reset()
    assert bloom._bits == reference
    assert bloom.count == 0 and bloom.fill_ratio() == 0.0


# --------------------------------------------------------------------------
# Micro-benchmarks (pytest-benchmark harness)
# --------------------------------------------------------------------------
def test_contains_micro(benchmark):
    bloom = _filled_filter()
    probes = [f"tag-{i}".encode() for i in range(800)]
    index = iter(range(10**9))
    benchmark(lambda: bloom.contains(probes[next(index) % 800]))


def test_fill_ratio_micro(benchmark):
    bloom = _filled_filter()
    benchmark(bloom.fill_ratio)


def test_reset_micro(benchmark):
    bloom = _filled_filter()
    benchmark(bloom.reset)


def test_publish_speedup_table():
    bloom = _filled_filter()
    probes = [f"tag-{i}".encode() for i in range(800)]
    index = iter(range(10**9))

    rows = []
    for name, fast, slow, iterations in (
        (
            "contains",
            lambda: bloom.contains(probes[next(index) % 800]),
            lambda: _naive_contains(bloom, probes[next(index) % 800]),
            20000,
        ),
        ("fill_ratio", bloom.fill_ratio, lambda: _naive_fill_ratio(bloom), 2000),
        (
            "reset",
            bloom.reset,
            lambda: _naive_reset_bits(bloom._bits),
            2000,
        ),
    ):
        fast_s = _time(fast, iterations)
        slow_s = _time(slow, iterations)
        rows.append(
            [name, f"{slow_s * 1e6:.2f}", f"{fast_s * 1e6:.2f}",
             f"{slow_s / fast_s:.2f}x"]
        )
    publish(
        "bloom_micro",
        render_table(
            ["operation", "reference (us)", "optimized (us)", "speedup"],
            rows,
            title="Bloom filter hot-path micro-optimizations",
        ),
    )
