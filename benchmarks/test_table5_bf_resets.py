"""Bench: Table V — BF resets vs. filter size and FPP.

Paper: growing the filter 10x (500 -> 5000) removes 93-99% of resets at
both FPP settings — size beats FPP as the overhead lever.  Here: 25%
scale, 40 s, capacities 12 -> 120 (the paper's 10x ratio at scaled
absolute size).
"""

from benchmarks.conftest import publish
from repro.experiments.table5_bf_resets import (
    PAPER_TABLE5,
    render_table5,
    reproduce_table5,
)


def run_table5():
    return reproduce_table5(
        topology=1,
        fpps=(1e-4, 1e-2),
        small_capacity=12,
        large_capacity=120,
        duration=40.0,
        seed=1,
        scale=0.25,
        tag_expiry=5.0,
    )


def test_table5_bf_resets(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    lines = [render_table5(rows), "", "Paper reference (500 -> 5000 items, 2000 s):"]
    for (population, fpp), (small, large, improvement) in PAPER_TABLE5.items():
        lines.append(f"  {population} @ {fpp}: {small} -> {large} ({improvement:.2%})")
    publish("table5_bf_resets", "\n".join(lines))

    for row in rows:
        # The 10x filter eliminates the overwhelming majority of resets.
        assert row.edge_resets_small > 0
        assert row.edge_improvement() > 0.80
        assert row.edge_resets_large <= row.edge_resets_small
        assert row.core_resets_large <= row.core_resets_small
