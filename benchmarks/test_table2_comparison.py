"""Bench: Table II — TACTIC vs. the baseline scheme classes.

The paper's Table II is qualitative; this bench quantifies its cells on
a common workload (Topology 1 at 25% scale, 15 s): attacker bandwidth
waste (client-side enforcement), origin load (provider enforcement),
per-request router crypto (network enforcement without filters), and
client latency.
"""

from benchmarks.conftest import publish
from repro.experiments.table2_comparison import render_table2, reproduce_table2


def run_table2():
    return reproduce_table2(topology=1, duration=15.0, seed=1, scale=0.25)


def test_table2_comparison(benchmark):
    measurements = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    publish("table2_comparison", render_table2(measurements))

    by_scheme = {m.scheme: m for m in measurements}
    tactic = by_scheme["tactic"]

    # TACTIC: network-enforced, low overhead, attackers blocked.
    assert tactic.attacker_ratio < 0.01
    assert tactic.client_ratio > 0.99

    # Client-side AC: attackers consume full bandwidth (DDoS exposure).
    assert by_scheme["client_side"].attacker_ratio > 0.9
    assert by_scheme["client_side"].attacker_bytes_wasted > 100 * max(
        1, tactic.attacker_bytes_wasted
    )

    # No-BF ablation: same security, orders of magnitude more crypto.
    assert by_scheme["no_bloom"].attacker_ratio < 0.01
    assert by_scheme["no_bloom"].router_verifications > 100 * max(
        1, tactic.router_verifications
    )

    # Always-online provider: origin load balloons without caching.
    assert by_scheme["provider_auth"].origin_chunks_served > 2 * max(
        1, tactic.origin_chunks_served
    )
