"""Bench: ablations of TACTIC's design choices (DESIGN.md section 5).

Not a paper artifact — these quantify the *reasons* behind the paper's
design decisions on the common Topology-1 workload:

- NACK-carries-content vs drop-only (Protocol 3's "returns the content
  D even if Tu is invalid"),
- Bloom-filter collaboration vs always-verify (also in Table II; here
  isolated as verification count per delivered chunk),
- tag expiry as the revocation/overhead dial.
"""

from benchmarks.conftest import publish
from repro.experiments import Scenario, run_scenario
from repro.experiments.report import render_table

SCALE = 0.2
DURATION = 12.0


def run_ablations():
    rows = {}
    for label, overrides in {
        "baseline": {},
        "drop-only": {"nack_carries_content": False},
        "no-bloom": {"use_bloom_filters": False},
        "te=2s": {"tag_expiry": 2.0},
        "te=50s": {"tag_expiry": 50.0},
    }.items():
        scenario = Scenario.paper_topology(
            1, duration=DURATION, seed=6, scale=SCALE
        ).with_config(**overrides)
        result = run_scenario(scenario)
        edge = result.operation_counts(edge=True)
        core = result.operation_counts(edge=False)
        clients = result.metrics
        timeouts = sum(u.timeouts for u in clients.users.values() if not u.is_attacker)
        rows[label] = {
            "client_ratio": result.client_delivery_ratio(),
            "attacker_ratio": result.attacker_delivery_ratio(),
            "client_timeouts": timeouts,
            "router_verifs": edge.signature_verifications
            + core.signature_verifications,
            "tag_rate": result.tag_rates()[0],
        }
    return rows


def test_design_ablations(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    table = render_table(
        ["variant", "client ratio", "attacker ratio", "client timeouts",
         "router verifs", "tag req/s"],
        [
            [name, round(r["client_ratio"], 4), round(r["attacker_ratio"], 4),
             r["client_timeouts"], r["router_verifs"], round(r["tag_rate"], 2)]
            for name, r in rows.items()
        ],
        title="Design-choice ablations (Topology 1 workload)",
    )
    publish("ablations", table)

    base = rows["baseline"]
    # Security holds in every TACTIC variant.
    for name, r in rows.items():
        assert r["attacker_ratio"] < 0.01, name
    # Drop-only cannot *improve* on NACK+content for clients.
    assert rows["drop-only"]["client_ratio"] <= base["client_ratio"] + 1e-9
    assert rows["drop-only"]["client_timeouts"] >= base["client_timeouts"]
    # Bloom filters are what keep router crypto negligible.
    assert rows["no-bloom"]["router_verifs"] > 50 * max(1, base["router_verifs"])
    # Tag expiry dials registration load without touching delivery.
    assert rows["te=2s"]["tag_rate"] > rows["te=50s"]["tag_rate"] * 2
    assert rows["te=2s"]["client_ratio"] > 0.99
