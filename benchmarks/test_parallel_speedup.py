"""Bench: the repro.exec engine — fan-out speedup and cache round-trip.

A fig5-style sweep (2 topologies x 2 seeds) runs three ways: serial
in-process (``jobs=1``), fanned out over a spawn pool (``jobs=4`` by
default; override with ``REPRO_BENCH_JOBS``), and replayed from a
content-addressed run cache.  The benchmark asserts the tentpole's
correctness bar unconditionally — every execution mode produces
bit-identical figure values and event digests — and publishes
``BENCH_parallel.json`` with the wall-clock numbers.

Both timed legs run with the fleet scheduling observatory on
(:mod:`repro.obs.fleetperf`), so the document carries a ``fleetperf``
speedup-attribution block decomposing the parallel wall into compute /
startup / serialization / imbalance / straggler / residual, with the
phase-coverage invariant (>= 0.9 of the wall attributed) asserted here.
Read it with ``python -m repro.obs.fleetperf report BENCH_parallel.json``.

The >=2x speedup assertion is gated on the host actually having >=4
cores: a single-core CI runner pays the spawn overhead without any
parallelism to show for it, which says nothing about the engine.

With ``REPRO_HISTORY_DIR`` set, the headline numbers are appended to
the run history (figure ``parallel``) for the CI regression gate
(``python -m repro.obs.history diff --figure parallel``); the committed
baseline lives at ``benchmarks/baselines/parallel_history.jsonl``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, publish
from repro.exec import ExperimentEngine
from repro.experiments.fig5_latency import enumerate_fig5
from repro.experiments.report import render_table
from repro.obs.fleetperf import attribute_speedup
from repro.obs.metrics import MetricsRegistry

#: Scaled so the whole tri-modal comparison stays CI-sized; see each
#: figure module's docstring for the paper-scale parameters.
TOPOLOGIES = (1, 2)
SEEDS = (1, 2)
DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "6.0"))
SCALE = 0.2
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))

#: The attribution coverage bar (ISSUE 9 acceptance criterion).
MIN_COVERAGE = 0.9


def _sweep_specs():
    return [
        dataclasses.replace(spec, hash_events=True)
        for seed in SEEDS
        for spec in enumerate_fig5(
            topologies=TOPOLOGIES,
            bf_sizes=(12,),
            duration=DURATION,
            seed=seed,
            scale=SCALE,
        )
    ]


def _timed_run(specs, **kwargs):
    engine = ExperimentEngine(registry=MetricsRegistry(), **kwargs)
    began = time.perf_counter()
    summaries = engine.run_specs(specs)
    return time.perf_counter() - began, summaries, engine


def test_parallel_matches_serial_and_speeds_up(tmp_path):
    specs = _sweep_specs()

    serial_wall, serial, _ = _timed_run(
        specs, jobs=1, use_cache=False, fleetperf=True
    )
    parallel_wall, parallel, fleet_engine = _timed_run(
        specs, jobs=JOBS, use_cache=False, fleetperf=True
    )
    prime_wall, primed, _ = _timed_run(specs, jobs=1, cache_dir=tmp_path)
    cached_wall, cached, _ = _timed_run(specs, jobs=1, cache_dir=tmp_path)

    # The correctness bar: bit-identical values in every mode.
    baseline = [s.metrics_dict() for s in serial]
    assert [p.metrics_dict() for p in parallel] == baseline
    assert [p.metrics_dict() for p in primed] == baseline
    assert [c.metrics_dict() for c in cached] == baseline
    digests = [s.event_digest for s in serial]
    assert all(digests)
    assert [p.event_digest for p in parallel] == digests
    assert [c.event_digest for c in cached] == digests
    assert all(c.cached for c in cached) and not any(p.cached for p in primed)

    cores = os.cpu_count() or 1
    speedup = serial_wall / parallel_wall if parallel_wall else float("inf")
    cache_speedup = serial_wall / cached_wall if cached_wall else float("inf")

    # Where the parallel wall went (docs/PERFORMANCE.md, "Where
    # parallel time goes").  The coverage invariant is the acceptance
    # bar: the observatory must account for >= 90% of the measured
    # wall, or its attribution cannot be trusted to gate the multicore
    # overhaul.
    attribution = attribute_speedup(
        fleet_engine.last_fleetperf, serial_wall=serial_wall
    )
    assert attribution["coverage"] >= MIN_COVERAGE, (
        f"fleetperf attributed only {attribution['coverage']:.1%} of the "
        f"parallel wall (bar: {MIN_COVERAGE:.0%})"
    )

    from repro.obs.history import host_metadata

    report = {
        "host": host_metadata(),
        "sweep": {
            "topologies": list(TOPOLOGIES),
            "seeds": list(SEEDS),
            "duration": DURATION,
            "scale": SCALE,
            "runs": len(specs),
        },
        "jobs": JOBS,
        "pool": {
            "start_method": "spawn",
            "chunksize": 1,
            "workers": min(JOBS, len(specs)),
        },
        "serial_wall_seconds": round(serial_wall, 4),
        "parallel_wall_seconds": round(parallel_wall, 4),
        "cache_prime_wall_seconds": round(prime_wall, 4),
        "cache_replay_wall_seconds": round(cached_wall, 4),
        "parallel_speedup": round(speedup, 3),
        "cache_speedup": round(cache_speedup, 3),
        "fleetperf": attribution,
        "bit_identical": True,
        "event_digests": digests,
        "speedup_asserted": cores >= 4 and JOBS >= 4,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    document = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "BENCH_parallel.json").write_text(document)
    # Also published at the repo root next to BENCH_simcore.json so the
    # two headline benchmark documents live side by side.
    (RESULTS_DIR.parent.parent / "BENCH_parallel.json").write_text(document)
    publish(
        "parallel_speedup",
        render_table(
            ["mode", "wall (s)", "vs serial"],
            [
                ["serial (jobs=1)", round(serial_wall, 3), "1.00x"],
                [f"parallel (jobs={JOBS})", round(parallel_wall, 3),
                 f"{speedup:.2f}x"],
                ["cache replay", round(cached_wall, 4), f"{cache_speedup:.0f}x"],
            ],
            title=f"repro.exec engine — {len(specs)}-run fig5-style sweep "
                  f"({cores} host cores)",
        ),
    )

    history_dir = os.environ.get("REPRO_HISTORY_DIR")
    if history_dir:
        from repro.obs.history import RunHistory

        RunHistory(history_dir).append_benchmark(
            "parallel",
            label=f"fig5-sweep-jobs{JOBS}",
            metrics={
                "parallel_speedup": round(speedup, 3),
                "attribution_coverage": round(attribution["coverage"], 4),
                "runs": len(specs),
            },
            wall_seconds=parallel_wall,
        )

    # Cache replay skips execution entirely; it must crush serial even
    # on one core.
    assert cached_wall < serial_wall / 5
    if report["speedup_asserted"]:
        assert speedup >= 2.0, (
            f"jobs={JOBS} on {cores} cores: expected >=2x over serial, "
            f"got {speedup:.2f}x"
        )
