#!/usr/bin/env python3
"""Scheme shoot-out: TACTIC against the state-of-the-art classes.

Runs the identical workload (paper Topology 1, scaled) under four
access-control schemes and prints the quantitative shadows of the
paper's Table II:

- **tactic** — router-enforced, Bloom-filter assisted (this paper);
- **no_bloom** — router-enforced with per-request crypto ([8], [10]);
- **provider_auth** — always-online origin authentication, no caching
  of controlled content ([14], [16]);
- **client_side** — deliver to everyone, decrypt at clients ([5]);
- **accconf** — Misra et al.'s broadcast-encryption framework ([3],
  [7]): Shamir enclosures on every packet, client-side combination.

Run:  python examples/scheme_comparison.py
"""

from repro.experiments.table2_comparison import (
    render_feature_matrix,
    reproduce_table2,
)


def main() -> None:
    print(render_feature_matrix())
    print()

    measurements = reproduce_table2(topology=1, duration=12.0, seed=5, scale=0.2)
    by_scheme = {m.scheme: m for m in measurements}

    header = (
        f"{'scheme':<15}{'client%':>9}{'usable%':>9}{'attacker%':>11}{'wasted KB':>11}"
        f"{'origin load':>13}{'router verifs':>15}{'latency ms':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in ("tactic", "no_bloom", "provider_auth", "client_side", "accconf"):
        m = by_scheme[name]
        print(
            f"{name:<15}{m.client_ratio * 100:>9.2f}{m.client_usable_ratio * 100:>9.2f}"
            f"{m.attacker_ratio * 100:>11.2f}"
            f"{m.attacker_bytes_wasted / 1024:>11.0f}{m.origin_chunks_served:>13}"
            f"{m.router_verifications:>15}{m.mean_latency * 1000:>12.2f}"
        )

    tactic = by_scheme["tactic"]
    print("\nwhat the numbers say:")
    print(
        f"- client_side wastes {by_scheme['client_side'].attacker_bytes_wasted / 1024:.0f} KB "
        "on attackers (the DDoS exposure TACTIC's routers eliminate)"
    )
    ratio = by_scheme["no_bloom"].router_verifications / max(1, tactic.router_verifications)
    print(
        f"- no_bloom needs {ratio:.0f}x TACTIC's router signature verifications "
        "for the same security (the Bloom filter's whole contribution)"
    )
    origin_ratio = by_scheme["provider_auth"].origin_chunks_served / max(
        1, tactic.origin_chunks_served
    )
    print(
        f"- provider_auth sends {origin_ratio:.1f}x more requests to the origin "
        "(no cache hits allowed) and needs the provider always online"
    )


if __name__ == "__main__":
    main()
