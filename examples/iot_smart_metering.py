#!/usr/bin/env python3
"""IoT smart-metering district: the M2M edge workload the paper motivates.

The introduction motivates TACTIC with machine-to-machine applications
— "smart meters, asset tracking, and video surveillance" — at a
wireless edge of billions of constrained devices.  This example models
a utility district:

- a **utility provider** publishes tariff tables (public), per-street
  consumption summaries (level 1, for resident dashboards), and
  grid-control telemetry (level 2, for operators only);
- **meters** (many, constrained) poll small tariff/summary objects on
  tight windows — caching means the edge absorbs almost everything;
- an **operator console** pulls telemetry at level 2;
- a **nosy resident** (level 1) tries to read grid telemetry and is
  stopped by the access-level pre-check at the content routers.

Run:  python examples/iot_smart_metering.py
"""

from repro.core import Client, CoreRouter, EdgeRouter, Provider, TacticConfig
from repro.core.metrics import MetricsCollector
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn import AccessPoint, Network
from repro.sim import Simulator
from repro.workload.catalog import build_catalog


def main() -> None:
    config = TacticConfig(
        tag_expiry=20.0,
        objects_per_provider=30,
        chunks_per_object=5,   # telemetry objects are small
        chunk_size_bytes=256,  # constrained-device payloads
        window_size=2,         # constrained-device windows
        num_access_levels=2,
    )
    sim = Simulator(seed=2026)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()

    # Utility head-end: 1/3 public tariffs, then street summaries (L1)
    # and grid telemetry (L2) alternating.
    utility = Provider(
        sim, "utility", config, cert_store, SimulatedKeyPair.generate(sim.rng.stream("u"))
    )
    utility.publish_catalog(access_levels=[None, 1, 2])

    edge = EdgeRouter(sim, "edge-0", config, cert_store, metrics)
    core = CoreRouter(sim, "core-0", config, cert_store, metrics)
    for node in (utility, edge, core):
        network.add_node(node)
    network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
    network.connect(core, utility, bandwidth_bps=500e6, latency=0.001)
    network.announce_prefix(utility.prefix, utility)

    # Three street-level access points, ~4 meters each.
    catalog = build_catalog([utility])
    aps = []
    for i in range(3):
        ap = AccessPoint(sim, f"street-ap-{i}")
        network.add_node(ap, routable=False)
        network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
        ap.set_uplink(ap.face_toward(edge))
        aps.append(ap)

    def attach(user_id, level, ap):
        keys = SimulatedKeyPair.generate(sim.rng.stream(user_id))
        client = Client(
            sim, user_id, config, catalog.accessible_to(level),
            metrics.user(user_id), access_level=level, keypair=keys,
        )
        client.credentials["utility"] = utility.directory.enroll(
            user_id, level, public_key=keys.public
        )
        network.add_node(client, routable=False)
        network.connect(client, ap, bandwidth_bps=10e6, latency=0.002)
        return client

    meters = [attach(f"meter-{i}", 1, aps[i % 3]) for i in range(12)]
    operator = attach("operator-console", 2, aps[0])

    # The nosy resident: enrolled at level 1 but deliberately requesting
    # only level-2 grid telemetry it is not entitled to.
    from repro.workload.catalog import Catalog

    nosy = attach("nosy-resident", 1, aps[1])
    nosy.catalog = Catalog(
        [entry for entry in catalog.entries if entry.access_level == 2]
    )
    nosy._zipf = type(nosy._zipf)(len(nosy.catalog), config.zipf_alpha, nosy.rng)
    metrics.user("nosy-resident").is_attacker = True

    for i, meter in enumerate(meters):
        meter.start(at=0.05 * i, until=20.0)
    operator.start(at=0.1, until=20.0)
    nosy.start(at=0.1, until=20.0)
    sim.run(until=22.0)

    # ---- Report ---------------------------------------------------------
    meter_stats = [metrics.user(m.node_id) for m in meters]
    total_meter_chunks = sum(s.chunks_received for s in meter_stats)
    origin_served = utility.stats.chunks_served
    print("district summary (20 s):")
    print(f"  meters served          : {total_meter_chunks} chunks "
          f"across {len(meters)} meters")
    print(f"  served from origin     : {origin_served} "
          f"({origin_served / max(1, total_meter_chunks):.1%} — caching absorbed the rest)")
    print(f"  operator telemetry     : "
          f"{metrics.user('operator-console').chunks_received} chunks at level 2")
    nosy_stats = metrics.user("nosy-resident")
    print(f"  nosy resident          : {nosy_stats.chunks_requested} requests, "
          f"{nosy_stats.chunks_received} level-2 chunks obtained")
    edge_ops = metrics.merged_counters(edge=True)
    print(f"  edge router crypto     : {edge_ops.signature_verifications} signature "
          f"verifications vs {edge_ops.bf_lookups} BF lookups")

    assert all(s.delivery_ratio() > 0.95 for s in meter_stats)
    assert metrics.user("operator-console").delivery_ratio() > 0.95
    assert nosy_stats.chunks_received == 0, "level-2 telemetry leaked!"
    print("\nsmart-metering demo OK: meters and operator served, "
          "level-2 telemetry protected.")


if __name__ == "__main__":
    main()
