#!/usr/bin/env python3
"""Revocation: tag expiry as membership control (Section 5 / Table II).

Demonstrates TACTIC's revocation story end to end:

1. a subscriber consumes content normally, re-registering every TE
   seconds;
2. the provider revokes her mid-run (directory refusal — no content
   re-encryption, no network-wide key update, no router notification);
3. her current tag keeps working until it expires — the *worst-case
   exposure* is exactly TE — after which every request dies at the edge;
4. a sweep over TE quantifies the paper's trade-off: shorter expiry
   means faster revocation but proportionally more registration load.

Run:  python examples/revocation_demo.py
"""

from repro.core import Client, CoreRouter, EdgeRouter, Provider, TacticConfig
from repro.core.metrics import MetricsCollector
from repro.core.revocation import ExpiryRevocation
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.experiments import Scenario, run_scenario
from repro.ndn import AccessPoint, Network
from repro.sim import Simulator
from repro.workload.catalog import build_catalog


def build_single_client_net():
    """client -- AP -- edge -- core -- provider, plus the metrics hub."""
    config = TacticConfig(tag_expiry=10.0)
    sim = Simulator(seed=11)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()

    provider = Provider(
        sim, "prov-0", config, cert_store, SimulatedKeyPair.generate(sim.rng.stream("p"))
    )
    provider.publish_catalog([1, 2, 3])
    edge = EdgeRouter(sim, "edge-0", config, cert_store, metrics)
    core = CoreRouter(sim, "core-0", config, cert_store, metrics)
    ap = AccessPoint(sim, "ap-0")
    for node in (provider, edge, core):
        network.add_node(node)
    network.add_node(ap, routable=False)
    network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
    network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
    network.connect(core, provider, bandwidth_bps=500e6, latency=0.001)
    ap.set_uplink(ap.face_toward(edge))
    network.announce_prefix(provider.prefix, provider)

    keys = SimulatedKeyPair.generate(sim.rng.stream("alice"))
    client = Client(
        sim, "alice", config,
        build_catalog([provider]).accessible_to(3),
        metrics.user("alice"), access_level=3, keypair=keys,
    )
    client.credentials["prov-0"] = provider.directory.enroll(
        "alice", 3, public_key=keys.public
    )
    network.add_node(client, routable=False)
    network.connect(client, ap, bandwidth_bps=10e6, latency=0.002)
    return sim, config, provider, client, metrics


def single_client_revocation() -> None:
    print("== single-subscriber revocation ==")
    sim, config, provider, client, metrics = build_single_client_net()
    te = config.tag_expiry
    client.start(at=0.0, until=30.0)

    policy = ExpiryRevocation(tag_lifetime=te)
    revoke_at = 8.0
    sim.schedule(revoke_at, policy.revoke, provider, "alice")
    sim.run(until=32.0)

    stats = metrics.user("alice")
    deadline = revoke_at + policy.worst_case_exposure()
    before = sum(1 for t, _ in stats.latency_samples if t <= revoke_at)
    grace = sum(1 for t, _ in stats.latency_samples if revoke_at < t <= deadline)
    after = sum(1 for t, _ in stats.latency_samples if t > deadline)
    last = max((t for t, _ in stats.latency_samples), default=0.0)

    print(f"tag expiry (TE)            : {te:.0f} s")
    print(f"revoked at                 : t={revoke_at:.0f} s")
    print(f"chunks before revocation   : {before}")
    print(f"chunks in the grace window : {grace}  (old tag still valid)")
    print(f"chunks after TE elapsed    : {after}")
    print(f"last successful retrieval  : t={last:.2f} s (deadline {deadline:.0f} s)")
    assert after == 0, "revoked client retrieved content past the exposure window"
    print("-> access died within one tag lifetime, with zero router/provider rework\n")


def expiry_sweep() -> None:
    print("== the revocation-granularity / overhead trade-off ==")
    print(f"{'TE (s)':>8}{'tag req/s':>12}{'worst-case exposure':>22}")
    for te in (2.0, 5.0, 10.0, 30.0):
        scenario = Scenario.paper_topology(1, duration=15.0, seed=3, scale=0.2)
        result = run_scenario(scenario.with_config(tag_expiry=te))
        q, _ = result.tag_rates()
        print(f"{te:>8.0f}{q:>12.2f}{ExpiryRevocation(te).worst_case_exposure():>20.0f} s")
    print(
        "-> shorter TE = faster revocation but more registration traffic\n"
        "   (the paper: raising TE 10 -> 100 s cut tag rates to a fraction)"
    )


def main() -> None:
    single_client_revocation()
    expiry_sweep()


if __name__ == "__main__":
    main()
