#!/usr/bin/env python3
"""Tour of the future-work extensions the paper sketches.

Three vignettes on a small deployment:

1. **Mobility** — a vehicle hands over between roadside access points;
   each move invalidates its location-bound tag and triggers a fresh
   registration (Section 4.A's "a mobile client needs to request a new
   tag every time she moves"), with no lasting service interruption.
2. **Explicit revocation** — counting Bloom filters plus a router
   blacklist cut a revoked subscriber off in milliseconds instead of a
   full tag lifetime.
3. **Traitor tracing** — a client shares its tag; the same signed tag
   appearing from two locations is detected at the edge and both the
   tag and its owner lose access (the paper's named future work).

Run:  python examples/extensions_tour.py
"""

from repro.core import Client, CoreRouter, EdgeRouter, Provider, TacticConfig
from repro.core.attacker import Attacker, AttackerMode
from repro.core.metrics import MetricsCollector
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.extensions import (
    MobileClient,
    MobilityManager,
    RevocableCoreRouter,
    RevocableEdgeRouter,
    RevocationAuthority,
    TracingEdgeRouter,
    TraitorDetector,
)
from repro.ndn import AccessPoint, Network
from repro.sim import Simulator
from repro.workload.catalog import build_catalog


def build_net(edge_cls, config, num_aps=2, **edge_kwargs):
    sim = Simulator(seed=77)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()
    provider = Provider(
        sim, "prov-0", config, cert_store, SimulatedKeyPair.generate(sim.rng.stream("p"))
    )
    provider.publish_catalog([1, 2, 3])
    edge = edge_cls(sim, "edge-0", config, cert_store, metrics, **edge_kwargs)
    core_cls = RevocableCoreRouter if edge_cls is RevocableEdgeRouter else CoreRouter
    core = core_cls(sim, "core-0", config, cert_store, metrics)
    for node in (provider, edge, core):
        network.add_node(node)
    aps = []
    for i in range(num_aps):
        ap = AccessPoint(sim, f"ap-{i}")
        network.add_node(ap, routable=False)
        network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
        ap.set_uplink(ap.face_toward(edge))
        aps.append(ap)
    network.connect(edge, core, bandwidth_bps=500e6, latency=0.001)
    network.connect(core, provider, bandwidth_bps=500e6, latency=0.001)
    network.announce_prefix(provider.prefix, provider)
    return sim, network, metrics, provider, edge, core, aps


def enroll(sim, network, metrics, provider, user_id, ap_list, client_cls=Client):
    keys = SimulatedKeyPair.generate(sim.rng.stream(user_id))
    client = client_cls(
        sim, user_id, provider.config, build_catalog([provider]).accessible_to(3),
        metrics.user(user_id), access_level=3, keypair=keys,
    )
    client.credentials["prov-0"] = provider.directory.enroll(
        user_id, 3, public_key=keys.public
    )
    network.add_node(client, routable=False)
    for ap in ap_list:
        network.connect(client, ap, bandwidth_bps=10e6, latency=0.002)
    return client


def mobility_vignette() -> None:
    print("== 1. mobility: a vehicle crossing three cells ==")
    config = TacticConfig(tag_expiry=30.0)
    sim, network, metrics, provider, edge, core, aps = build_net(
        EdgeRouter, config, num_aps=3
    )
    vehicle = enroll(sim, network, metrics, provider, "vehicle", aps,
                     client_cls=MobileClient)
    vehicle.start(at=0.0, until=24.0)
    MobilityManager(sim, [vehicle], interval=6.0, until=22.0)
    sim.run(until=26.0)
    stats = metrics.user("vehicle")
    print(f"  handovers            : {vehicle.mobility.migrations}")
    print(f"  tags re-acquired     : {stats.tags_received} "
          f"(one per handover + expiry refreshes)")
    print(f"  responses lost moving: {vehicle.mobility.responses_lost_in_handover}")
    print(f"  delivery ratio       : {stats.delivery_ratio():.4f}\n")
    assert stats.delivery_ratio() > 0.9


def revocation_vignette() -> None:
    print("== 2. explicit revocation vs tag expiry ==")
    config = TacticConfig(tag_expiry=30.0)
    sim, network, metrics, provider, edge, core, aps = build_net(
        RevocableEdgeRouter, config
    )
    subscriber = enroll(sim, network, metrics, provider, "subscriber", aps[:1])
    subscriber.start(at=0.0, until=20.0)
    authority = RevocationAuthority(sim, routers=[edge, core], propagation_delay=0.01)
    revoke_at = 5.0
    sim.schedule(revoke_at, authority.revoke_user, provider, "subscriber")
    sim.run(until=22.0)
    stats = metrics.user("subscriber")
    last = max((t for t, _ in stats.latency_samples), default=0.0)
    print(f"  tag would expire at  : t={revoke_at + config.tag_expiry:.0f} s (stock TACTIC exposure)")
    print(f"  revoked at           : t={revoke_at:.1f} s, broadcast delay 10 ms")
    print(f"  last chunk delivered : t={last:.3f} s")
    print(f"  exposure             : {last - revoke_at:.3f} s vs {config.tag_expiry:.0f} s stock\n")
    assert last - revoke_at < 1.0


def tracing_vignette() -> None:
    print("== 3. traitor tracing: tag sharing detected and punished ==")
    config = TacticConfig(tag_expiry=30.0, enable_access_path=False)
    detector = TraitorDetector()
    sim, network, metrics, provider, edge, core, aps = build_net(
        TracingEdgeRouter, config, detector=detector
    )
    sharer = enroll(sim, network, metrics, provider, "sharer", aps[:1])
    freeloader = Attacker(
        sim, "freeloader", config, build_catalog([provider]).private_only(),
        metrics.user("freeloader", is_attacker=True),
        mode=AttackerMode.SHARED_TAG, victim=sharer,
    )
    network.add_node(freeloader, routable=False)
    network.connect(freeloader, aps[1], bandwidth_bps=10e6, latency=0.002)

    sharer.start(at=0.0, until=15.0)
    freeloader.start(at=2.0, until=15.0)
    sim.run(until=17.0)

    alert = detector.alerts[0]
    print(f"  shared tag detected  : t={alert.detected_at:.3f} s "
          f"(sharing began t=2.0 s)")
    print(f"  traitor identified   : {alert.client_key_locator}")
    print(f"  requests dropped     : {edge.traitor_drops} after detection")
    free_stats = metrics.user("freeloader")
    print(f"  freeloader haul      : {free_stats.chunks_received} chunks "
          f"(window before detection only)\n")
    assert detector.flagged_clients() == {"/sharer/KEY/pub"}


def main() -> None:
    mobility_vignette()
    revocation_vignette()
    tracing_vignette()
    print("extensions tour OK.")


if __name__ == "__main__":
    main()
