#!/usr/bin/env python3
"""Threat-model walkthrough: every attacker class from Section 3.C.

Runs one scenario per attacker mode on paper Topology 1 (scaled) and
reports each mode's outcome — which defence layer stopped it and how
many chunks leaked.  Also demonstrates the access-path ablation: with
the location binding disabled (as in the paper's own simulations,
which left it to future work), the shared-tag attacker succeeds.

Run:  python examples/attack_simulation.py
"""

from repro.core.attacker import AttackerMode
from repro.experiments import Scenario, run_scenario

SCALE = 0.2
DURATION = 12.0

DEFENCE = {
    AttackerMode.NO_TAG: "content router: Protocol 1 NO_TAG pre-check",
    AttackerMode.FAKE_TAG: "content router: signature verification",
    AttackerMode.EXPIRED_TAG: "edge router: Protocol 1 expiry pre-check",
    AttackerMode.LOW_ACCESS_LEVEL: "content router: ALD <= ALu pre-check",
    AttackerMode.SHARED_TAG: "edge router: access-path comparison",
}


def run_mode(mode: AttackerMode, enable_access_path: bool = True):
    scenario = Scenario.paper_topology(
        1,
        duration=DURATION,
        seed=7,
        scale=SCALE,
        attacker_modes=(mode,),
    ).with_config(enable_access_path=enable_access_path)
    return run_scenario(scenario)


def main() -> None:
    print(f"{'attacker mode':<22}{'requested':>10}{'received':>10}{'ratio':>8}   stopped by")
    print("-" * 95)
    for mode in AttackerMode:
        result = run_mode(mode)
        requested = result.metrics.total_requested(attackers=True)
        received = result.metrics.total_received(attackers=True)
        ratio = result.attacker_delivery_ratio()
        print(
            f"{mode.value:<22}{requested:>10}{received:>10}{ratio:>8.4f}   {DEFENCE[mode]}"
        )
        assert ratio < 0.01, f"{mode} leaked content!"

    print("\nablation: access-path check disabled (the paper's own simulation setup)")
    result = run_mode(AttackerMode.SHARED_TAG, enable_access_path=False)
    ratio = result.attacker_delivery_ratio()
    print(f"shared-tag attacker delivery ratio without the binding: {ratio:.4f}")
    assert ratio > 0.5, "expected the shared tag to work without the binding"
    print(
        "-> tag sharing defeats TACTIC unless the access-path feature is on;\n"
        "   this is exactly the gap Section 4.A's APu field closes."
    )

    clients = run_mode(AttackerMode.NO_TAG).client_delivery_ratio()
    print(f"\nlegitimate clients throughout: {clients:.4f} delivery ratio")


if __name__ == "__main__":
    main()
