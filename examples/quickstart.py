#!/usr/bin/env python3
"""Quickstart: build a tiny TACTIC deployment by hand and fetch content.

Walks the whole story on a six-node topology:

    client -- AP -- edge router -- core x2 -- provider

1. the provider publishes an encrypted catalog and enrolls the client,
2. the client registers and receives a signed tag plus the wrapped
   catalog master key,
3. the client requests chunks; routers authenticate the tag (signature
   once, Bloom filter afterwards) and the content flows back,
4. an unregistered user tries the same and gets nothing.

Run:  python examples/quickstart.py
"""

from repro.core import Client, CoreRouter, EdgeRouter, Provider, TacticConfig
from repro.core.metrics import MetricsCollector
from repro.crypto.pki import CertificateStore
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.ndn import AccessPoint, Interest, Name, Network, Node
from repro.sim import Simulator
from repro.workload.catalog import build_catalog


def main() -> None:
    config = TacticConfig(tag_expiry=10.0, objects_per_provider=10, chunks_per_object=20)
    sim = Simulator(seed=42)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()

    # --- Provider: keys, certificate, catalog --------------------------
    provider_keys = SimulatedKeyPair.generate(sim.rng.stream("provider"))
    provider = Provider(sim, "prov-0", config, cert_store, provider_keys)
    provider.publish_catalog(access_levels=[1, 2, 3])

    # --- ISP routers and the wireless edge ------------------------------
    edge = EdgeRouter(sim, "edge-0", config, cert_store, metrics)
    core_a = CoreRouter(sim, "core-0", config, cert_store, metrics)
    core_b = CoreRouter(sim, "core-1", config, cert_store, metrics)
    ap = AccessPoint(sim, "ap-0")

    for node in (provider, edge, core_a, core_b):
        network.add_node(node)
    network.add_node(ap, routable=False)
    network.connect(ap, edge, bandwidth_bps=10e6, latency=0.002)
    network.connect(edge, core_a, bandwidth_bps=500e6, latency=0.001)
    network.connect(core_a, core_b, bandwidth_bps=500e6, latency=0.001)
    network.connect(core_b, provider, bandwidth_bps=500e6, latency=0.001)
    ap.set_uplink(ap.face_toward(edge))
    network.announce_prefix(provider.prefix, provider)

    # --- A legitimate client --------------------------------------------
    catalog = build_catalog([provider]).accessible_to(3)
    client_keys = SimulatedKeyPair.generate(sim.rng.stream("client"))
    client = Client(
        sim, "alice", config, catalog, metrics.user("alice"),
        access_level=3, keypair=client_keys,
    )
    client.credentials["prov-0"] = provider.directory.enroll(
        "alice", access_level=3, public_key=client_keys.public
    )
    network.add_node(client, routable=False)
    network.connect(client, ap, bandwidth_bps=10e6, latency=0.002)

    # --- A freeloader with no account -----------------------------------
    freeloader_hits = []

    class Freeloader(Node):
        def on_data(self, data, in_face):
            if data.nack is None:
                freeloader_hits.append(data)

    freeloader = Freeloader(sim, "mallory", cs_capacity=0)
    network.add_node(freeloader, routable=False)
    network.connect(freeloader, ap, bandwidth_bps=10e6, latency=0.002)

    def freeload():
        freeloader.faces[0].send(Interest(name=Name("/prov-0/obj-0/chunk-0")))

    # --- Run -------------------------------------------------------------
    client.start(at=0.0, until=5.0)
    for t in (0.5, 1.5, 2.5):
        sim.schedule(t, freeload)
    sim.run(until=7.0)

    # --- Report ------------------------------------------------------------
    stats = metrics.user("alice")
    print("alice:")
    print(f"  tags requested/received : {stats.tags_requested}/{stats.tags_received}")
    print(f"  chunks requested        : {stats.chunks_requested}")
    print(f"  chunks received         : {stats.chunks_received}")
    print(f"  delivery ratio          : {stats.delivery_ratio():.4f}")
    print(f"  master key unwrapped    : {client.master_keys.get('prov-0') == provider.master_key}")
    print("mallory (no account):")
    print(f"  content received        : {len(freeloader_hits)}")
    print("routers:")
    edge_ops = metrics.merged_counters(edge=True)
    core_ops = metrics.merged_counters(edge=False)
    print(f"  edge BF lookups/inserts/sig-verifies : "
          f"{edge_ops.bf_lookups}/{edge_ops.bf_inserts}/{edge_ops.signature_verifications}")
    print(f"  core BF lookups/inserts/sig-verifies : "
          f"{core_ops.bf_lookups}/{core_ops.bf_inserts}/{core_ops.signature_verifications}")

    assert stats.delivery_ratio() > 0.95
    assert not freeloader_hits
    print("\nquickstart OK: the client was served, the freeloader was not.")


if __name__ == "__main__":
    main()
