"""tactic-repro: a reproduction of TACTIC (Tourani et al., ICDCS 2018).

TACTIC is a tag-based access-control framework for the
information-centric wireless edge: providers issue signed tags to
registered clients, and ISP routers — not providers or clients —
authenticate and authorize every request, using Bloom filters to cache
validated tags so the common case costs a constant-time lookup instead
of a signature verification.

Package layout
--------------
``repro.sim``
    Discrete-event simulation engine.
``repro.crypto``
    RSA, ChaCha20, PKI, key wrapping, computation cost model.
``repro.filters``
    Bloom filters (plain + counting) with saturation resets.
``repro.ndn``
    Named-Data Networking substrate: names, Interest/Data/NACK,
    FIB/PIT/CS, links and forwarder nodes.
``repro.topology``
    Scale-free ISP topologies, including the paper's Table III presets.
``repro.core``
    The TACTIC protocols: tags, access paths, Protocols 1-4,
    provider/client/attacker node logic, metrics.
``repro.workload``
    Zipf content popularity and windowed request drivers.
``repro.baselines``
    Comparison access-control schemes (client-side AC, AccConF-style
    broadcast encryption, provider-auth AC, no-Bloom-filter ablation).
``repro.analysis``
    Closed-form models of the measured quantities.
``repro.extensions``
    The paper's future work: mobility, explicit revocation, traitor
    tracing, negative tag caching.
``repro.experiments``
    Scenario runner, multi-seed sweeps, per-figure/table reproduction
    entry points, and the ``python -m repro`` CLI.
"""

__version__ = "1.0.0"
