"""Always-online provider authentication (the paper's [14], [16] class).

The provider authenticates and authorizes every request itself.  Two
consequences the paper highlights: access-controlled content cannot be
served from caches (a cache hit would bypass the provider), and every
request pays a verification at the origin — so the origin must be
always online and becomes the bottleneck.

Modelled as plain NDN routers with content caching disabled plus the
standard TACTIC provider, whose Protocol 3 origin-side validation runs
with Bloom filters off (every request verifies the tag signature,
mirroring per-request token validation in [16]).
"""

from __future__ import annotations

from repro.baselines.client_side import make_plain_core, make_plain_edge
from repro.baselines.interfaces import SchemeSpec
from repro.core.config import TacticConfig
from repro.core.provider import Provider


def make_auth_provider(sim, node_id, config, cert_store, keypair) -> Provider:
    return Provider(sim, node_id, config, cert_store, keypair)


def _disable_caching(config: TacticConfig) -> TacticConfig:
    return config.with_(
        cs_capacity=0,
        edge_cs_capacity=0,
        use_bloom_filters=False,
    )


PROVIDER_AUTH_SCHEME = SchemeSpec(
    name="provider_auth",
    make_edge_router=make_plain_edge,
    make_core_router=make_plain_core,
    make_provider=make_auth_provider,
    clients_register=True,
    config_transform=_disable_caching,
)
