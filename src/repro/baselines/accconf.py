"""AccConF-style broadcast-encryption baseline (the paper's [3], [7]).

Misra et al.'s framework — the first comparison row of Table II — is
client-side enforcement built on Shamir secret sharing: every Data
packet carries a public *enclosure* of ``t - 1`` shares of the content
key, each enrolled client privately holds one further share, and one
private share plus the enclosure reaches the ``t`` threshold.  Routers
deliver to everyone; outsiders hold only the enclosure and recover
nothing.

Costs this models (Table II's "Moderate" column):

- per-packet communication overhead: the enclosure rides on every Data,
- client-side computation: a Lagrange interpolation per content key,
- revocation: a fresh polynomial plus redistribution of private shares
  to every *surviving* client (vs. TACTIC's zero-cost expiry).

The enclosure generation number is stamped on each Data; a client whose
share predates the current generation must re-register before it can
decrypt again — the rekey storm after each revocation.
"""

from __future__ import annotations

from repro.baselines.client_side import make_plain_core, make_plain_edge
from repro.baselines.interfaces import SchemeSpec
from repro.core.client import Client
from repro.core.provider import Provider
from repro.crypto.shamir import BroadcastEnclosure, Share
from repro.ndn.link import Face
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest

#: Wire size of one serialized share: 4-byte abscissa + 32-byte ordinate
#: + TLV framing.
SHARE_BYTES = 40


class AccConfProvider(Provider):
    """Serves everyone; attaches the broadcast enclosure to every Data."""

    def __init__(self, sim, node_id, config, cert_store, keypair,
                 threshold: int = 3) -> None:
        super().__init__(sim, node_id, config, cert_store, keypair)
        secret = int.from_bytes(self.master_key, "big") % (2**255)
        self.enclosure = BroadcastEnclosure(
            secret=secret,
            threshold=threshold,
            rng=sim.rng.stream(f"accconf:{node_id}"),
        )
        self.rekeys_sent = 0

    # ------------------------------------------------------------------
    # Enrollment / revocation
    # ------------------------------------------------------------------
    def enclosure_bytes(self) -> int:
        return len(self.enclosure.enclosure) * SHARE_BYTES

    def revoke_and_rekey(self, user_id: str) -> int:
        """Revoke ``user_id``; returns the number of private-share
        refreshes the provider must now deliver (the rekey cost)."""
        self.directory.revoke(user_id)
        fresh = self.enclosure.revoke(user_id)
        self.rekeys_sent += len(fresh)
        return len(fresh)

    # ------------------------------------------------------------------
    # Request handling: no network-side enforcement
    # ------------------------------------------------------------------
    def on_interest(self, interest: Interest, in_face: Face) -> None:
        if not self.online:
            return
        if interest.is_registration():
            self._handle_share_registration(interest, in_face)
            return
        obj = self._chunk_index.get(Name(interest.name))
        if obj is None:
            self.unroutable_drops += 1
            return
        self.stats.chunks_served += 1
        data = Data(
            name=Name(interest.name),
            payload_size=obj.chunk_size + self.enclosure_bytes(),
            access_level=obj.access_level,
            provider_key_locator=self.key_locator,
            signature=b"\x00" * 64,
            created_at=self.sim.now,
            app_meta={
                "enclosure": self.enclosure.enclosure,
                "generation": self.enclosure.generation,
            },
        )
        data.tag = interest.tag
        self.send(in_face, data)

    def _handle_share_registration(self, interest: Interest, in_face: Face) -> None:
        """Hand an enrolled client its private share of the current
        generation (the scheme's 'prior authorization process')."""
        if len(interest.name) < 3:
            self.stats.registrations_refused += 1
            return
        user_id = interest.name[2]
        entry = self.directory.authenticate(user_id, interest.credentials)
        if entry is None:
            self.stats.registrations_refused += 1
            return
        share = self.enclosure.enroll(user_id)
        self.stats.tags_issued += 1  # counted as authorization traffic
        response = Data(
            name=Name(interest.name),
            payload_size=SHARE_BYTES,
            provider_key_locator=self.key_locator,
            created_at=self.sim.now,
            app_meta={
                "share": share,
                "generation": self.enclosure.generation,
                "secret_check": self.enclosure.secret,
            },
        )
        self.send(in_face, response)


class AccConfClient(Client):
    """Fetches first, decrypts second: the client-side enforcement model."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: provider_id -> (Share, generation, expected_secret)
        self.shares: dict = {}
        self.lagrange_combines = 0
        self.stale_generation_misses = 0

    # No tags: requests go out immediately; authorization is a share.
    def _acquire_tag(self, provider_id: str):
        if provider_id not in self.shares and provider_id not in self._registration_pending:
            self._send_registration(provider_id)
        return None, True

    def on_data(self, data: Data, in_face: Face) -> None:
        meta = data.app_meta or {}
        if "share" in meta:
            self._on_share_response(data)
            return
        super().on_data(data, in_face)

    def _on_share_response(self, data: Data) -> None:
        provider_id = Name(data.name)[0]
        pending = self._registration_pending.pop(provider_id, None)
        if pending is not None:
            pending.timeout_event.cancel()
        meta = data.app_meta
        self.shares[provider_id] = (
            meta["share"], meta["generation"], meta["secret_check"]
        )
        self.stats.tags_received += 1
        self.stats.tag_receive_times.append(self.sim.now)
        self._pump()

    def can_consume(self, data: Data) -> bool:
        """Combine the private share with the packet's enclosure; fail
        (and schedule a share refresh) on a generation mismatch."""
        meta = data.app_meta or {}
        enclosure = meta.get("enclosure")
        if enclosure is None:
            return True  # non-enclosed (public) content
        provider_id = Name(data.name)[0]
        holding = self.shares.get(provider_id)
        if holding is None:
            return False
        share, generation, expected_secret = holding
        if generation != meta.get("generation"):
            self.stale_generation_misses += 1
            self.shares.pop(provider_id, None)  # force a refresh
            if provider_id not in self._registration_pending:
                self._send_registration(provider_id)
            return False
        self.lagrange_combines += 1
        recovered = BroadcastEnclosure.combine(share, enclosure)
        return recovered == expected_secret  # real Shamir math, end to end


def make_accconf_provider(sim, node_id, config, cert_store, keypair) -> AccConfProvider:
    return AccConfProvider(sim, node_id, config, cert_store, keypair)


ACCCONF_SCHEME = SchemeSpec(
    name="accconf",
    make_edge_router=make_plain_edge,
    make_core_router=make_plain_core,
    make_provider=make_accconf_provider,
    clients_register=False,
    client_factory=AccConfClient,
)
