"""Baseline access-control schemes TACTIC is compared against.

Three comparators capture the design space of Table II:

- :mod:`~repro.baselines.client_side` -- authorization delegated to the
  clients themselves (the paper's [3], [5]): every request retrieves
  the (encrypted) content, only enrolled clients can decrypt.  Shows
  the bandwidth-waste / DDoS exposure TACTIC eliminates.
- :mod:`~repro.baselines.provider_auth` -- an always-online provider
  authenticates every request ([14], [16]): caching is disabled for
  access-controlled content, so every request pays the round trip to
  the origin plus a per-request verification there.
- :mod:`~repro.baselines.no_bloom` -- TACTIC's router enforcement
  without the Bloom-filter cache ([8], [10]'s router-crypto cost):
  every validation is a signature verification.
- :mod:`~repro.baselines.accconf` -- the broadcast-encryption /
  Shamir-sharing framework of Misra et al. ([3], [7]): a per-packet
  enclosure plus one private share per client; client-side decryption,
  rekey-on-revocation.

Each scheme is a :class:`~repro.baselines.interfaces.SchemeSpec` the
experiment runner consumes; ``repro.experiments.runner.SCHEME_REGISTRY``
maps scheme names to specs.
"""

from repro.baselines.accconf import ACCCONF_SCHEME, AccConfClient, AccConfProvider
from repro.baselines.client_side import CLIENT_SIDE_SCHEME, PlainProvider, PlainRouter
from repro.baselines.interfaces import SchemeSpec
from repro.baselines.no_bloom import NO_BLOOM_SCHEME
from repro.baselines.provider_auth import PROVIDER_AUTH_SCHEME

__all__ = [
    "ACCCONF_SCHEME",
    "AccConfClient",
    "AccConfProvider",
    "CLIENT_SIDE_SCHEME",
    "NO_BLOOM_SCHEME",
    "PROVIDER_AUTH_SCHEME",
    "PlainProvider",
    "PlainRouter",
    "SchemeSpec",
]
