"""The no-Bloom-filter ablation.

TACTIC's protocols with the tag cache removed: every content-router or
intermediate-router validation falls back to a signature verification,
reproducing the per-request router crypto cost the paper criticizes in
[8], [10] ("the fact that the intermediate routers have to perform
cryptographic operations undermines the practicality of these
approaches").  Comparing this ablation against full TACTIC isolates
exactly what the Bloom-filter collaboration buys.
"""

from __future__ import annotations

from repro.baselines.interfaces import SchemeSpec
from repro.core.config import TacticConfig
from repro.core.core_router import CoreRouter
from repro.core.edge_router import EdgeRouter
from repro.core.provider import Provider


def _make_edge(sim, node_id, config, cert_store, metrics=None) -> EdgeRouter:
    return EdgeRouter(sim, node_id, config, cert_store, metrics)


def _make_core(sim, node_id, config, cert_store, metrics=None) -> CoreRouter:
    return CoreRouter(sim, node_id, config, cert_store, metrics)


def _make_provider(sim, node_id, config, cert_store, keypair) -> Provider:
    return Provider(sim, node_id, config, cert_store, keypair)


def _disable_bloom(config: TacticConfig) -> TacticConfig:
    return config.with_(use_bloom_filters=False)


NO_BLOOM_SCHEME = SchemeSpec(
    name="no_bloom",
    make_edge_router=_make_edge,
    make_core_router=_make_core,
    make_provider=_make_provider,
    clients_register=True,
    config_transform=_disable_bloom,
)
