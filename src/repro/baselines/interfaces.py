"""The scheme abstraction consumed by the experiment runner.

A :class:`SchemeSpec` bundles the node factories and behavioural
switches that distinguish one access-control scheme from another, so
the runner assembles any scheme over any topology with the same code
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import TacticConfig
from repro.core.metrics import MetricsCollector
from repro.crypto.pki import CertificateStore
from repro.ndn.node import Node
from repro.sim.engine import Simulator

EdgeFactory = Callable[
    [Simulator, str, TacticConfig, CertificateStore, Optional[MetricsCollector]], Node
]
CoreFactory = EdgeFactory
ProviderFactory = Callable[
    [Simulator, str, TacticConfig, CertificateStore, object], Node
]
ConfigTransform = Callable[[TacticConfig], TacticConfig]


@dataclass(frozen=True)
class SchemeSpec:
    """Everything scheme-specific the runner needs."""

    name: str
    make_edge_router: EdgeFactory
    make_core_router: CoreFactory
    make_provider: ProviderFactory
    #: Whether clients must register for tags before requesting.
    clients_register: bool = True
    #: Applied to the scenario config before assembly (e.g. disable
    #: Bloom filters, disable caching).
    config_transform: ConfigTransform = staticmethod(lambda config: config)
    #: Client class the runner instantiates (None = the standard
    #: :class:`repro.core.client.Client`).
    client_factory: Optional[type] = None
