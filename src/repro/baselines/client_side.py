"""Client-side access control (the paper's [3], [5] class).

"All users can retrieve the content from the network.  However, only
legitimate clients with sufficient authorization information (provided
during a prior authorization process) can decrypt and consume the
content.  Despite the feasibility, such mechanisms are prone to wasting
of network bandwidth and potential network DDoS attack by
unauthenticated or revoked users."

Routers are plain NDN forwarders; the provider serves everyone and
hands decryption material only to enrolled clients at registration.
Attacker "successful deliveries" under this scheme measure exactly the
wasted bandwidth TACTIC prevents.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.interfaces import SchemeSpec
from repro.core.config import TacticConfig
from repro.core.metrics import MetricsCollector
from repro.core.provider import Provider
from repro.crypto.pki import CertificateStore
from repro.ndn.link import Face
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Data, Interest
from repro.sim.engine import Simulator


class PlainRouter(Node):
    """A vanilla NDN forwarder (no access-control logic at all)."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        cert_store: CertificateStore,
        metrics: Optional[MetricsCollector] = None,
        is_edge: bool = False,
    ) -> None:
        capacity = config.edge_cs_capacity if is_edge else config.cs_capacity
        super().__init__(
            sim,
            node_id,
            cs_capacity=capacity,
            pit_lifetime=config.pit_lifetime,
            cost_model=config.cost_model,
        )


def make_plain_edge(sim, node_id, config, cert_store, metrics=None) -> PlainRouter:
    return PlainRouter(sim, node_id, config, cert_store, metrics, is_edge=True)


def make_plain_core(sim, node_id, config, cert_store, metrics=None) -> PlainRouter:
    return PlainRouter(sim, node_id, config, cert_store, metrics, is_edge=False)


class PlainProvider(Provider):
    """Serves (encrypted) content to any requester, tag or no tag.

    Registration still works — it is the "prior authorization process"
    that hands enrolled clients the wrapped decryption key — but content
    requests bypass all validation.
    """

    def on_interest(self, interest: Interest, in_face: Face) -> None:
        if interest.is_registration():
            self._handle_registration(interest, in_face)
            return
        obj = self._chunk_index.get(Name(interest.name))
        if obj is None:
            self.unroutable_drops += 1
            return
        self.stats.chunks_served += 1
        data = Data(
            name=Name(interest.name),
            payload=self._chunk_payload(obj, Name(interest.name)),
            access_level=obj.access_level,
            provider_key_locator=self.key_locator,
            signature=b"\x00" * 64,
            created_at=self.sim.now,
        )
        data.tag = interest.tag
        self.send(in_face, data)


def make_plain_provider(sim, node_id, config, cert_store, keypair) -> PlainProvider:
    return PlainProvider(sim, node_id, config, cert_store, keypair)


CLIENT_SIDE_SCHEME = SchemeSpec(
    name="client_side",
    make_edge_router=make_plain_edge,
    make_core_router=make_plain_core,
    make_provider=make_plain_provider,
    # Clients still enroll once to obtain decryption material, but they
    # do not block content requests on holding a fresh tag.
    clients_register=False,
)
