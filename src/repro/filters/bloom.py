"""The Bloom filter used by TACTIC routers.

Follows the paper's simulation configuration: a filter is constructed
for a *capacity* (number of tags to index: 500/1000/1500 in Fig. 5,
5000 in Table V), a fixed number of hash functions (5), and a maximum
false-positive probability (1e-4 or 1e-2).  The bit count is derived so
the FPP estimate reaches the maximum exactly at capacity.  "To avoid
additional false positives ... each router automatically resets its BF
when it is saturated (its FPP reaches the maximum FPP)" — callers check
:meth:`is_saturated` after inserts and call :meth:`reset`.

Hashing uses the Kirsch-Mitzenmatcher double-hashing scheme over a
single BLAKE2b digest: index_i = (h1 + i*h2) mod m.
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.filters.params import estimate_fpp, size_for_capacity

Item = Union[bytes, bytearray, str]

#: ``int.bit_count`` is Python 3.10+; resolved once so the fallback
#: branch costs nothing on modern interpreters.
_BIT_COUNT = getattr(int, "bit_count", None)


def _item_bytes(item: Item) -> bytes:
    if isinstance(item, str):
        return item.encode("utf-8")
    return bytes(item)


def _popcount(value: int) -> int:
    if _BIT_COUNT is not None:
        return int(_BIT_COUNT(value))
    return bin(value).count("1")  # pragma: no cover - Python 3.9 only


class BloomFilter:
    """Fixed-size Bloom filter with FPP tracking and saturation resets.

    Parameters
    ----------
    capacity:
        Number of items the filter is sized to hold at ``sizing_fpp``.
    max_fpp:
        False-positive probability at which the filter is *saturated*
        (the reset threshold).  Independent of the bit sizing: raising
        it lets a fixed-size filter absorb more inserts between resets,
        which is exactly the FPP lever the paper's Fig. 8 sweeps.
    num_hashes:
        Number of hash functions (the paper uses 5).
    sizing_fpp:
        Reference FPP used to derive the bit count from ``capacity``
        (defaults to the paper's baseline 1e-4).
    size_bits:
        Override the derived bit count (rarely needed).

    >>> bf = BloomFilter(capacity=100, max_fpp=1e-4)
    >>> bf.insert(b'tag-1')
    >>> bf.contains(b'tag-1')
    True
    >>> bf.contains(b'tag-2')
    False
    """

    def __init__(
        self,
        capacity: int,
        max_fpp: float = 1e-4,
        num_hashes: int = 5,
        sizing_fpp: float = 1e-4,
        size_bits: int = 0,
    ) -> None:
        self.capacity = capacity
        self.max_fpp = max_fpp
        self.num_hashes = num_hashes
        self.sizing_fpp = sizing_fpp
        self.size_bits = size_bits or size_for_capacity(capacity, sizing_fpp, num_hashes)
        self._bits = bytearray((self.size_bits + 7) // 8)
        self.count = 0
        # Lifetime statistics (survive resets) — consumed by Fig. 7/8
        # and Table V reproductions.
        self.total_inserts = 0
        self.total_lookups = 0
        self.reset_count = 0
        self.lookups_since_reset = 0
        #: Optional :class:`~repro.qa.simsan.SimSan` (``None`` = off).
        #: Receives per-insert count checks and sampled fill checks.
        self.san = None
        #: Optional :class:`~repro.obs.perf.PerfObservatory` (``None``
        #: = off).  insert/contains/reset charge themselves to the
        #: ``filters.bloom`` phase via the leaf ``account`` hook (the
        #: cheap two-clock-read variant — BF lookups are the hottest
        #: router op, so no context-manager machinery on this path).
        self.perf = None

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _indices(self, item: Item) -> list:
        digest = hashlib.blake2b(_item_bytes(item), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full-period stride
        m = self.size_bits
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def insert(self, item: Item) -> None:
        """Insert ``item``; counts every call (duplicates included) for FPP."""
        perf = self.perf
        if perf is None:
            return self._insert(item)
        began = perf.clock()
        try:
            return self._insert(item)
        finally:
            perf.account("filters.bloom", perf.clock() - began)

    def _insert(self, item: Item) -> None:
        for idx in self._indices(item):
            self._bits[idx >> 3] |= 1 << (idx & 7)
        self.count += 1
        self.total_inserts += 1
        if self.san is not None:
            self.san.bf_insert(self)

    def contains(self, item: Item) -> bool:
        """Membership test; false positives possible, negatives exact.

        The double-hash indices are computed inline rather than via
        :meth:`_indices` — lookups are the hottest router operation and
        the list allocation dominated the per-call cost.
        """
        perf = self.perf
        if perf is None:
            return self._contains(item)
        began = perf.clock()
        try:
            return self._contains(item)
        finally:
            perf.account("filters.bloom", perf.clock() - began)

    def _contains(self, item: Item) -> bool:
        self.total_lookups += 1
        self.lookups_since_reset += 1
        digest = hashlib.blake2b(_item_bytes(item), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        m = self.size_bits
        bits = self._bits
        for i in range(self.num_hashes):
            idx = (h1 + i * h2) % m
            if not (bits[idx >> 3] >> (idx & 7)) & 1:
                return False
        return True

    def __contains__(self, item: Item) -> bool:
        return self.contains(item)

    # ------------------------------------------------------------------
    # Saturation / reset (paper Section 8.A)
    # ------------------------------------------------------------------
    def current_fpp(self) -> float:
        """FPP estimate from the insert count (the paper's saturation test)."""
        return estimate_fpp(self.size_bits, self.num_hashes, self.count)

    def is_saturated(self) -> bool:
        """True when the FPP estimate has reached the configured maximum."""
        return self.current_fpp() >= self.max_fpp

    def reset(self) -> None:
        """Clear all bits; lifetime statistics are preserved.

        One fresh zeroed bytearray beats writing every byte in a Python
        loop — resets fire thousands of times in the small-filter runs.
        """
        perf = self.perf
        if perf is None:
            return self._reset()
        began = perf.clock()
        try:
            return self._reset()
        finally:
            perf.account("filters.bloom", perf.clock() - began)

    def _reset(self) -> None:
        self._bits = bytearray(len(self._bits))
        self.count = 0
        self.reset_count += 1
        self.lookups_since_reset = 0
        if self.san is not None:
            self.san.bf_reset(self)

    def insert_with_auto_reset(self, item: Item) -> bool:
        """Insert, then reset if saturated.  Returns True if a reset fired."""
        self.insert(item)
        if self.is_saturated():
            self.reset()
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fill_ratio(self) -> float:
        """Fraction of bits set (exact; one big-int popcount, no
        per-byte Python loop)."""
        set_bits = _popcount(int.from_bytes(self._bits, "big"))
        return set_bits / self.size_bits

    def state_cost(self) -> dict:
        """Statescope accounting: set-bit population + deep bytes.

        The bit array *is* the filter's state — TACTIC's bounded-state
        claim in one number — so only ``_bits`` is traversed.
        """
        from repro.obs.statescope import deep_sizeof

        set_bits = _popcount(int.from_bytes(self._bits, "big"))
        return {
            "bits_set": set_bits,
            "size_bits": self.size_bits,
            "bytes": deep_sizeof(self._bits),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(capacity={self.capacity}, m={self.size_bits}, "
            f"k={self.num_hashes}, n={self.count}, fpp={self.current_fpp():.2e})"
        )
