"""Counting Bloom filter: membership with deletion.

Not used by the paper's core protocols (plain filters reset on
saturation), but provided for the traitor-tracing / explicit-revocation
extension sketched in the paper's future work: a provider could ask
routers to *remove* a specific revoked tag instead of waiting for
expiry, which requires counters rather than bits.
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.filters.params import estimate_fpp, size_for_capacity

Item = Union[bytes, bytearray, str]


def _item_bytes(item: Item) -> bytes:
    if isinstance(item, str):
        return item.encode("utf-8")
    return bytes(item)


class CountingBloomFilter:
    """Bloom filter with 16-bit counters per cell, supporting removal."""

    def __init__(
        self,
        capacity: int,
        max_fpp: float = 1e-4,
        num_hashes: int = 5,
        size_cells: int = 0,
    ) -> None:
        self.capacity = capacity
        self.max_fpp = max_fpp
        self.num_hashes = num_hashes
        self.size_cells = size_cells or size_for_capacity(capacity, max_fpp, num_hashes)
        self._cells = [0] * self.size_cells
        self.count = 0

    def _indices(self, item: Item) -> list:
        digest = hashlib.blake2b(_item_bytes(item), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        m = self.size_cells
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def insert(self, item: Item) -> None:
        for idx in self._indices(item):
            if self._cells[idx] < 0xFFFF:
                self._cells[idx] += 1
        self.count += 1

    def remove(self, item: Item) -> bool:
        """Remove one occurrence; returns False if the item was absent.

        Removing an absent item would corrupt other entries, so we check
        membership first (standard counting-filter discipline).
        """
        indices = self._indices(item)
        if any(self._cells[idx] == 0 for idx in indices):
            return False
        for idx in indices:
            self._cells[idx] -= 1
        self.count = max(0, self.count - 1)
        return True

    def contains(self, item: Item) -> bool:
        return all(self._cells[idx] > 0 for idx in self._indices(item))

    def __contains__(self, item: Item) -> bool:
        return self.contains(item)

    def current_fpp(self) -> float:
        return estimate_fpp(self.size_cells, self.num_hashes, self.count)

    def is_saturated(self) -> bool:
        return self.current_fpp() >= self.max_fpp
