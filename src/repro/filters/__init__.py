"""Probabilistic set-membership filters.

TACTIC equips every router with a Bloom filter that caches validated
tags (Section 4.B).  The paper sizes filters for a target capacity with
5 hash functions and a maximum false-positive probability of 1e-4, and
resets a filter when it saturates (its FPP estimate reaches the
maximum).  :mod:`~repro.filters.bloom` implements exactly that;
:mod:`~repro.filters.counting` adds a counting variant with deletion
(useful for the traitor-tracing extension); :mod:`~repro.filters.params`
holds the sizing math (Mullin, CACM 1983).
"""

from repro.filters.bloom import BloomFilter
from repro.filters.counting import CountingBloomFilter
from repro.filters.params import (
    estimate_fpp,
    optimal_num_hashes,
    size_for_capacity,
)

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "estimate_fpp",
    "optimal_num_hashes",
    "size_for_capacity",
]
