"""Bloom filter sizing math.

Standard results (Mullin, "A second look at Bloom filters", CACM 1983;
the paper's reference [18]): for a filter of ``m`` bits holding ``n``
elements under ``k`` hash functions, the false-positive probability is

    p = (1 - e^(-k n / m))^k

The paper fixes ``k = 5`` and a maximum FPP, then sizes ``m`` so the
filter reaches that FPP exactly when ``n`` hits the advertised capacity.
"""

from __future__ import annotations

import math


def estimate_fpp(size_bits: int, num_hashes: int, num_items: int) -> float:
    """False-positive probability of an (m, k) filter holding n items."""
    if num_items <= 0:
        return 0.0
    if size_bits <= 0:
        return 1.0
    exponent = -num_hashes * num_items / size_bits
    return (1.0 - math.exp(exponent)) ** num_hashes


def size_for_capacity(capacity: int, max_fpp: float, num_hashes: int) -> int:
    """Bits needed so FPP at ``capacity`` items equals ``max_fpp``.

    Inverts the FPP formula for fixed ``k``:
        m = -k n / ln(1 - p^(1/k))
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 0.0 < max_fpp < 1.0:
        raise ValueError(f"max_fpp must be in (0, 1), got {max_fpp}")
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    base = 1.0 - max_fpp ** (1.0 / num_hashes)
    return max(num_hashes, math.ceil(-num_hashes * capacity / math.log(base)))


def optimal_num_hashes(size_bits: int, capacity: int) -> int:
    """The k minimizing FPP for a given m/n ratio: k = (m/n) ln 2."""
    if capacity <= 0 or size_bits <= 0:
        raise ValueError("size_bits and capacity must be positive")
    return max(1, round(size_bits / capacity * math.log(2)))
