"""The fleet scheduling observatory: where parallel wall time goes.

``BENCH_parallel.json``'s one measured datapoint — ``parallel_speedup:
0.776`` on a single-core host — says the spawn-pool engine is *slower*
than serial, but nothing about why.  This module is the yardstick the
multicore overhaul (ROADMAP item 2) will be gated on, the same pattern
:mod:`repro.obs.perf` set for the sim core: measure with phase
attribution first, optimize with confidence second.

Two cooperating recorders cover the fleet:

- :class:`WorkerLifecycle` rides inside each worker run
  (:func:`repro.exec.engine._execute_spec`).  It charges wall time to
  lifecycle phases — simulator-stack import, scenario build, sim run,
  telemetry-envelope build, envelope pickling (with the byte count) —
  and stamps worker birth (module import in the spawned interpreter),
  task start, and task finish on the shared monotonic clock.  The
  record ships home inside the pickled
  :class:`~repro.exec.summary.RunSummary` (``.fleetperf``), exactly the
  telemetry-envelope round-trip, so the run cache replays it too.
- :class:`FleetPerf` rides in the parent engine.  It stamps pool open,
  per-spec submit and receive, and the parent-side cache-probe cost,
  then folds the worker records into a pool-timeline report:
  per-spec ``submitted → started → finished → received``, derived
  worker-occupancy/queue-depth samples, and per-worker lanes.

:func:`attribute_speedup` turns one report into the speedup-attribution
block embedded in ``BENCH_parallel.json``: the measured parallel wall
is decomposed into **compute** (worker phases doing real work),
**startup** (interpreter spawn + import), **serialization** (dispatch +
envelope pickle + ship-home), **imbalance** (idle worker tails),
**straggler** (the tail excess of the last-finishing run), and a
**residual** remainder (contention, parent bookkeeping, clock skew).
The six components sum to the measured wall *by construction*; the
*coverage* figure — the five measured components over the wall — is the
phase-coverage invariant (the ``BENCH_simcore`` discipline, ≥ 0.9
asserted by the benchmark).

Phase names are compile-time constants declared in
:data:`FLEETPERF_PHASES` and linted by simlint rule SL015 (the SL009
discipline for the fleet layer).

Cross-process timestamps: workers and parent both read
``time.perf_counter``, which on Linux is ``CLOCK_MONOTONIC`` — one
epoch for every process on the host, so parent-side subtraction is
meaningful.  Every derived duration is clamped at zero, so a platform
with per-process epochs degrades to under-attribution (visible as
residual), never to negative phases.

The module also carries the attribution-report CLI::

    python -m repro.obs.fleetperf report BENCH_parallel.json
    python -m repro.obs.fleetperf report CAND.json BASE.json --tolerance 25

which renders the attribution table and exits 1 on regression (coverage
below ``--min-coverage``, or speedup regressed beyond ``--tolerance``
percent against the baseline document) and 2 on bad input — the same
exit contract as ``python -m repro.obs.perf report``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "FLEETPERF_PHASES",
    "FleetPerf",
    "WorkerLifecycle",
    "attribute_speedup",
    "merge_fleetperf",
    "render_attribution",
]

#: Every phase the fleet observatory may be charged with.  simlint
#: SL015 enforces that ``charge(...)`` call sites use literals drawn
#: from this registry, so the taxonomy below is the complete vocabulary
#: of ``BENCH_parallel.json``'s fleetperf block:
#:
#: - ``fleet.spawn``    — interpreter spawn + module import, pool open
#:   to worker birth (parent-derived per worker; zero in-process).
#: - ``fleet.dispatch`` — submit to worker entry: completion-queue wait
#:   plus spec unpickling (parent-derived per run).
#: - ``fleet.cache``    — the parent's cache probes for the whole spec
#:   list (charged once per :meth:`FleetPerf` run).
#: - ``fleet.import``   — the simulator-stack import inside the worker
#:   (paid once per worker process, on its first run).
#: - ``fleet.build``    — ``spec.build()``: scenario construction.
#: - ``fleet.sim``      — ``run_scenario``: the simulation itself.
#: - ``fleet.envelope`` — summary extraction + telemetry/audit
#:   envelope attachment.
#: - ``fleet.pickle``   — pickling the finished envelope (the byte
#:   count rides the record as ``envelope_bytes``).
#: - ``fleet.ship``     — worker finish to parent receive
#:   (parent-derived per run).
#: - ``fleet.idle``     — worker idle tail while the pool drains
#:   (parent-derived per worker; the imbalance signal).
FLEETPERF_PHASES = (
    "fleet.spawn",
    "fleet.dispatch",
    "fleet.cache",
    "fleet.import",
    "fleet.build",
    "fleet.sim",
    "fleet.envelope",
    "fleet.pickle",
    "fleet.ship",
    "fleet.idle",
)

#: The worker-side phases that are *useful work* for attribution.
_COMPUTE_PHASES = ("fleet.import", "fleet.build", "fleet.sim", "fleet.envelope")

#: The attribution components, in report order.
ATTRIBUTION_COMPONENTS = (
    "compute",
    "startup",
    "serialization",
    "imbalance",
    "straggler",
    "residual",
)


def _clamp(value: float) -> float:
    return value if value > 0.0 else 0.0


class WorkerLifecycle:
    """One run's worth of worker-side lifecycle accounting.

    Created at worker entry by :func:`~repro.exec.engine._execute_spec`
    when fleetperf is on; :meth:`finalize` pickles the finished summary
    (byte accounting), stamps the finish, and returns the JSON-able
    record that rides home in ``RunSummary.fleetperf``.
    """

    __slots__ = ("clock", "module_imported_at", "started_at", "phases")

    def __init__(
        self,
        module_imported_at: float,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.clock = clock
        self.module_imported_at = module_imported_at
        self.started_at = clock()
        self.phases: Dict[str, Dict[str, float]] = {}

    def charge(self, name: str, seconds: float) -> None:
        """Charge a pre-measured interval to phase ``name`` (a literal
        from :data:`FLEETPERF_PHASES`; simlint SL015)."""
        row = self.phases.get(name)
        if row is None:
            row = self.phases[name] = {"calls": 0, "seconds": 0.0}
        row["calls"] += 1
        row["seconds"] += seconds

    def finalize(self, summary: Any) -> Dict[str, Any]:
        """Measure the envelope pickle, stamp the finish, return the
        record.  Called with ``summary.fleetperf`` still ``None`` so the
        byte count describes exactly what the pool pipe will carry
        (minus this record itself)."""
        import os
        import pickle

        began = self.clock()
        blob = pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL)
        self.charge("fleet.pickle", self.clock() - began)
        return {
            "worker_pid": os.getpid(),
            "module_imported_at": self.module_imported_at,
            "started_at": self.started_at,
            "finished_at": self.clock(),
            "envelope_bytes": len(blob),
            "phases": self.phases,
        }


class FleetPerf:
    """Parent-side pool-timeline recorder for one ``run_specs`` call.

    The engine stamps pool open, per-spec submit/receive, and parent
    phase costs (cache probes) through this object; :meth:`report`
    folds the worker records into the pool-timeline document that
    feeds :func:`attribute_speedup` and the Chrome-trace export.
    """

    def __init__(
        self,
        jobs: int,
        total: int,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.jobs = max(1, jobs)
        self.total = total
        self.clock = clock
        self.began_at = clock()
        self.pool_opened_at: Optional[float] = None
        self.cached = 0
        self.phases: Dict[str, Dict[str, float]] = {}
        self._entries: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def charge(self, name: str, seconds: float) -> None:
        """Charge a parent-side interval to phase ``name`` (SL015)."""
        row = self.phases.get(name)
        if row is None:
            row = self.phases[name] = {"calls": 0, "seconds": 0.0}
        row["calls"] += 1
        row["seconds"] += seconds

    def spec_cached(self, label: str) -> None:
        self.cached += 1

    def pool_opening(self) -> None:
        """Stamp taken immediately before the pool is constructed, so
        worker-birth minus this stamp is spawn + import."""
        self.pool_opened_at = self.clock()

    def spec_submitted(self, slot: int, label: str) -> None:
        self._entries[slot] = {
            "slot": slot,
            "label": label,
            "submitted_at": self.clock(),
        }

    def spec_received(self, slot: int, summary: Any) -> None:
        entry = self._entries.get(slot)
        if entry is None:
            return
        entry["received_at"] = self.clock()
        record = getattr(summary, "fleetperf", None) or {}
        entry["worker_pid"] = record.get("worker_pid", 0)
        entry["module_imported_at"] = record.get("module_imported_at")
        entry["started_at"] = record.get("started_at")
        entry["finished_at"] = record.get("finished_at")
        entry["envelope_bytes"] = record.get("envelope_bytes", 0)
        entry["phases"] = record.get("phases", {})

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _relative(self, stamp: Optional[float]) -> Optional[float]:
        if stamp is None:
            return None
        return stamp - self.began_at

    def report(self, wall_seconds: float) -> Dict[str, Any]:
        """The pool-timeline document, all stamps relative to the
        ``run_specs`` start on the parent clock."""
        timeline: List[Dict[str, Any]] = []
        for slot in sorted(self._entries):
            entry = self._entries[slot]
            if "received_at" not in entry:
                continue  # submitted but never completed (user abort)
            timeline.append(
                {
                    "slot": entry["slot"],
                    "label": entry["label"],
                    "worker_pid": entry.get("worker_pid", 0),
                    "worker_born": self._relative(
                        entry.get("module_imported_at")
                    ),
                    "submitted": self._relative(entry["submitted_at"]),
                    "started": self._relative(entry.get("started_at")),
                    "finished": self._relative(entry.get("finished_at")),
                    "received": self._relative(entry["received_at"]),
                    "envelope_bytes": entry.get("envelope_bytes", 0),
                    "phases": entry.get("phases", {}),
                }
            )
        return {
            "jobs": self.jobs,
            "total": self.total,
            "runs": len(timeline),
            "cached": self.cached,
            "wall_seconds": wall_seconds,
            "pool_opened": self._relative(self.pool_opened_at),
            "parent_phases": {
                name: dict(row) for name, row in sorted(self.phases.items())
            },
            "timeline": timeline,
            "occupancy": occupancy_samples(timeline),
        }


def occupancy_samples(timeline: List[Dict[str, Any]]) -> List[List[float]]:
    """``[t, busy_workers, queue_depth]`` samples at every start/finish
    boundary, derived purely from the timeline stamps."""
    deltas: List[Tuple[float, int, int]] = []
    for entry in timeline:
        submitted = entry.get("submitted")
        started = entry.get("started")
        finished = entry.get("finished")
        if submitted is not None:
            deltas.append((submitted, 0, 1))
        if started is not None:
            deltas.append((started, 1, -1))
        if finished is not None:
            deltas.append((finished, -1, 0))
    deltas.sort()
    samples: List[List[float]] = []
    busy = queued = 0
    for when, dbusy, dqueue in deltas:
        busy += dbusy
        queued += dqueue
        if samples and samples[-1][0] == when:
            samples[-1][1] = busy
            samples[-1][2] = max(0, queued)
        else:
            samples.append([when, busy, max(0, queued)])
    return samples


# ----------------------------------------------------------------------
# Fleet merging (the PR 4 contract: per-run records fold together in
# submission order, so serial and --jobs N merges agree structurally)
# ----------------------------------------------------------------------
def merge_fleetperf(into: Dict[str, Any], record: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one worker lifecycle record into an accumulator.

    Phase calls and seconds sum; ``envelope_bytes`` sums (the fleet's
    total pipe traffic); ``runs`` counts records.  ``into`` starts as
    ``{}`` and is mutated in place — the shape of
    :attr:`~repro.exec.engine.ExperimentEngine.fleet_fleetperf`.
    """
    into["runs"] = into.get("runs", 0) + 1
    into["envelope_bytes"] = (
        into.get("envelope_bytes", 0) + record.get("envelope_bytes", 0)
    )
    phases = into.setdefault("phases", {})
    for name, row in (record.get("phases") or {}).items():
        merged = phases.setdefault(name, {"calls": 0, "seconds": 0.0})
        merged["calls"] += row.get("calls", 0)
        merged["seconds"] += row.get("seconds", 0.0)
    return into


# ----------------------------------------------------------------------
# Speedup attribution
# ----------------------------------------------------------------------
def _phase_seconds(phases: Dict[str, Any], names: Tuple[str, ...]) -> float:
    return sum(
        (phases.get(name) or {}).get("seconds", 0.0) for name in names
    )


def attribute_speedup(
    report: Dict[str, Any], serial_wall: Optional[float] = None
) -> Dict[str, Any]:
    """Decompose a pool-timeline report's wall clock into components.

    All components are in *wall-equivalent* seconds: worker-slot
    seconds divided by the effective worker count ``W``, so they sum to
    the measured wall exactly (``residual`` is the remainder by
    construction, and may be slightly negative under clock skew).

    - **compute**: worker phases doing real work (import, build, sim,
      envelope) — on a contended host these walls absorb timesharing,
      which is the honest place for it.
    - **startup**: pool open to worker birth, per distinct worker.
    - **serialization**: dispatch (submit → worker entry, minus spawn
      overlap), envelope pickling, and ship-home (finish → receive).
    - **imbalance**: idle worker tails while the pool drains.
    - **straggler**: the slice of those tails attributable to the
      last-finishing run exceeding the mean run wall.
    - **residual**: everything unattributed — inter-task gaps, parent
      bookkeeping (cache probes, merges), contention not visible in
      worker walls, clock skew.

    ``coverage`` is the five measured components over the wall — the
    phase-coverage invariant (≥ 0.9 is the BENCH_parallel acceptance
    bar on a measured host).
    """
    wall = report.get("wall_seconds", 0.0)
    timeline = report.get("timeline") or []
    pool_opened = report.get("pool_opened")
    jobs = report.get("jobs", 1)
    out: Dict[str, Any] = {
        "wall_seconds": wall,
        "runs": len(timeline),
        "workers": 0,
        "components": {name: 0.0 for name in ATTRIBUTION_COMPONENTS},
        "coverage": 0.0,
        "envelope_bytes": sum(e.get("envelope_bytes", 0) for e in timeline),
    }
    if serial_wall is not None and wall > 0:
        out["serial_wall_seconds"] = serial_wall
        out["actual_speedup"] = serial_wall / wall
        out["ideal_speedup"] = float(min(jobs, len(timeline)) or 1)
        out["efficiency"] = out["actual_speedup"] / out["ideal_speedup"]
    if not timeline or wall <= 0:
        return out

    # Group the timeline into worker lanes.
    lanes: Dict[int, List[Dict[str, Any]]] = {}
    for entry in timeline:
        lanes.setdefault(entry.get("worker_pid", 0), []).append(entry)
    for lane in lanes.values():
        lane.sort(key=lambda e: e.get("started") or 0.0)
    workers = len(lanes)
    out["workers"] = workers

    compute_slot = 0.0
    startup_slot = 0.0
    serialization_slot = 0.0
    lane_ends: List[float] = []
    run_walls: List[Tuple[float, Dict[str, Any]]] = []

    for lane in lanes.values():
        born = min(
            (e["worker_born"] for e in lane if e.get("worker_born") is not None),
            default=None,
        )
        if pool_opened is not None and born is not None:
            startup_slot += _clamp(born - pool_opened)
        previous_end: Optional[float] = born
        for entry in lane:
            started = entry.get("started")
            finished = entry.get("finished")
            received = entry.get("received")
            phases = entry.get("phases") or {}
            compute_slot += _phase_seconds(phases, _COMPUTE_PHASES)
            serialization_slot += _phase_seconds(phases, ("fleet.pickle",))
            if started is not None:
                floor = entry.get("submitted", started)
                if previous_end is not None:
                    floor = max(floor, previous_end)
                serialization_slot += _clamp(started - floor)
            if finished is not None and received is not None:
                serialization_slot += _clamp(received - finished)
            if finished is not None:
                previous_end = finished
                run_walls.append(
                    (_clamp(finished - (started or finished)), entry)
                )
        if previous_end is not None:
            lane_ends.append(previous_end)

    end = max(lane_ends) if lane_ends else wall
    imbalance_slot = sum(_clamp(end - lane_end) for lane_end in lane_ends)

    # The straggler share of that idle: the last-finishing run's wall
    # beyond the mean keeps (workers - 1) lanes waiting.
    straggler_slot = 0.0
    if run_walls and workers > 1:
        mean_wall = sum(w for w, _ in run_walls) / len(run_walls)
        last_wall = max(
            run_walls, key=lambda item: item[1].get("finished") or 0.0
        )[0]
        straggler_slot = min(
            imbalance_slot, _clamp(last_wall - mean_wall) * (workers - 1)
        )
        imbalance_slot -= straggler_slot

    components = out["components"]
    components["compute"] = compute_slot / workers
    components["startup"] = startup_slot / workers
    components["serialization"] = serialization_slot / workers
    components["imbalance"] = imbalance_slot / workers
    components["straggler"] = straggler_slot / workers
    attributed = sum(
        components[name] for name in ATTRIBUTION_COMPONENTS if name != "residual"
    )
    components["residual"] = wall - attributed
    out["coverage"] = attributed / wall
    return out


# ----------------------------------------------------------------------
# Rendering + CLI (python -m repro.obs.fleetperf report ...)
# ----------------------------------------------------------------------
def render_attribution(attribution: Dict[str, Any]) -> str:
    """Human-readable attribution table for terminal output."""
    wall = attribution.get("wall_seconds", 0.0) or 0.0
    lines = [
        f"parallel wall {wall:.3f}s over {attribution.get('runs', 0)} runs "
        f"on {attribution.get('workers', 0)} worker(s), "
        f"coverage {attribution.get('coverage', 0.0):.1%}",
    ]
    if "actual_speedup" in attribution:
        lines.append(
            f"speedup {attribution['actual_speedup']:.2f}x actual vs "
            f"{attribution['ideal_speedup']:.0f}x ideal "
            f"(efficiency {attribution['efficiency']:.1%})"
        )
    lines.append(f"{'component':<14} {'wall s':>9} {'share':>7}")
    components = attribution.get("components") or {}
    for name in ATTRIBUTION_COMPONENTS:
        seconds = components.get(name, 0.0)
        share = seconds / wall if wall > 0 else 0.0
        lines.append(f"{name:<14} {seconds:>9.3f} {share:>6.1%}")
    if attribution.get("envelope_bytes"):
        lines.append(
            f"envelope traffic {attribution['envelope_bytes']:,} bytes"
        )
    return "\n".join(lines)


def _load_attribution(path: str) -> Dict[str, Any]:
    """The attribution block from a ``BENCH_parallel.json`` document, a
    raw attribution dict, or a pool-timeline report.  Raises
    ``ValueError`` when the document carries none."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a JSON object")
    if isinstance(document.get("fleetperf"), dict):
        document = document["fleetperf"]
    if "components" in document:
        return document
    if "timeline" in document:
        return attribute_speedup(document)
    raise ValueError(
        f"{path}: no fleetperf attribution block "
        f"(expected 'fleetperf', 'components', or 'timeline')"
    )


def compare_attributions(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance_pct: float = 25.0,
) -> List[str]:
    """Speedup-regression problems (empty = clean)."""
    problems: List[str] = []
    base = baseline.get("actual_speedup")
    cand = candidate.get("actual_speedup")
    if base is None or cand is None:
        problems.append("missing actual_speedup in one or both documents")
        return problems
    if base > 0 and cand < base * (1.0 - tolerance_pct / 100.0):
        delta = (1.0 - cand / base) * 100.0
        problems.append(
            f"parallel speedup regressed {delta:.1f}% "
            f"({base:.3f}x -> {cand:.3f}x, tolerance {tolerance_pct:g}%)"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.fleetperf",
        description="Speedup-attribution reports for the parallel engine "
        "(BENCH_parallel.json).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report",
        help="render a fleetperf attribution; with a baseline, gate on "
        "speedup regression",
    )
    report.add_argument("candidate", help="candidate document (BENCH_parallel.json)")
    report.add_argument(
        "baseline", nargs="?", default=None,
        help="optional baseline document to gate against",
    )
    report.add_argument(
        "--tolerance", type=float, default=25.0, metavar="PCT",
        help="max allowed speedup regression in percent (default 25)",
    )
    report.add_argument(
        "--min-coverage", type=float, default=0.9, metavar="FRAC",
        help="minimum attribution coverage (default 0.9)",
    )
    args = parser.parse_args(argv)

    try:
        candidate = _load_attribution(args.candidate)
        baseline = (
            _load_attribution(args.baseline) if args.baseline else None
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(render_attribution(candidate))
    problems: List[str] = []
    coverage = candidate.get("coverage", 0.0)
    if coverage < args.min_coverage:
        problems.append(
            f"attribution coverage {coverage:.1%} below the "
            f"{args.min_coverage:.0%} invariant"
        )
    if baseline is not None:
        problems.extend(
            compare_attributions(baseline, candidate, args.tolerance)
        )
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
