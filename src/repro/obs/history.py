"""Append-only run history and the metric-drift regression gate.

Every :meth:`~repro.exec.engine.ExperimentEngine.run_specs` call with a
history directory configured (``--history-dir`` / ``REPRO_HISTORY_DIR``)
appends one JSON line to ``<dir>/history.jsonl``:

.. code-block:: json

    {"sequence": 3, "timestamp": 1722950000.0, "figure": "fig6",
     "jobs": 4, "wall_seconds": 12.5,
     "specs": [{"fingerprint": "…", "label": "topo-1", "scheme": "tactic",
                "seed": 1, "cached": false, "wall_seconds": 1.2,
                "metrics": {"client_received": 940, "…": "…"}}]}

Specs are identified by a BLAKE2 fingerprint of their canonical JSON
(*without* the code fingerprint — history exists precisely to compare
results *across* code changes), and ``metrics`` is the summary's full
deterministic :meth:`~repro.exec.summary.RunSummary.metrics_dict`.

``python -m repro.obs.history diff`` compares the latest entry for a
figure against a baseline (the previous entry by default), failing on
any metric drift beyond ``--tolerance`` (relative; default exact) or a
wall-clock regression beyond ``--wall-tolerance`` percent.  ``make
regress`` wires this into CI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "HISTORY_DIR_ENV",
    "HISTORY_FILE",
    "RunHistory",
    "diff_entries",
    "host_metadata",
    "main",
    "spec_fingerprint",
]

HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"
HISTORY_FILE = "history.jsonl"


def host_metadata() -> Dict[str, Any]:
    """The execution host, as recorded next to every benchmark number.

    Throughput figures (``events_per_sec`` and friends) are meaningless
    across interpreters or machines, so benchmark entries and the
    ``BENCH_*.json`` documents carry this dict and ``diff`` refuses to
    compare entries whose hosts differ (see :func:`hosts_comparable`).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def hosts_comparable(baseline: dict, candidate: dict) -> bool:
    """Whether two history entries may be wall-clock-compared.

    Entries written before host stamping existed carry no ``host`` key;
    those stay comparable (there is nothing to contradict).  Once both
    sides are stamped, every recorded field must match.
    """
    base_host = baseline.get("host")
    cand_host = candidate.get("host")
    if base_host is None or cand_host is None:
        return True
    return base_host == cand_host


def spec_fingerprint(spec: Any) -> str:
    """BLAKE2 over the spec's canonical JSON (code-independent)."""
    blob = json.dumps(spec.canonical(), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=12).hexdigest()


class RunHistory:
    """One directory's append-only ``history.jsonl``."""

    def __init__(self, directory: Any) -> None:
        self.directory = Path(directory)
        self.path = self.directory / HISTORY_FILE

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(
        self,
        figure: str,
        jobs: int,
        wall_seconds: float,
        specs: Sequence[Any],
        summaries: Sequence[Any],
        timestamp: Optional[float] = None,
    ) -> dict:
        """Record one engine run; returns the appended entry."""
        entry = {
            "sequence": self._next_sequence(),
            "timestamp": time.time() if timestamp is None else timestamp,
            "figure": figure,
            "jobs": jobs,
            "wall_seconds": wall_seconds,
            "specs": [
                {
                    "fingerprint": spec_fingerprint(spec),
                    "label": summary.label,
                    "scheme": summary.scheme,
                    "seed": summary.seed,
                    "cached": summary.cached,
                    "wall_seconds": summary.wall_seconds,
                    "metrics": self._spec_metrics(summary),
                }
                for spec, summary in zip(specs, summaries)
            ],
        }
        return self._append_entry(entry)

    def append_benchmark(
        self,
        figure: str,
        label: str,
        metrics: Dict[str, Any],
        wall_seconds: float,
        timestamp: Optional[float] = None,
    ) -> dict:
        """Record one benchmark datapoint as a synthetic one-spec entry.

        Benchmarks (``benchmarks/test_simcore_throughput.py``) have no
        :class:`~repro.exec.spec.ScenarioSpec`, so the fingerprint is a
        BLAKE2 of the benchmark label — stable across runs, which is
        all ``diff`` needs to pair entries.  The metrics dict typically
        carries ``events_per_sec`` and friends; gate with
        ``python -m repro.obs.history diff --figure <figure>
        --tolerance <rel>``.
        """
        fingerprint = hashlib.blake2b(
            label.encode("utf-8"), digest_size=12
        ).hexdigest()
        entry = {
            "sequence": self._next_sequence(),
            "timestamp": time.time() if timestamp is None else timestamp,
            "figure": figure,
            "jobs": 1,
            "wall_seconds": wall_seconds,
            "host": host_metadata(),
            "specs": [
                {
                    "fingerprint": fingerprint,
                    "label": label,
                    "scheme": "benchmark",
                    "seed": 0,
                    "cached": False,
                    "wall_seconds": wall_seconds,
                    "metrics": dict(metrics),
                }
            ],
        }
        return self._append_entry(entry)

    def _append_entry(self, entry: dict) -> dict:
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True))
            fh.write("\n")
        return entry

    @staticmethod
    def _spec_metrics(summary: Any) -> Dict[str, Any]:
        """The summary's deterministic metrics, with the decision-audit
        misauthorization rates folded in when auditing was on — so the
        regression gate also fails on misauthorization drift — and the
        statescope ``state.*``/``mem.*``/``model.*`` series when the
        state observatory was on, so state-footprint growth and
        capacity-model drift gate alongside figure values."""
        metrics = dict(summary.metrics_dict())
        audit = getattr(summary, "audit", None)
        if audit:
            from repro.obs.audit import audit_metrics

            metrics.update(audit_metrics(audit))
        statescope = getattr(summary, "statescope", None)
        if statescope:
            from repro.obs.statescope import statescope_metrics

            metrics.update(statescope_metrics(statescope))
        return metrics

    def _next_sequence(self) -> int:
        entries = self.entries()
        return entries[-1]["sequence"] + 1 if entries else 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(self, figure: Optional[str] = None) -> List[dict]:
        if not self.path.exists():
            return []
        out: List[dict] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                if figure is None or entry.get("figure") == figure:
                    out.append(entry)
        return out

    def latest(self, figure: Optional[str] = None, offset: int = 0) -> Optional[dict]:
        """The newest entry (``offset=1`` = the one before it, …)."""
        entries = self.entries(figure)
        index = len(entries) - 1 - offset
        return entries[index] if 0 <= index < len(entries) else None

    def by_sequence(self, sequence: int) -> Optional[dict]:
        for entry in self.entries():
            if entry["sequence"] == sequence:
                return entry
        return None


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
def _values_match(baseline: Any, candidate: Any, rel_tol: float) -> bool:
    if isinstance(baseline, bool) or isinstance(candidate, bool):
        return baseline == candidate
    if isinstance(baseline, (int, float)) and isinstance(candidate, (int, float)):
        if baseline == 0:
            # Relative tolerance is meaningless against a zero baseline
            # (isclose's rel_tol scales with the magnitudes, so any
            # nonzero candidate would always fail — or, with abs_tol,
            # always pass).  A zero-baseline counter must stay zero.
            return candidate == 0
        return math.isclose(baseline, candidate, rel_tol=rel_tol, abs_tol=0.0)
    if isinstance(baseline, (list, tuple)) and isinstance(candidate, (list, tuple)):
        return len(baseline) == len(candidate) and all(
            _values_match(b, c, rel_tol) for b, c in zip(baseline, candidate)
        )
    return baseline == candidate


def diff_entries(
    baseline: dict,
    candidate: dict,
    rel_tol: float = 0.0,
    wall_tol_pct: Optional[float] = None,
) -> List[str]:
    """Every way ``candidate`` drifted from ``baseline`` (empty = clean).

    Specs match by fingerprint; each matched pair compares its full
    ``metrics`` dict with relative tolerance ``rel_tol``.  With
    ``wall_tol_pct`` set, the entry-level wall clock may grow at most
    that many percent over the baseline.
    """
    problems: List[str] = []
    base_specs = {spec["fingerprint"]: spec for spec in baseline["specs"]}
    cand_specs = {spec["fingerprint"]: spec for spec in candidate["specs"]}
    for fingerprint in sorted(set(base_specs) - set(cand_specs)):
        problems.append(
            f"spec {base_specs[fingerprint]['label'] or fingerprint}: "
            f"missing from candidate"
        )
    for fingerprint in sorted(set(cand_specs) - set(base_specs)):
        problems.append(
            f"spec {cand_specs[fingerprint]['label'] or fingerprint}: "
            f"missing from baseline"
        )
    for fingerprint in sorted(set(base_specs) & set(cand_specs)):
        base, cand = base_specs[fingerprint], cand_specs[fingerprint]
        name = base["label"] or fingerprint
        keys = set(base["metrics"]) | set(cand["metrics"])
        for key in sorted(keys):
            if key not in base["metrics"] or key not in cand["metrics"]:
                problems.append(f"spec {name}: metric {key} present on one side only")
                continue
            before, after = base["metrics"][key], cand["metrics"][key]
            if not _values_match(before, after, rel_tol):
                problems.append(
                    f"spec {name}: {key} drifted {before!r} -> {after!r}"
                )
    if wall_tol_pct is not None:
        before = baseline.get("wall_seconds", 0.0)
        after = candidate.get("wall_seconds", 0.0)
        if before > 0.0 and after > before * (1.0 + wall_tol_pct / 100.0):
            problems.append(
                f"wall clock regressed {before:.3f}s -> {after:.3f}s "
                f"(> {wall_tol_pct:g}% budget)"
            )
    return problems


# ----------------------------------------------------------------------
# CLI (python -m repro.obs.history)
# ----------------------------------------------------------------------
def _resolve_dir(arg: Optional[str]) -> Optional[str]:
    if arg:
        return arg
    return os.environ.get(HISTORY_DIR_ENV, "").strip() or None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Inspect and diff the experiment run history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("list", help="list recorded entries")
    show.add_argument("--history-dir", default=None,
                      help=f"history directory (default: ${HISTORY_DIR_ENV})")
    show.add_argument("--figure", default=None, help="filter by figure name")

    diff = sub.add_parser("diff", help="compare the latest run to a baseline")
    diff.add_argument("--history-dir", default=None,
                      help=f"history directory (default: ${HISTORY_DIR_ENV})")
    diff.add_argument("--figure", default=None, help="filter by figure name")
    diff.add_argument("--baseline", type=int, default=None, metavar="SEQ",
                      help="baseline sequence number (default: previous entry)")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      help="relative metric tolerance (default: exact match)")
    diff.add_argument("--wall-tolerance", type=float, default=None, metavar="PCT",
                      help="max wall-clock growth in percent (default: ignore)")
    diff.add_argument("--allow-cross-host", action="store_true",
                      help="compare entries recorded on different hosts "
                           "(throughput numbers will not be meaningful)")

    args = parser.parse_args(argv)
    directory = _resolve_dir(args.history_dir)
    if directory is None:
        print(f"error: no history directory (--history-dir or ${HISTORY_DIR_ENV})",
              file=sys.stderr)
        return 2
    history = RunHistory(directory)

    if args.command == "list":
        for entry in history.entries(args.figure):
            print(
                f"#{entry['sequence']:<4} {entry['figure'] or '-':<8} "
                f"{len(entry['specs'])} specs  "
                f"{entry['wall_seconds']:.3f}s  jobs={entry['jobs']}"
            )
        return 0

    candidate = history.latest(args.figure)
    if candidate is None:
        print("error: history has no entries", file=sys.stderr)
        return 2
    if args.baseline is not None:
        baseline = history.by_sequence(args.baseline)
        if baseline is None:
            print(f"error: no entry with sequence {args.baseline}", file=sys.stderr)
            return 2
    else:
        baseline = history.latest(args.figure, offset=1)
        if baseline is None:
            print("error: need at least two entries to diff", file=sys.stderr)
            return 2

    if not args.allow_cross_host and not hosts_comparable(baseline, candidate):
        print(
            f"error: entries #{baseline['sequence']} and "
            f"#{candidate['sequence']} were recorded on different hosts; "
            f"benchmark numbers are not comparable "
            f"(re-baseline on this host, or pass --allow-cross-host)",
            file=sys.stderr,
        )
        print(f"  baseline : {json.dumps(baseline.get('host'), sort_keys=True)}",
              file=sys.stderr)
        print(f"  candidate: {json.dumps(candidate.get('host'), sort_keys=True)}",
              file=sys.stderr)
        return 2

    problems = diff_entries(
        baseline, candidate,
        rel_tol=args.tolerance, wall_tol_pct=args.wall_tolerance,
    )
    label = args.figure or "all figures"
    if problems:
        print(f"history diff ({label}): #{baseline['sequence']} -> "
              f"#{candidate['sequence']}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"history diff ({label}): #{baseline['sequence']} -> "
          f"#{candidate['sequence']}: identical within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
