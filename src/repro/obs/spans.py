"""Interest-lifecycle spans: per-request latency decomposition.

Every Interest a client issues opens a *span*, identified by the
Interest's nonce (globally unique per process).  As the request and its
answering Data traverse the network, the substrate emits ``span.*``
trace events through the normal :class:`~repro.sim.tracing.TraceHub`:

==================  ====================================================
``span.start``      client issued the Interest
                    (``span, node, content, kind``)
``span.link``       one hop traversal; ``queue`` (wait behind earlier
                    transmissions) + ``tx`` (serialization) + ``prop``
                    (propagation) sum exactly to the hop's latency
``span.compute``    injected processing delay at a node (crypto, BF
                    work) covering ``dur`` seconds before the send
``span.serve``      a content store / origin answered the request
                    (zero-duration mark)
``span.pit.wait``   the request parked on an existing PIT entry
                    (aggregation; zero-duration mark)
``span.drop``       a link swallowed a packet of this span
``span.end``        client observed the outcome
                    (``outcome`` = data | nack | timeout | retransmit |
                    tag, plus the measured ``latency``)
==================  ====================================================

:class:`SpanBuilder` folds a record stream back into :class:`Span`
objects; :meth:`Span.decompose` splits the measured end-to-end latency
into per-kind totals plus a derived ``wait`` bucket (time the request
spent parked in PIT entries or otherwise uncovered), so the parts sum
*exactly* to the measured latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.tracing import TraceRecord

#: Every span event the substrate emits.
SPAN_EVENTS = (
    "span.start",
    "span.link",
    "span.compute",
    "span.serve",
    "span.pit.wait",
    "span.drop",
    "span.end",
)

#: Segment kinds a decomposition can contain (``wait`` is derived).
SEGMENT_KINDS = ("queue", "tx", "prop", "compute")


@dataclass
class Segment:
    """One covered slice of a span's timeline."""

    kind: str  # queue | tx | prop | compute
    start: float
    duration: float
    src: str = ""
    dst: str = ""


@dataclass
class Mark:
    """A zero-duration annotation (serve, pit.wait, drop)."""

    kind: str
    time: float
    node: str = ""
    detail: str = ""


@dataclass
class Span:
    """One Interest's reconstructed lifecycle."""

    span_id: int
    node: str = ""
    content: str = ""
    kind: str = ""  # content | registration
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    outcome: Optional[str] = None  # data | nack | timeout | retransmit | tag
    latency: Optional[float] = None
    segments: List[Segment] = field(default_factory=list)
    marks: List[Mark] = field(default_factory=list)

    @property
    def ended(self) -> bool:
        return self.outcome is not None

    def covered(self) -> float:
        """Seconds of the lifecycle explained by explicit segments."""
        return sum(segment.duration for segment in self.segments)

    def decompose(self) -> Dict[str, float]:
        """Split the measured latency into per-kind totals.

        Returns ``{queue, tx, prop, compute, wait}`` where ``wait`` is
        the derived remainder (``latency - covered``): time spent parked
        on PIT entries awaiting an aggregated answer, or otherwise not
        covered by an explicit segment.  By construction the five values
        sum exactly to ``latency`` (when the span ended; an open span
        decomposes its covered time only, with ``wait = 0``).
        """
        totals = {kind: 0.0 for kind in SEGMENT_KINDS}
        for segment in self.segments:
            totals[segment.kind] += segment.duration
        if self.latency is not None:
            totals["wait"] = self.latency - self.covered()
        else:
            totals["wait"] = 0.0
        return totals

    def hops(self) -> List[str]:
        """Node sequence of link traversals, in emission order."""
        out: List[str] = []
        for segment in self.segments:
            if segment.kind == "queue" and segment.src:
                out.append(segment.src)
        return out


class SpanBuilder:
    """Folds ``span.*`` trace records into :class:`Span` objects.

    Records arriving after a span ended are ignored — a retransmitted
    request closes its old span (outcome ``retransmit``) and opens a
    fresh one under the new nonce, but late copies of the *old* answer
    can still trickle in.
    """

    def __init__(self) -> None:
        self.spans: Dict[int, Span] = {}
        self.orphans = 0  # records whose span never started

    def _span(self, record: TraceRecord) -> Optional[Span]:
        span = self.spans.get(record.payload["span"])
        if span is None:
            self.orphans += 1
            return None
        return span if not span.ended else None

    def add(self, record: TraceRecord) -> None:
        payload = record.payload
        name = record.name
        if name == "span.start":
            self.spans[payload["span"]] = Span(
                span_id=payload["span"],
                node=payload.get("node", ""),
                content=payload.get("content", ""),
                kind=payload.get("kind", ""),
                start_time=record.time,
            )
            return
        if name == "span.link":
            span = self._span(record)
            if span is None:
                return
            src, dst = payload.get("src", ""), payload.get("dst", "")
            offset = record.time
            for kind in ("queue", "tx", "prop"):
                duration = payload[kind]
                span.segments.append(
                    Segment(kind=kind, start=offset, duration=duration, src=src, dst=dst)
                )
                offset += duration
            return
        if name == "span.compute":
            span = self._span(record)
            if span is not None:
                span.segments.append(
                    Segment(
                        kind="compute",
                        start=record.time,
                        duration=payload["dur"],
                        src=payload.get("node", ""),
                    )
                )
            return
        if name == "span.end":
            span = self._span(record)
            if span is not None:
                span.end_time = record.time
                span.outcome = payload.get("outcome")
                span.latency = payload.get("latency")
            return
        if name in ("span.serve", "span.pit.wait", "span.drop"):
            span = self._span(record)
            if span is not None:
                span.marks.append(
                    Mark(
                        kind=name[len("span."):],
                        time=record.time,
                        node=payload.get("node", payload.get("src", "")),
                        detail=payload.get("reason", ""),
                    )
                )
            return
        # Unknown span event: tolerate forward evolution.

    def add_all(self, records: Iterable[TraceRecord]) -> "SpanBuilder":
        for record in records:
            self.add(record)
        return self

    def ended(self) -> List[Span]:
        return [span for span in self.spans.values() if span.ended]


class SpanRecorder:
    """Live subscription: builds spans as the simulation runs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.builder = SpanBuilder()
        for event in SPAN_EVENTS:
            sim.trace.subscribe(event, self.builder.add)

    @property
    def spans(self) -> Dict[int, Span]:
        return self.builder.spans

    def stop(self) -> None:
        for event in SPAN_EVENTS:
            self.sim.trace.unsubscribe(event, self.builder.add)

    def state_cost(self) -> Dict[str, int]:
        """Statescope accounting: open (un-ended) spans + deep bytes of
        the whole span table — a span leak shows up in ``open``."""
        from repro.obs.statescope import deep_sizeof

        open_spans = sum(1 for span in self.builder.spans.values() if not span.ended)
        return {"open": open_spans, "bytes": deep_sizeof(self.builder.spans)}


def spans_from_records(records: Iterable[TraceRecord]) -> Dict[int, Span]:
    """Offline reconstruction from a persisted trace (JSONL round-trip)."""
    return SpanBuilder().add_all(
        record for record in records if record.name.startswith("span.")
    ).spans
