"""Chrome ``trace_event`` export for span and substrate traces.

The JSONL trace file (``--trace-out t.jsonl``) is the archival format:
one record per line, lossless, greppable.  This module renders the same
records into the Chrome trace-event JSON that ``chrome://tracing`` and
Perfetto load directly (``--trace-format=chrome``):

- one *process* per run (``pid`` = run index, named via ``process_name``
  metadata), one *thread track* per simulated node (``thread_name``);
- every ended Interest span becomes a complete ("X") slice on its
  client's track, ``args`` carrying the outcome and the
  :meth:`~repro.obs.spans.Span.decompose` latency split;
- the span's per-hop segments (queue/tx/prop/compute) nest inside it as
  child slices on the same track, clipped to the parent so the viewer's
  containment invariant holds;
- marks (serve, pit.wait, drop) and substrate records (rx/tx, cs.hit,
  pit events, link drops) render as instant ("i") events on the track
  of the node that emitted them;
- access denials get their own categories so they stand out on the
  timeline: NACK deliveries (``node.*.nack``, or Data carrying an
  attached NACK) render under ``cat: "nack"`` with the denial
  ``reason`` in ``args``, and ``audit.decision`` records render under
  ``cat: "decision"`` with the decision kind/outcome/oracle label.

Timestamps are virtual-time seconds scaled to microseconds, the unit
the trace-event spec mandates.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.spans import SpanBuilder
from repro.sim.tracing import TraceRecord

__all__ = [
    "TRACE_FORMATS",
    "chrome_trace_events",
    "fleet_trace_events",
    "perf_counter_events",
    "state_counter_events",
    "write_chrome_trace",
    "write_fleet_trace",
]

#: Accepted ``--trace-format`` values.
TRACE_FORMATS = ("jsonl", "chrome")

_MICROS = 1e6


def _node_tracks(spans: Iterable, substrate: Iterable[TraceRecord]) -> Dict[str, int]:
    """Stable node → tid mapping (sorted names, tids from 1)."""
    nodes = set()
    for span in spans:
        if span.node:
            nodes.add(span.node)
        for mark in span.marks:
            if mark.node:
                nodes.add(mark.node)
    for record in substrate:
        node = record.payload.get("node") or record.payload.get("src")
        if node:
            nodes.add(node)
    return {node: index + 1 for index, node in enumerate(sorted(nodes))}


def chrome_trace_events(
    records: Sequence[TraceRecord], pid: int = 1, run: str = ""
) -> List[dict]:
    """Render one run's trace records as Chrome trace-event dicts."""
    builder = SpanBuilder()
    substrate: List[TraceRecord] = []
    for record in records:
        if record.name.startswith("span."):
            builder.add(record)
        else:
            substrate.append(record)

    spans = [
        builder.spans[span_id]
        for span_id in sorted(builder.spans)
        if builder.spans[span_id].start_time is not None
    ]
    tids = _node_tracks(spans, substrate)

    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": run or f"run-{pid}"},
        }
    ]
    for node, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": node},
            }
        )

    for span in spans:
        tid = tids.get(span.node, 0)
        start = span.start_time
        if span.end_time is not None:
            duration = span.end_time - start
        else:
            duration = span.covered()
        events.append(
            {
                "name": span.content or f"span-{span.span_id}",
                "cat": "span",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": start * _MICROS,
                "dur": duration * _MICROS,
                "args": {
                    "span": span.span_id,
                    "kind": span.kind,
                    "outcome": span.outcome,
                    **span.decompose(),
                },
            }
        )
        limit = start + duration
        for segment in span.segments:
            seg_start = max(segment.start, start)
            seg_end = min(segment.start + segment.duration, limit)
            if seg_end < seg_start:
                continue
            events.append(
                {
                    "name": segment.kind,
                    "cat": "hop",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": seg_start * _MICROS,
                    "dur": (seg_end - seg_start) * _MICROS,
                    "args": {
                        "span": span.span_id,
                        "src": segment.src,
                        "dst": segment.dst,
                    },
                }
            )
        for mark in span.marks:
            events.append(
                {
                    "name": f"span.{mark.kind}",
                    "cat": "span",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tids.get(mark.node, tid),
                    "ts": mark.time * _MICROS,
                    "args": {"span": span.span_id, "detail": mark.detail},
                }
            )

    for record in substrate:
        node = record.payload.get("node") or record.payload.get("src") or ""
        args = dict(record.payload)
        if record.name == "audit.decision":
            category = "decision"
        elif record.name.endswith(".nack") or args.get("nack") is not None:
            category = "nack"
            args.setdefault("reason", args.get("nack"))
        else:
            category = "substrate"
        events.append(
            {
                "name": record.name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tids.get(node, 0),
                "ts": record.time * _MICROS,
                "args": args,
            }
        )
    return events


def perf_counter_events(timeline: Sequence, pid: int = 1) -> List[dict]:
    """Render a perf-observatory timeline as Chrome counter tracks.

    ``timeline`` is the observatory's ``(virtual_time, events_executed,
    {phase: cum_wall_seconds})`` snapshots.  Each snapshot becomes two
    counter ("C") samples: ``perf.phase_ms`` — wall milliseconds spent
    per phase *since the previous snapshot* (a stacked track showing
    where host time goes across virtual time) — and ``perf.events``,
    the cumulative dispatched-event count.  The ``engine.loop``
    envelope phase is omitted: its cumulative time only settles when
    the loop exits, so mid-run deltas would read as zero.
    """
    events: List[dict] = []
    previous: Dict[str, float] = {}
    for entry in timeline:
        time_s, executed, cumulative = entry[0], entry[1], entry[2]
        deltas = {
            phase: round((seconds - previous.get(phase, 0.0)) * 1e3, 6)
            for phase, seconds in sorted(cumulative.items())
            if phase != "engine.loop"
        }
        events.append(
            {
                "name": "perf.phase_ms",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": time_s * _MICROS,
                "args": deltas,
            }
        )
        events.append(
            {
                "name": "perf.events",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": time_s * _MICROS,
                "args": {"executed": executed},
            }
        )
        previous = dict(cumulative)
    return events


def state_counter_events(timeline: Sequence, pid: int = 1) -> List[dict]:
    """Render a statescope timeline as Chrome counter tracks.

    ``timeline`` is the scope's ``(virtual_time, {series: value})``
    samples.  Each sample becomes two counter ("C") events:
    ``state.bytes`` — deep bytes per component (the stacked
    memory-footprint track) — and ``state.occupancy``, the logical
    units (PIT entries/records, CS entries, BF bits set, open spans,
    pending events).
    """
    events: List[dict] = []
    for entry in timeline:
        time_s, values = entry[0], entry[1]
        bytes_args: Dict[str, float] = {}
        unit_args: Dict[str, float] = {}
        for series in sorted(values):
            if not series.startswith("state."):
                continue
            component = series[len("state."):]
            if series.endswith(".bytes"):
                if series != "state.total.bytes":
                    bytes_args[component[: -len(".bytes")]] = values[series]
            else:
                unit_args[component] = values[series]
        events.append(
            {
                "name": "state.bytes",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": time_s * _MICROS,
                "args": bytes_args,
            }
        )
        events.append(
            {
                "name": "state.occupancy",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": time_s * _MICROS,
                "args": unit_args,
            }
        )
    return events


#: The worker phases rendered as sequential child slices inside each
#: spec slice, in lifecycle order (dispatch/ship live between slices).
_FLEET_CHILD_PHASES = (
    "fleet.import",
    "fleet.build",
    "fleet.sim",
    "fleet.envelope",
    "fleet.pickle",
)


def fleet_trace_events(report: dict, pid: int = 1) -> List[dict]:
    """Render a fleet pool-timeline report as Chrome trace-event dicts.

    ``report`` is :meth:`repro.obs.fleetperf.FleetPerf.report` output.
    One *thread lane per worker pid* carries a complete ("X") slice per
    spec (``started → finished`` on the pool clock, ``args`` holding the
    slot, envelope bytes, and submit/receive stamps) with the worker's
    lifecycle phases synthesized as sequential child slices inside it —
    the viewer shows import/build/sim/envelope/pickle nested under the
    spec.  A ``fleet.occupancy`` counter ("C") track plots busy workers
    and queue depth from the report's occupancy samples.  Timestamps
    are pool-relative seconds scaled to microseconds.
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"fleet pool (jobs={report.get('jobs', 1)})"},
        }
    ]
    timeline = report.get("timeline") or []
    lanes = sorted({entry.get("worker_pid", 0) for entry in timeline})
    tids = {worker: index + 1 for index, worker in enumerate(lanes)}
    for worker, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"worker {worker}"},
            }
        )
    for entry in timeline:
        started = entry.get("started")
        finished = entry.get("finished")
        if started is None or finished is None:
            continue
        tid = tids.get(entry.get("worker_pid", 0), 0)
        events.append(
            {
                "name": entry.get("label") or f"slot-{entry.get('slot')}",
                "cat": "fleet.spec",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": started * _MICROS,
                "dur": (finished - started) * _MICROS,
                "args": {
                    "slot": entry.get("slot"),
                    "worker_pid": entry.get("worker_pid"),
                    "submitted": entry.get("submitted"),
                    "received": entry.get("received"),
                    "envelope_bytes": entry.get("envelope_bytes", 0),
                },
            }
        )
        # The worker record carries phase totals, not stamps; lay the
        # phases out back to back from the slice start (their lifecycle
        # order), clipped to the parent so containment holds.
        cursor = started
        phases = entry.get("phases") or {}
        for name in _FLEET_CHILD_PHASES:
            seconds = (phases.get(name) or {}).get("seconds", 0.0)
            if seconds <= 0.0:
                continue
            end = min(cursor + seconds, finished)
            if end <= cursor:
                break
            events.append(
                {
                    "name": name,
                    "cat": "fleet.phase",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": cursor * _MICROS,
                    "dur": (end - cursor) * _MICROS,
                    "args": {"slot": entry.get("slot")},
                }
            )
            cursor = end
    for sample in report.get("occupancy") or []:
        when, busy, queued = sample[0], sample[1], sample[2]
        events.append(
            {
                "name": "fleet.occupancy",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": when * _MICROS,
                "args": {"busy": busy, "queued": queued},
            }
        )
    return events


def write_fleet_trace(path: str, report: dict) -> int:
    """Write one fleet pool-timeline report as a Chrome trace document.
    Returns the event count."""
    events = fleet_trace_events(report)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
        fh.write("\n")
    return len(events)


def write_chrome_trace(
    path: str, runs: Sequence[Tuple[str, Sequence[TraceRecord]]]
) -> int:
    """Write a Chrome trace document covering ``runs`` (one pid each).

    ``runs`` is ``[(run_label, records), ...]`` — or, with observers
    attached, ``[(run_label, records, perf_timeline, state_timeline),
    ...]`` where the optional third element (may be None) renders as
    counter tracks via :func:`perf_counter_events` and the optional
    fourth via :func:`state_counter_events`.  Returns the event count.
    The whole document is rewritten on every call — trace-event JSON
    has no append form — so partial invocations stay loadable.
    """
    events: List[dict] = []
    for index, entry in enumerate(runs):
        run, records = entry[0], entry[1]
        counters = entry[2] if len(entry) > 2 else None
        state_counters = entry[3] if len(entry) > 3 else None
        events.extend(chrome_trace_events(records, pid=index + 1, run=run))
        if counters:
            events.extend(perf_counter_events(counters, pid=index + 1))
        if state_counters:
            events.extend(state_counter_events(state_counters, pid=index + 1))
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
        fh.write("\n")
    return len(events)
