"""The hot-path performance observatory: phase-attributed cost accounting.

ROADMAP item 1 asks for a ≥10× event-throughput overhaul; this module
is its yardstick.  A :class:`PerfObservatory` turns the sim core from a
black box into a phase-attributed cost model: the engine's observed run
loop charges heap pushes/pops, event dispatch, and per-handler-kind
execution to named *phases*, and the NDN hot path (PIT, content store,
Bloom filters, link serialization, the crypto cost model, trace
emission) charges itself to component phases via the same guard-gated
hooks the sanitizer and flight recorder use — one ``x is not None``
attribute read when disabled, nothing else.

Accounting is *nestable*: a phase entered inside another phase (Bloom
lookups inside a dispatched handler, a heap push inside link
serialization) subtracts its elapsed time from the parent's **self**
time while both keep their **cumulative** time, so the per-phase self
times partition the observed wall clock — they sum to the loop wall
time, which is what makes the ``BENCH_simcore.json`` breakdown truthful
rather than double-counted.

Phase names are compile-time constants declared in :data:`PERF_PHASES`
and linted by simlint rule SL009, the same literals-only discipline as
trace events (SL003) and metric names (SL007).

The module also carries the benchmark diff CLI::

    python -m repro.obs.perf report BENCH_A.json BENCH_B.json --tolerance 10

which prints per-phase deltas between two benchmark documents and exits
nonzero when throughput regressed beyond the tolerance — the local twin
of the CI history gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Every phase name the observatory may be charged with.  simlint SL009
#: enforces that ``perf.phase(...)`` / ``perf.account(...)`` call sites
#: use literals drawn from this registry, so the taxonomy below is the
#: complete vocabulary of ``BENCH_simcore.json``:
#:
#: - ``engine.loop``      — the whole observed run loop (the envelope;
#:   its *cumulative* time is the loop wall time, its *self* time is
#:   scheduler bookkeeping not attributed to any finer phase).
#: - ``engine.pop``       — heap pops: cancelled-event skips and the
#:   dequeue of each dispatched event.
#: - ``engine.push``      — ``schedule_at`` heap pushes.
#: - ``engine.dispatch``  — event callback execution (split further by
#:   handler ``__qualname__`` in the report's handler table).
#: - ``trace.emit``       — trace-hub record construction + delivery.
#: - ``ndn.pit``          — PIT find/insert/consume/purge.
#: - ``ndn.cs``           — content-store lookup/insert (incl. LRU).
#: - ``ndn.link``         — link serialization/transmission.
#: - ``filters.bloom``    — Bloom-filter membership/insert/reset ops.
#: - ``crypto.cost``      — crypto cost-model sampling.
PERF_PHASES = (
    "engine.loop",
    "engine.pop",
    "engine.push",
    "engine.dispatch",
    "trace.emit",
    "ndn.pit",
    "ndn.cs",
    "ndn.link",
    "filters.bloom",
    "crypto.cost",
)


def _handler_category(callback: Callable) -> str:
    return getattr(callback, "__qualname__", repr(callback))


class _PhaseHandle:
    """A reusable context manager for one phase name.

    Handles are cached per name in the observatory (phase state lives
    on the observatory's stack, not on the handle), so ``with
    perf.phase("ndn.pit"):`` costs one dict hit plus the push/pop — no
    allocation per entry.
    """

    __slots__ = ("_obs", "_name")

    def __init__(self, obs: "PerfObservatory", name: str) -> None:
        self._obs = obs
        self._name = name

    def __enter__(self) -> "_PhaseHandle":
        self._obs._push(self._name)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._obs._pop()
        return False


class PerfObservatory:
    """Nestable phase accounting over one observed simulation window.

    Attach with :meth:`install` (or set ``sim.perf`` directly for
    engine-only accounting); the engine then routes ``run()``/``step()``
    through its observed loop.  :meth:`start`/:meth:`stop` bracket the
    measured wall-clock window used for ``events_per_second`` and the
    phase-coverage figure.

    Parameters
    ----------
    clock:
        Injectable time source (tests pass a fake); components route
        their timing through ``perf.clock`` so sim-affecting modules
        never call :func:`time.perf_counter` themselves (SL001).
    timeline_interval:
        When > 0, snapshot cumulative per-phase seconds every N events
        into :attr:`timeline` — the source data for the Chrome-trace
        counter tracks (wall cost per slice of *virtual* time).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        timeline_interval: int = 0,
    ) -> None:
        self.clock = clock
        self.timeline_interval = timeline_interval
        self.calls: Dict[str, int] = {}
        self.self_seconds: Dict[str, float] = {}
        self.cum_seconds: Dict[str, float] = {}
        self.handler_calls: Dict[str, int] = {}
        self.handler_seconds: Dict[str, float] = {}
        self.events = 0
        #: ``(virtual_time, events_executed, {phase: cum_seconds})``
        #: snapshots, one every ``timeline_interval`` events.
        self.timeline: List[Tuple[float, int, Dict[str, float]]] = []
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        # Each frame is a mutable [name, start, child_elapsed] triple.
        self._stack: List[list] = []
        self._handles: Dict[str, _PhaseHandle] = {}
        self._installed: List[Tuple[Any, str]] = []

    # ------------------------------------------------------------------
    # Accounting hooks (the hot side)
    # ------------------------------------------------------------------
    def phase(self, name: str) -> _PhaseHandle:
        """Context manager charging its body to ``name`` (nestable)."""
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = _PhaseHandle(self, name)
        return handle

    def _push(self, name: str) -> None:
        self._stack.append([name, self.clock(), 0.0])

    def _push_at(self, name: str, now: float) -> None:
        """:meth:`_push` with a caller-supplied timestamp.

        The observed run loop batches its clock reads — one pair per
        event instead of one pair per phase site — and threads the
        shared readings through here and :meth:`_pop_at`.
        """
        self._stack.append([name, now, 0.0])

    def _pop_at(self, now: float, handler: Optional[Callable] = None) -> float:
        """:meth:`_pop` with a caller-supplied timestamp."""
        name, start, child = self._stack.pop()
        elapsed = now - start
        self.calls[name] = self.calls.get(name, 0) + 1
        self.cum_seconds[name] = self.cum_seconds.get(name, 0.0) + elapsed
        self.self_seconds[name] = (
            self.self_seconds.get(name, 0.0) + elapsed - child
        )
        if self._stack:
            self._stack[-1][2] += elapsed
        if handler is not None:
            category = _handler_category(handler)
            self.handler_calls[category] = self.handler_calls.get(category, 0) + 1
            self.handler_seconds[category] = (
                self.handler_seconds.get(category, 0.0) + elapsed
            )
        return elapsed

    def _pop(self, handler: Optional[Callable] = None) -> float:
        """Close the innermost phase; returns its elapsed seconds.

        ``handler`` additionally attributes the elapsed time to the
        callback's ``__qualname__`` in the handler table (the engine
        passes the dispatched event's callback here).
        """
        name, start, child = self._stack.pop()
        elapsed = self.clock() - start
        self.calls[name] = self.calls.get(name, 0) + 1
        self.cum_seconds[name] = self.cum_seconds.get(name, 0.0) + elapsed
        self.self_seconds[name] = (
            self.self_seconds.get(name, 0.0) + elapsed - child
        )
        if self._stack:
            self._stack[-1][2] += elapsed
        if handler is not None:
            category = _handler_category(handler)
            self.handler_calls[category] = self.handler_calls.get(category, 0) + 1
            self.handler_seconds[category] = (
                self.handler_seconds.get(category, 0.0) + elapsed
            )
        return elapsed

    def account(self, name: str, elapsed: float) -> None:
        """Charge a pre-measured leaf interval to ``name``.

        The cheap alternative to :meth:`phase` for call sites that
        already hold two clock reads (heap pushes, Bloom probes): the
        elapsed time lands in both self and cumulative for ``name`` and
        is subtracted from the enclosing phase's self time.  Leaf only —
        an ``account`` interval must not contain another accounted or
        phased interval, or the parent would be debited twice.
        """
        self.calls[name] = self.calls.get(name, 0) + 1
        self.cum_seconds[name] = self.cum_seconds.get(name, 0.0) + elapsed
        self.self_seconds[name] = self.self_seconds.get(name, 0.0) + elapsed
        if self._stack:
            self._stack[-1][2] += elapsed

    def note_event(self, now: float) -> None:
        """Count one dispatched event; snapshot the timeline when due."""
        self.events += 1
        interval = self.timeline_interval
        if interval and self.events % interval == 0:
            self.timeline.append((now, self.events, dict(self.cum_seconds)))

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.started_at = self.clock()

    def stop(self) -> None:
        self.stopped_at = self.clock()

    def wall_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.clock()
        return max(0.0, end - self.started_at)

    def events_per_second(self) -> float:
        wall = self.wall_seconds()
        return self.events / wall if wall > 0 else 0.0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def _attach(self, obj: Any, attr: str = "perf") -> None:
        if getattr(obj, attr, None) is self:
            return
        setattr(obj, attr, self)
        self._installed.append((obj, attr))

    def install(self, sim: Any, network: Any = None) -> None:
        """Attach to the engine, trace hub, and (when ``network`` is
        given) every node's PIT / content store / Bloom filter / cost
        model and every link — the full hot-path surface."""
        self._attach(sim)
        self._attach(sim.trace)
        if network is None:
            return
        for node in network.nodes.values():
            for attr in ("pit", "cs", "bloom", "cost_model"):
                component = getattr(node, attr, None)
                if component is not None and hasattr(component, "perf"):
                    self._attach(component)
        for link in network.links:
            self._attach(link)

    def uninstall(self) -> None:
        """Detach from everything :meth:`install` touched.

        Only clears attributes that still point at *this* observatory,
        so a later re-install (or a competing explicit observatory) is
        never clobbered.
        """
        for obj, attr in self._installed:
            if getattr(obj, attr, None) is self:
                setattr(obj, attr, None)
        self._installed = []

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, top_handlers: int = 20) -> dict:
        """JSON-serializable summary of the observed window."""
        wall = self.wall_seconds()
        self_sum = sum(self.self_seconds.values())
        denominator = self_sum or 1.0
        phases = {
            name: {
                "calls": self.calls.get(name, 0),
                "self_seconds": self.self_seconds.get(name, 0.0),
                "cum_seconds": self.cum_seconds.get(name, 0.0),
                "self_share": self.self_seconds.get(name, 0.0) / denominator,
            }
            for name in sorted(
                self.self_seconds, key=lambda n: self.self_seconds[n], reverse=True
            )
        }
        handler_total = sum(self.handler_seconds.values()) or 1.0
        ranked = sorted(
            self.handler_seconds, key=lambda c: self.handler_seconds[c], reverse=True
        )
        if top_handlers:
            ranked = ranked[:top_handlers]
        return {
            "events": self.events,
            "wall_seconds": wall,
            "events_per_second": self.events_per_second(),
            "phases": phases,
            "phase_self_sum_seconds": self_sum,
            # Fraction of the observed wall window the phase self times
            # explain; ≥0.9 is the BENCH_simcore acceptance bar.  Can
            # nudge past 1.0 when accounting happened outside the
            # start/stop window (e.g. scenario-setup schedules).
            "phase_coverage": (self_sum / wall) if wall > 0 else 0.0,
            "handlers": [
                {
                    "handler": category,
                    "calls": self.handler_calls[category],
                    "seconds": self.handler_seconds[category],
                    "share": self.handler_seconds[category] / handler_total,
                }
                for category in ranked
            ],
            "timeline": [
                [t, n, dict(cum)] for t, n, cum in self.timeline
            ],
        }

    def render(self, top_handlers: int = 10) -> str:
        """Human-readable phase + handler tables for terminal output."""
        data = self.report(top_handlers=top_handlers)
        lines = [
            f"observed {data['events']} events in {data['wall_seconds']:.3f}s wall "
            f"({data['events_per_second']:,.0f} events/sec), "
            f"phase coverage {data['phase_coverage']:.1%}",
            f"{'phase':<18} {'calls':>10} {'self s':>9} {'cum s':>9} {'share':>6}",
        ]
        for name, row in data["phases"].items():
            lines.append(
                f"{name:<18} {row['calls']:>10} {row['self_seconds']:>9.4f} "
                f"{row['cum_seconds']:>9.4f} {row['self_share']:>5.1%}"
            )
        if data["handlers"]:
            lines.append(f"{'handler':<40} {'calls':>10} {'seconds':>9} {'share':>6}")
            for row in data["handlers"]:
                lines.append(
                    f"{row['handler']:<40.40} {row['calls']:>10} "
                    f"{row['seconds']:>9.4f} {row['share']:>5.1%}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet merging (PR 4 style: workers ship reports home in the
# RunSummary telemetry envelope; the engine folds them together)
# ----------------------------------------------------------------------
def merge_perf_reports(into: dict, report: dict) -> dict:
    """Fold one :meth:`PerfObservatory.report` dict into an accumulator.

    Counts and seconds sum; shares, throughput, and coverage are
    recomputed from the merged totals.  Timelines are per-run and are
    dropped.  ``into`` starts as ``{}`` and is mutated in place.
    """
    into["events"] = into.get("events", 0) + report.get("events", 0)
    into["wall_seconds"] = into.get("wall_seconds", 0.0) + report.get(
        "wall_seconds", 0.0
    )
    phases = into.setdefault("phases", {})
    for name, row in (report.get("phases") or {}).items():
        merged = phases.setdefault(
            name, {"calls": 0, "self_seconds": 0.0, "cum_seconds": 0.0}
        )
        merged["calls"] += row.get("calls", 0)
        merged["self_seconds"] += row.get("self_seconds", 0.0)
        merged["cum_seconds"] += row.get("cum_seconds", 0.0)
    handlers = into.setdefault("handlers", {})
    for row in report.get("handlers") or []:
        merged = handlers.setdefault(row["handler"], {"calls": 0, "seconds": 0.0})
        merged["calls"] += row.get("calls", 0)
        merged["seconds"] += row.get("seconds", 0.0)
    wall = into["wall_seconds"]
    self_sum = sum(row["self_seconds"] for row in phases.values())
    into["phase_self_sum_seconds"] = self_sum
    into["phase_coverage"] = (self_sum / wall) if wall > 0 else 0.0
    into["events_per_second"] = (into["events"] / wall) if wall > 0 else 0.0
    denominator = self_sum or 1.0
    for row in phases.values():
        row["self_share"] = row["self_seconds"] / denominator
    return into


# ----------------------------------------------------------------------
# Benchmark diffing CLI: python -m repro.obs.perf report A.json B.json
# ----------------------------------------------------------------------
def _events_per_sec(doc: dict) -> Optional[float]:
    """Throughput from either a BENCH_simcore.json document
    (``events_per_sec``) or a raw observatory report
    (``events_per_second``)."""
    for key in ("events_per_sec", "events_per_second"):
        value = doc.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def compare_reports(
    baseline: dict, candidate: dict, tolerance_pct: float = 10.0
) -> Tuple[List[str], List[str]]:
    """Diff two benchmark documents.

    Returns ``(problems, lines)``: ``problems`` is non-empty when the
    candidate's throughput regressed beyond ``tolerance_pct`` percent;
    ``lines`` is the rendered per-phase delta table.
    """
    lines: List[str] = []
    problems: List[str] = []
    base_eps = _events_per_sec(baseline)
    cand_eps = _events_per_sec(candidate)
    if base_eps is not None and cand_eps is not None:
        delta = (cand_eps / base_eps - 1.0) * 100.0 if base_eps else 0.0
        lines.append(
            f"events/sec: {base_eps:,.0f} -> {cand_eps:,.0f} ({delta:+.1f}%)"
        )
        if base_eps > 0 and cand_eps < base_eps * (1.0 - tolerance_pct / 100.0):
            problems.append(
                f"throughput regressed {-delta:.1f}% "
                f"(tolerance {tolerance_pct:.1f}%)"
            )
    else:
        problems.append("missing events_per_sec in one or both documents")
    base_phases = baseline.get("phases") or {}
    cand_phases = candidate.get("phases") or {}
    names = sorted(set(base_phases) | set(cand_phases))
    if names:
        lines.append(
            f"{'phase':<18} {'base self s':>12} {'cand self s':>12} {'delta':>8}"
        )
        for name in names:
            base_self = (base_phases.get(name) or {}).get("self_seconds", 0.0)
            cand_self = (cand_phases.get(name) or {}).get("self_seconds", 0.0)
            if base_self > 0:
                delta_text = f"{(cand_self / base_self - 1.0) * 100.0:+.1f}%"
            else:
                delta_text = "new" if cand_self > 0 else "-"
            lines.append(
                f"{name:<18} {base_self:>12.4f} {cand_self:>12.4f} {delta_text:>8}"
            )
    return problems, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.perf",
        description="Diff sim-core benchmark documents (BENCH_simcore.json).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="diff two benchmark documents, phase by phase"
    )
    report.add_argument("baseline", help="baseline benchmark JSON")
    report.add_argument("candidate", help="candidate benchmark JSON")
    report.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="max allowed events/sec regression in percent (default 10)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        with open(args.candidate, "r", encoding="utf-8") as fh:
            candidate = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems, lines = compare_reports(
        baseline, candidate, tolerance_pct=args.tolerance
    )
    for line in lines:
        print(line)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
