"""Access-control decision auditing with a ground-truth oracle.

TACTIC's security argument is made of per-router authorization
decisions — Bloom-filter hits, signature verifies, the ``F``-flag
probabilistic recheck, NACK issuance, revocation denials.  This module
turns every one of them into a structured :class:`DecisionRecord` and
labels it against ground truth, so a run can *empirically* report the
paper's central claim: misauthorizations are bounded by the filter's
false-positive probability ``p_fp``.

The oracle has two halves:

- a **shadow set** per router mirroring its Bloom filter exactly
  (add on insert, clear on saturation reset).  A BF hit whose key is
  not in the shadow is a *false positive* — the only misauthorization
  TACTIC admits by design.  Every negative-truth lookup also
  accumulates the theoretical per-lookup FPP
  (:func:`repro.filters.params.estimate_fpp` at that lookup's insert
  count) and its variance, so the observed false-positive count can be
  checked against a binomial confidence interval (:func:`fp_confidence`);
- an **issued-tag registry** fed by the providers
  (:meth:`DecisionAudit.note_issued`).  Signature verdicts, NACKs, and
  skipped ``F``-rechecks are labeled against it: admitting a key that
  was never issued is a false positive, denying one that was genuinely
  issued (and not revoked) is a false negative.

Zero cost when off: routers guard every hook behind a single
``self.audit is not None`` attribute check, and no hook draws from the
simulation RNG or schedules events, so an audited run is bit-identical
to an unaudited one.  Summaries (:meth:`DecisionAudit.summary`) are
plain JSON-able dicts; :func:`merge_audit_summaries` folds them
additively in submission order, so the fleet-merged summary from
``--jobs N`` is bit-for-bit identical to a serial run's.
"""

from __future__ import annotations

import copy
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.filters.params import estimate_fpp

__all__ = [
    "AUDIT_ENV",
    "AUDIT_OUT_ENV",
    "DECISION_KINDS",
    "DecisionAudit",
    "DecisionRecord",
    "audit_enabled",
    "audit_metrics",
    "fp_confidence",
    "maybe_audit",
    "merge_audit_summaries",
    "render_audit_report",
]

#: Environment opt-ins (set by the ``--audit-out`` CLI flag and
#: inherited by spawned engine workers).
AUDIT_ENV = "REPRO_AUDIT"
AUDIT_OUT_ENV = "REPRO_AUDIT_OUT"

#: Every decision kind the audit stream may carry.  simlint rule SL008
#: checks the literal first argument of each ``record_decision(...)``
#: call site against this registry, so a typo'd kind fails lint instead
#: of silently forking the decision namespace.
DECISION_KINDS = (
    "bf_hit",
    "bf_miss",
    "sig_verify",
    "f_recheck",
    "nack",
    "revoked",
)

#: Oracle labels.
LABEL_CORRECT = "correct"
LABEL_FALSE_POSITIVE = "false_positive"
LABEL_FALSE_NEGATIVE = "false_negative"


@dataclass(frozen=True)
class DecisionRecord:
    """One access-control decision, fully attributed."""

    node: str
    role: str
    kind: str
    outcome: str
    label: str
    tag_key: str
    cost: float
    time: float

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "role": self.role,
            "kind": self.kind,
            "outcome": self.outcome,
            "label": self.label,
            "tag_key": self.tag_key,
            "cost": self.cost,
            "time": self.time,
        }


@dataclass
class _NodeAudit:
    """Per-router oracle state and decision tallies."""

    role: str = "core"
    #: ``(kind, outcome, label) -> count``.
    decisions: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    #: Exact mirror of the router's Bloom-filter contents.
    shadow: Set[bytes] = field(default_factory=set)
    bf_negative_lookups: int = 0
    bf_false_positives: int = 0
    #: Sum of the theoretical per-lookup FPP over negative-truth
    #: lookups (the binomial mean), and its variance sum p(1-p).
    expected_fp_sum: float = 0.0
    expected_fp_var: float = 0.0


class DecisionAudit:
    """The decision-record stream plus its ground-truth oracle.

    Parameters
    ----------
    max_records:
        Full :class:`DecisionRecord` retention cap (0 = aggregate-only;
        counts and oracle state are always kept).
    sink:
        Optional callback receiving every record as it is made — the
        flight recorder's tap.
    """

    def __init__(
        self,
        max_records: int = 0,
        sink: Optional[Callable[[DecisionRecord], None]] = None,
    ) -> None:
        self.max_records = max_records
        self.sink = sink
        self.records: List[DecisionRecord] = []
        self.records_dropped = 0
        self._nodes: Dict[str, _NodeAudit] = {}
        #: Cache keys of genuinely issued tags (fed by the providers).
        self._issued: Set[bytes] = set()
        #: Cache keys revoked on any router.
        self._revoked: Set[bytes] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network: Any) -> "DecisionAudit":
        """Point every TACTIC router in ``network`` at this audit."""
        for node in network.nodes.values():
            if getattr(node, "bloom", None) is None:
                continue
            node.audit = self
            self._state(node)
        return self

    def _role_of(self, node: Any) -> str:
        if getattr(node, "directory", None) is not None:
            return "provider"
        if getattr(node, "is_edge", False):
            return "edge"
        return "core"

    def _state(self, node: Any) -> _NodeAudit:
        state = self._nodes.get(node.node_id)
        if state is None:
            state = _NodeAudit(role=self._role_of(node))
            self._nodes[node.node_id] = state
        return state

    # ------------------------------------------------------------------
    # Oracle feeds
    # ------------------------------------------------------------------
    def note_issued(self, tag: Any) -> None:
        """Register a genuinely issued tag (provider hook)."""
        self._issued.add(tag.cache_key())

    def note_revoked(self, node: Any, key: bytes) -> None:
        """Register an administrative revocation (router hook)."""
        self._revoked.add(key)
        self.record_decision("revoked", node, tag_key=key, outcome="blacklist")

    def _genuinely_valid(self, key: bytes) -> bool:
        return key in self._issued and key not in self._revoked

    # ------------------------------------------------------------------
    # Decision entry points (one per enforcement site)
    # ------------------------------------------------------------------
    def note_bf_lookup(self, node: Any, key: bytes, found: bool, cost: float) -> None:
        """A Bloom-filter membership test, oracle-checked via the shadow."""
        state = self._state(node)
        truth = key in state.shadow
        if not truth:
            state.bf_negative_lookups += 1
            bloom = node.bloom
            p = estimate_fpp(bloom.size_bits, bloom.num_hashes, bloom.count)
            state.expected_fp_sum += p
            state.expected_fp_var += p * (1.0 - p)
        if found:
            label = LABEL_CORRECT if truth else LABEL_FALSE_POSITIVE
            if not truth:
                state.bf_false_positives += 1
            self.record_decision(
                "bf_hit", node, tag_key=key, outcome="hit", label=label, cost=cost
            )
        else:
            # Bloom filters have no false negatives; a miss on a
            # shadow-present key would mean out-of-band bit clearing.
            label = LABEL_CORRECT if not truth else LABEL_FALSE_NEGATIVE
            self.record_decision(
                "bf_miss", node, tag_key=key, outcome="miss", label=label, cost=cost
            )

    def note_bf_insert(self, node: Any, key: bytes, reset_fired: bool) -> None:
        """Mirror an insert (and any saturation reset) into the shadow."""
        state = self._state(node)
        if reset_fired:
            # The auto-reset wipes the filter *after* the insert, so the
            # just-inserted key is gone too.
            state.shadow.clear()
        else:
            state.shadow.add(key)

    def note_sig_verify(self, node: Any, tag: Any, valid: bool, cost: float) -> None:
        """A full signature verification, labeled against issuance."""
        key = tag.cache_key()
        truth = self._genuinely_valid(key)
        if valid:
            label = LABEL_CORRECT if truth else LABEL_FALSE_POSITIVE
        else:
            label = LABEL_CORRECT if not truth else LABEL_FALSE_NEGATIVE
        self.record_decision(
            "sig_verify",
            node,
            tag_key=key,
            outcome="valid" if valid else "invalid",
            label=label,
            cost=cost,
        )

    def note_f_recheck(self, node: Any, tag: Any, fired: bool, flag: float) -> None:
        """The probabilistic ``F``-flag recheck decision (Protocols 3/4).

        Skipping the recheck *admits* the tag on the edge's word; when
        the tag was never genuinely issued that skip is the
        misauthorization the F-flag collaboration exists to bound.
        """
        key = tag.cache_key() if tag is not None else b""
        if fired:
            label = LABEL_CORRECT
        else:
            label = (
                LABEL_CORRECT if self._genuinely_valid(key) else LABEL_FALSE_POSITIVE
            )
        self.record_decision(
            "f_recheck",
            node,
            tag_key=key,
            outcome="fired" if fired else "skipped",
            label=label,
            cost=flag,
        )

    def note_nack(self, node: Any, key: bytes, reason: Any) -> None:
        """A NACK issuance; NACKing a genuinely valid tag is a false
        negative (the oracle's view — expiry and path checks may still
        be right to deny, which the outcome field preserves)."""
        label = (
            LABEL_FALSE_NEGATIVE if self._genuinely_valid(key) else LABEL_CORRECT
        )
        self.record_decision(
            "nack",
            node,
            tag_key=key,
            outcome=getattr(reason, "value", str(reason)),
            label=label,
        )

    # ------------------------------------------------------------------
    # The uniform record sink (SL008 checks the literal kind argument)
    # ------------------------------------------------------------------
    def record_decision(
        self,
        kind: str,
        node: Any,
        tag_key: bytes = b"",
        outcome: str = "",
        label: str = LABEL_CORRECT,
        cost: float = 0.0,
    ) -> None:
        """Count one decision; materialise a full record only when a
        consumer (retention, sink, or trace subscriber) wants it."""
        state = self._state(node)
        tally_key = (kind, outcome, label)
        state.decisions[tally_key] = state.decisions.get(tally_key, 0) + 1

        trace = node.sim.trace
        wants_trace = trace.wants("audit.decision")
        keep = self.max_records > 0
        if not (keep or self.sink is not None or wants_trace):
            return
        now = node.sim.now
        record = DecisionRecord(
            node=node.node_id,
            role=state.role,
            kind=kind,
            outcome=outcome,
            label=label,
            tag_key=tag_key.hex()[:16],
            cost=cost,
            time=now,
        )
        if keep:
            if len(self.records) < self.max_records:
                self.records.append(record)
            else:
                self.records_dropped += 1
        if self.sink is not None:
            self.sink(record)
        if wants_trace:
            trace.emit(
                "audit.decision",
                now,
                node=record.node,
                role=record.role,
                decision=kind,
                outcome=outcome,
                label=label,
                tag=record.tag_key,
                cost=cost,
            )

    def state_cost(self) -> Dict[str, int]:
        """Statescope accounting: oracle shadow-set population + deep
        bytes (per-node Bloom shadows plus the issued/revoked sets)."""
        from repro.obs.statescope import deep_sizeof

        seen: set = set()
        shadow = sum(len(state.shadow) for state in self._nodes.values())
        size = deep_sizeof(self._issued, seen) + deep_sizeof(self._revoked, seen)
        for state in self._nodes.values():
            size += deep_sizeof(state.shadow, seen)
        return {
            "shadow": shadow,
            "issued": len(self._issued),
            "revoked": len(self._revoked),
            "bytes": size,
        }

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The whole audit as deterministic, JSON-able plain data."""
        nodes: Dict[str, Any] = {}
        for node_id in sorted(self._nodes):
            state = self._nodes[node_id]
            nodes[node_id] = {
                "role": state.role,
                "decisions": {
                    "|".join(key): state.decisions[key]
                    for key in sorted(state.decisions)
                },
                "bf_negative_lookups": state.bf_negative_lookups,
                "bf_false_positives": state.bf_false_positives,
                "expected_fp_sum": state.expected_fp_sum,
                "expected_fp_var": state.expected_fp_var,
            }
        return {
            "nodes": nodes,
            "totals": _totals(nodes),
            "issued_tags": len(self._issued),
            "revoked_tags": len(self._revoked),
        }


def _totals(nodes: Dict[str, Any]) -> Dict[str, Any]:
    totals = {
        "decisions": 0,
        LABEL_CORRECT: 0,
        LABEL_FALSE_POSITIVE: 0,
        LABEL_FALSE_NEGATIVE: 0,
        "bf_negative_lookups": 0,
        "bf_false_positives": 0,
        "expected_fp_sum": 0.0,
        "expected_fp_var": 0.0,
    }
    for node_id in sorted(nodes):
        node = nodes[node_id]
        for key, count in node["decisions"].items():
            label = key.rsplit("|", 1)[-1]
            totals["decisions"] += count
            if label in totals:
                totals[label] += count
        totals["bf_negative_lookups"] += node["bf_negative_lookups"]
        totals["bf_false_positives"] += node["bf_false_positives"]
        totals["expected_fp_sum"] += node["expected_fp_sum"]
        totals["expected_fp_var"] += node["expected_fp_var"]
    return totals


def merge_audit_summaries(
    into: Dict[str, Any], summary: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold ``summary`` into ``into`` additively (in place).

    Calling this over per-run summaries *in submission order* gives a
    fleet merge that is bit-for-bit identical between serial and
    parallel execution: integer counts are order-free and the float
    accumulators are summed in one fixed order.
    """
    if not into:
        into.update(copy.deepcopy(summary))
        return into
    nodes = into.setdefault("nodes", {})
    for node_id, node in summary.get("nodes", {}).items():
        target = nodes.get(node_id)
        if target is None:
            nodes[node_id] = copy.deepcopy(node)
            continue
        decisions = target["decisions"]
        for key, count in node["decisions"].items():
            decisions[key] = decisions.get(key, 0) + count
        target["decisions"] = {key: decisions[key] for key in sorted(decisions)}
        for key in (
            "bf_negative_lookups",
            "bf_false_positives",
            "expected_fp_sum",
            "expected_fp_var",
        ):
            target[key] += node[key]
    into["nodes"] = {node_id: nodes[node_id] for node_id in sorted(nodes)}
    into["totals"] = _totals(into["nodes"])
    into["issued_tags"] = into.get("issued_tags", 0) + summary.get("issued_tags", 0)
    into["revoked_tags"] = into.get("revoked_tags", 0) + summary.get("revoked_tags", 0)
    return into


def fp_confidence(
    summary: Dict[str, Any], z: float = 1.96, slack: float = 0.5
) -> Dict[str, Any]:
    """Binomial CI check: observed BF false positives vs theory.

    Each negative-truth lookup ``i`` is a Bernoulli trial with success
    probability ``p_i`` = the filter's FPP estimate at that lookup's
    insert count; the observed false-positive count should fall within
    ``z`` standard deviations of ``sum(p_i)`` (variance
    ``sum(p_i * (1 - p_i))``).  ``slack`` is a continuity correction for
    the discreteness of the count.  Returns per-node stats plus the
    fleet aggregate under ``"fleet"``.
    """
    out: Dict[str, Any] = {"nodes": {}, "fleet": None}
    fleet = {"lookups": 0, "observed": 0, "expected": 0.0, "variance": 0.0}
    for node_id in sorted(summary.get("nodes", {})):
        node = summary["nodes"][node_id]
        n = node["bf_negative_lookups"]
        observed = node["bf_false_positives"]
        expected = node["expected_fp_sum"]
        variance = node["expected_fp_var"]
        fleet["lookups"] += n
        fleet["observed"] += observed
        fleet["expected"] += expected
        fleet["variance"] += variance
        out["nodes"][node_id] = _ci_entry(n, observed, expected, variance, z, slack)
    out["fleet"] = _ci_entry(
        fleet["lookups"],
        fleet["observed"],
        fleet["expected"],
        fleet["variance"],
        z,
        slack,
    )
    return out


def _ci_entry(
    lookups: int,
    observed: int,
    expected: float,
    variance: float,
    z: float,
    slack: float,
) -> Dict[str, Any]:
    halfwidth = z * math.sqrt(max(variance, 0.0)) + slack
    return {
        "lookups": lookups,
        "observed_fp": observed,
        "expected_fp": expected,
        "empirical_rate": observed / lookups if lookups else 0.0,
        "expected_rate": expected / lookups if lookups else 0.0,
        "ci_halfwidth": halfwidth,
        "within_ci": abs(observed - expected) <= halfwidth,
    }


def audit_metrics(summary: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a summary into ``audit.*`` metrics for the run history.

    These ride the history entry's per-spec metrics dict, so the
    regression gate (``python -m repro.obs.history diff``) also fails
    on misauthorization-rate drift.
    """
    totals = summary.get("totals", {})
    out: Dict[str, Any] = {
        "audit.decisions_total": totals.get("decisions", 0),
        "audit.false_positives": totals.get(LABEL_FALSE_POSITIVE, 0),
        "audit.false_negatives": totals.get(LABEL_FALSE_NEGATIVE, 0),
        "audit.bf_negative_lookups": totals.get("bf_negative_lookups", 0),
        "audit.bf_false_positives": totals.get("bf_false_positives", 0),
    }
    for node_id in sorted(summary.get("nodes", {})):
        node = summary["nodes"][node_id]
        n = node["bf_negative_lookups"]
        out[f"audit.{node_id}.bf_misauth_rate"] = (
            node["bf_false_positives"] / n if n else 0.0
        )
    return out


def render_audit_report(summary: Dict[str, Any]) -> List[str]:
    """Human-readable end-of-run report lines (per node + fleet)."""
    confidence = fp_confidence(summary)
    lines = ["access-control decision audit"]
    totals = summary.get("totals", {})
    lines.append(
        f"  decisions={totals.get('decisions', 0)} "
        f"correct={totals.get(LABEL_CORRECT, 0)} "
        f"false_positive={totals.get(LABEL_FALSE_POSITIVE, 0)} "
        f"false_negative={totals.get(LABEL_FALSE_NEGATIVE, 0)}"
    )
    for node_id in sorted(summary.get("nodes", {})):
        node = summary["nodes"][node_id]
        entry = confidence["nodes"][node_id]
        verdict = "ok" if entry["within_ci"] else "OUT-OF-CI"
        lines.append(
            f"  {node_id:10s} [{node['role']:8s}] "
            f"bf_fp={entry['observed_fp']}/{entry['lookups']} "
            f"(empirical {entry['empirical_rate']:.2e} vs theoretical "
            f"{entry['expected_rate']:.2e}) {verdict}"
        )
    fleet = confidence["fleet"]
    verdict = "ok" if fleet["within_ci"] else "OUT-OF-CI"
    lines.append(
        f"  fleet      bf_fp={fleet['observed_fp']}/{fleet['lookups']} "
        f"(empirical {fleet['empirical_rate']:.2e} vs theoretical "
        f"{fleet['expected_rate']:.2e}) {verdict}"
    )
    return lines


# ----------------------------------------------------------------------
# Environment gating (runner hook)
# ----------------------------------------------------------------------
def audit_enabled() -> bool:
    """True when ``REPRO_AUDIT`` / ``REPRO_AUDIT_OUT`` opts auditing in."""
    raw = os.environ.get(AUDIT_ENV, "").strip().lower()
    if raw and raw not in ("0", "false", "no", "off"):
        return True
    return bool(os.environ.get(AUDIT_OUT_ENV, "").strip())


def maybe_audit() -> Optional[DecisionAudit]:
    """A fresh :class:`DecisionAudit` iff the environment opts in."""
    if not audit_enabled():
        return None
    return DecisionAudit()
