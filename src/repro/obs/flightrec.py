"""Simulation flight recorder: a bounded ring of recent events with
post-mortem dumps.

A :class:`FlightRecorder` subscribes to the substrate trace hub with a
wildcard, keeping the last *N* trace records (and, when auditing is on,
the last *N* access-control decision records) in a ``deque``.  When
something goes wrong — a SimSan invariant trips, the NACK rate crosses
a storm threshold, or the operator asks via ``--flightrec-dump`` — it
writes a post-mortem bundle: the ring contents, per-node PIT/CS/Bloom
snapshots, and the spans still in flight at dump time.

Zero cost when off is inherited from the trace hub's design: with no
recorder installed there is no ``"*"`` subscriber, ``trace.active``
stays false, and every emission site in the substrate short-circuits on
a single attribute check.  Installing a recorder is what flips those
sites on — the recorder *is* the cost, there is no residual overhead in
the off state.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_NACK_THRESHOLD",
    "DEFAULT_NACK_WINDOW",
    "DEFAULT_RING_SIZE",
    "FLIGHTREC_DUMP_ENV",
    "FLIGHTREC_ENV",
    "FLIGHTREC_SIZE_ENV",
    "FlightRecorder",
    "maybe_flightrec",
]

#: Environment opt-ins (set by the CLI flags and inherited by spawned
#: engine workers).  ``REPRO_FLIGHTREC`` holds the bundle directory.
FLIGHTREC_ENV = "REPRO_FLIGHTREC"
FLIGHTREC_SIZE_ENV = "REPRO_FLIGHTREC_SIZE"
FLIGHTREC_DUMP_ENV = "REPRO_FLIGHTREC_DUMP"

DEFAULT_RING_SIZE = 512
#: NACK-storm trigger: this many NACK deliveries observed inside the
#: sliding virtual-time window.
DEFAULT_NACK_THRESHOLD = 50
DEFAULT_NACK_WINDOW = 1.0


def _jsonable(value: Any) -> Any:
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class FlightRecorder:
    """Bounded event ring + post-mortem bundle writer.

    Parameters
    ----------
    directory:
        Where bundles land (created on first dump).
    size:
        Ring capacity, in records.
    nack_threshold / nack_window:
        NACK-storm trigger: dump (once) when ``nack_threshold`` NACK
        deliveries are observed within ``nack_window`` sim seconds.
    label:
        Run label baked into bundle filenames.
    dump_on_exit:
        Force a bundle at :meth:`finish` even without a trigger (the
        ``--flightrec-dump`` CLI flag).
    """

    def __init__(
        self,
        directory: str,
        size: int = DEFAULT_RING_SIZE,
        nack_threshold: int = DEFAULT_NACK_THRESHOLD,
        nack_window: float = DEFAULT_NACK_WINDOW,
        label: str = "",
        dump_on_exit: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.size = size
        self.nack_threshold = nack_threshold
        self.nack_window = nack_window
        self.label = label
        self.dump_on_exit = dump_on_exit
        self.ring: deque = deque(maxlen=size)
        #: Paths of every bundle written, in order.
        self.dumps: List[Path] = []
        self._sim: Any = None
        self._network: Any = None
        self._active_spans: Dict[int, Dict[str, Any]] = {}
        self._nack_times: deque = deque()
        self._storm_dumped = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, sim: Any, network: Any = None) -> "FlightRecorder":
        """Subscribe to every trace event on ``sim`` (and remember the
        network for table snapshots)."""
        self._sim = sim
        self._network = network
        sim.trace.subscribe("*", self._on_trace)
        return self

    def _on_trace(self, record: Any) -> None:
        self.ring.append((record.name, record.time, record.payload))
        name = record.name
        if name == "span.start":
            span = record.payload.get("span")
            if span is not None:
                self._active_spans[span] = {"started": record.time, **record.payload}
        elif name == "span.end":
            self._active_spans.pop(record.payload.get("span"), None)
        elif name == "node.tx.nack" or (
            name == "node.tx.data" and record.payload.get("nack") is not None
        ):
            self._note_nack(record.time)

    def on_decision(self, record: Any) -> None:
        """Audit sink: ride decision records on the same ring."""
        self.ring.append(("audit.decision", record.time, record.to_json_dict()))

    def _note_nack(self, now: float) -> None:
        times = self._nack_times
        times.append(now)
        horizon = now - self.nack_window
        while times and times[0] < horizon:
            times.popleft()
        if len(times) >= self.nack_threshold and not self._storm_dumped:
            self._storm_dumped = True
            self.dump("nack-storm")

    # ------------------------------------------------------------------
    # The bundle
    # ------------------------------------------------------------------
    def _node_snapshots(self) -> Dict[str, Any]:
        nodes: Dict[str, Any] = {}
        if self._network is None:
            return nodes
        for node_id in sorted(self._network.nodes):
            node = self._network.nodes[node_id]
            snap: Dict[str, Any] = {}
            pit = getattr(node, "pit", None)
            if pit is not None:
                snap["pit_entries"] = len(pit)
            cs = getattr(node, "cs", None)
            if cs is not None:
                snap["cs"] = {"entries": len(cs), "hits": cs.hits, "misses": cs.misses}
            bloom = getattr(node, "bloom", None)
            if bloom is not None:
                snap["bf"] = {
                    "count": bloom.count,
                    "size_bits": bloom.size_bits,
                    "fill_ratio": bloom.fill_ratio(),
                    "current_fpp": bloom.current_fpp(),
                    "resets": bloom.reset_count,
                }
            if snap:
                nodes[node_id] = snap
        return nodes

    def bundle(self, reason: str) -> Dict[str, Any]:
        """The post-mortem as plain data (what :meth:`dump` writes)."""
        return {
            "reason": reason,
            "label": self.label,
            "time": self._sim.now if self._sim is not None else 0.0,
            "events_executed": getattr(self._sim, "events_executed", 0),
            "ring": [
                {"name": name, "time": time, "payload": _jsonable(payload)}
                for name, time, payload in self.ring
            ],
            "active_spans": {
                str(span): _jsonable(info)
                for span, info in sorted(self._active_spans.items())
            },
            "nodes": self._node_snapshots(),
        }

    def dump(self, reason: str) -> Path:
        """Write one bundle and return its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        stem = f"flightrec-{self.label}-" if self.label else "flightrec-"
        path = self.directory / f"{stem}{len(self.dumps):03d}.json"
        with open(path, "w") as handle:
            json.dump(self.bundle(reason), handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.dumps.append(path)
        return path

    def finish(self) -> None:
        """End-of-run hook: honour the forced-dump request."""
        if self.dump_on_exit:
            self.dump("on-demand")


def maybe_flightrec(label: str = "") -> Optional[FlightRecorder]:
    """A recorder configured from the environment, or ``None`` when the
    ``REPRO_FLIGHTREC`` opt-in (the bundle directory) is unset."""
    directory = os.environ.get(FLIGHTREC_ENV, "").strip()
    if not directory:
        return None
    size = DEFAULT_RING_SIZE
    raw_size = os.environ.get(FLIGHTREC_SIZE_ENV, "").strip()
    if raw_size:
        try:
            size = max(1, int(raw_size))
        except ValueError:
            pass
    dump_on_exit = os.environ.get(FLIGHTREC_DUMP_ENV, "").strip() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )
    return FlightRecorder(
        directory, size=size, label=label, dump_on_exit=dump_on_exit
    )
