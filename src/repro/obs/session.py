"""Per-run telemetry sessions: the glue between flags and instruments.

``python -m repro`` translates its ``--metrics-out`` / ``--trace-out``
/ ``--sample-interval`` / ``--profile`` flags into one
:class:`TelemetryConfig` and installs it as the process default via
:func:`set_default_telemetry`.  The experiment runner then attaches a
:class:`TelemetrySession` to every scenario it executes: the session
wires a fresh :class:`~repro.obs.metrics.MetricsRegistry`, a trace
recorder over the known substrate events *plus* the ``span.*``
lifecycle events, a periodic sampler, and the wall-clock profiler —
whichever subset the config enables — and, at :meth:`~TelemetrySession.
finalize`, bridges the run's router :class:`~repro.core.metrics.
OpCounters` and user totals into labeled counters before persisting.

Artifacts accumulate across the runs of one invocation:

- the metrics file is a single JSON document ``{"runs": [...]}``,
  rewritten after every run so a killed invocation still leaves a
  parseable file;
- the trace file is JSONL, one record per line, each carrying a
  ``run`` field naming the scenario it came from.

With no default config installed (the normal case), every hook in this
module is a no-op and runs behave byte-for-byte as before.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SimProfiler
from repro.obs.samplers import PeriodicSampler
from repro.obs.spans import SPAN_EVENTS
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceRecord

#: OpCounters fields bridged into ``tactic_router_ops_total``.
ROUTER_OPS = (
    "bf_lookups",
    "bf_inserts",
    "signature_verifications",
    "client_sig_verifications",
    "bf_resets",
    "precheck_drops",
    "access_path_drops",
    "nacks_issued",
)

#: UserStats fields bridged into ``user_outcomes_total``.
USER_OUTCOMES = (
    "chunks_requested",
    "chunks_received",
    "chunks_usable",
    "nacks_received",
    "timeouts",
    "retransmissions",
    "tags_requested",
    "tags_received",
)


@dataclass
class TelemetryConfig:
    """What to collect and where to put it; all-off by default."""

    metrics_path: Optional[str] = None
    trace_path: Optional[str] = None
    #: ``jsonl`` (one record per line) or ``chrome`` (a Chrome
    #: ``trace_event`` document for chrome://tracing / Perfetto).
    trace_format: str = "jsonl"
    sample_interval: Optional[float] = None
    profile: bool = False
    #: Attach the :class:`~repro.obs.perf.PerfObservatory` (phase-level
    #: hot-path accounting; the ``--perf`` flag).
    perf: bool = False
    #: Collapsed-stack output path for the statistical sampler (the
    #: ``--flame-out`` flag); setting it implies sampling.
    flame_path: Optional[str] = None
    #: Sample without writing a file — collect mode uses this so worker
    #: stacks ride the telemetry envelope home.
    flame: bool = False
    #: Stack-sampling period in seconds.
    flame_interval: float = 0.005
    #: Wall-clock heartbeat period in seconds (0 = off); requires
    #: ``profile`` since the pulse rides the profiled loop.
    heartbeat: float = 0.0
    #: Stream for profiler reports and heartbeats (None = stderr).
    stream: Optional[object] = None
    #: In-memory envelope mode: collect metrics/profile into the
    #: session's ``record`` without writing files or printing reports.
    #: Pool workers use this to ship telemetry back inside the pickled
    #: :class:`~repro.exec.summary.RunSummary`.
    collect: bool = False
    _writer: Optional["TelemetryWriter"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def enabled(self) -> bool:
        return bool(
            self.metrics_path
            or self.trace_path
            or self.sample_interval
            or self.profile
            or self.perf
            or self.flame_path
            or self.flame
            or self.collect
        )

    def writer(self) -> "TelemetryWriter":
        if self._writer is None:
            self._writer = TelemetryWriter(self)
        return self._writer


class TelemetryWriter:
    """Accumulates run records and persists them incrementally."""

    def __init__(self, config: TelemetryConfig) -> None:
        self.config = config
        self.runs: List[dict] = []
        self._trace_started = False
        self._trace_runs: List[tuple] = []
        self._flame_stacks: dict = {}

    def add_run(self, record: dict) -> None:
        self.runs.append(record)
        if self.config.metrics_path:
            with open(self.config.metrics_path, "w", encoding="utf-8") as fh:
                json.dump({"runs": self.runs}, fh, indent=2)
                fh.write("\n")

    def add_flame(self, stacks: dict) -> None:
        """Merge one run's collapsed stacks and rewrite the flame file
        (counts sum across runs, the natural flamegraph aggregation)."""
        from repro.obs.profiler import merge_collapsed, write_collapsed

        merge_collapsed(self._flame_stacks, stacks)
        if self.config.flame_path:
            write_collapsed(self.config.flame_path, self._flame_stacks)

    def append_trace(
        self,
        records: Iterable[TraceRecord],
        run: str,
        counters: Optional[list] = None,
        state_counters: Optional[list] = None,
    ) -> int:
        """Persist one run's trace records.

        ``counters`` optionally carries the perf observatory's timeline
        (``(virtual_time, events, {phase: cum_seconds})`` snapshots)
        and ``state_counters`` the statescope timeline
        (``(virtual_time, {series: value})`` samples); the chrome
        format renders both as counter tracks alongside the event
        slices, the jsonl format ignores them.
        """
        if not self.config.trace_path:
            return 0
        if self.config.trace_format == "chrome":
            # Chrome's trace_event container is a single JSON document,
            # so each run rewrites the whole file (same contract as the
            # metrics document: a killed invocation stays parseable).
            from repro.obs.export import write_chrome_trace

            batch = list(records)
            self._trace_runs.append((run, batch, counters, state_counters))
            write_chrome_trace(self.config.trace_path, self._trace_runs)
            return len(batch)
        mode = "a" if self._trace_started else "w"
        self._trace_started = True
        count = 0
        with open(self.config.trace_path, mode, encoding="utf-8") as fh:
            for record in records:
                fh.write(
                    json.dumps(
                        {
                            "event": record.name,
                            "time": record.time,
                            "run": run,
                            **record.payload,
                        }
                    )
                )
                fh.write("\n")
                count += 1
        return count


class TelemetrySession:
    """One run's worth of attached instruments."""

    def __init__(
        self,
        config: TelemetryConfig,
        sim: Simulator,
        network=None,
        collector=None,
        label: str = "",
        horizon: Optional[float] = None,
    ) -> None:
        self.config = config
        self.sim = sim
        self.collector = collector
        self.label = label
        self.registry = MetricsRegistry()
        self.recorder = None
        self.sampler = None
        self.profiler = None
        self.perf = None
        self.flame = None
        #: The finalize record (set by :meth:`finalize`); in ``collect``
        #: mode this is the whole point of the session.
        self.record: Optional[dict] = None
        #: The run's :class:`~repro.obs.audit.DecisionAudit` (attached
        #: by the runner when decision auditing is on); its tallies are
        #: bridged into ``audit_*`` metrics at finalize.
        self.audit = None
        #: The run's :class:`~repro.obs.statescope.StateScope` (attached
        #: by the runner when state accounting is on); its frozen record
        #: rides the finalize record and its timeline becomes Chrome
        #: counter tracks.
        self.statescope = None

        if config.trace_path:
            # Imported here: experiments.tracelog sits above obs in the
            # layer order, and only trace-enabled sessions need it.
            from repro.experiments.tracelog import KNOWN_EVENTS, TraceRecorder

            self.recorder = TraceRecorder(sim, events=KNOWN_EVENTS + SPAN_EVENTS)
        if config.sample_interval:
            self.sampler = PeriodicSampler(
                sim, config.sample_interval, until=horizon, registry=self.registry
            )
            if network is not None:
                self.sampler.install_standard_probes(network)
            self.sampler.start()
        if config.profile:
            self.profiler = SimProfiler(
                heartbeat=config.heartbeat,
                stream=config.stream or sys.stderr,
            )
            sim.profiler = self.profiler
            self.profiler.start()
        if config.perf:
            from repro.obs.perf import PerfObservatory

            self.perf = PerfObservatory(timeline_interval=1000)
            self.perf.install(sim, network=network)
            self.perf.start()
        if config.flame or config.flame_path:
            from repro.obs.profiler import StackSampler

            self.flame = StackSampler(interval=config.flame_interval)
            self.flame.start()

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _bridge_collector(self) -> None:
        """Router OpCounters and user totals become labeled counters."""
        collector = self.collector
        if collector is None:
            return
        ops = self.registry.counter(
            "tactic_router_ops_total",
            "Per-router TACTIC operation counts (Fig. 7 source data)",
            ("node", "role", "op"),
        )
        for role, counters_map in (
            ("edge", collector.edge_counters),
            ("core", collector.core_counters),
        ):
            for node_id, counters in counters_map.items():
                for op in ROUTER_OPS:
                    ops.labels(node=node_id, role=role, op=op).inc(
                        getattr(counters, op)
                    )
        outcomes = self.registry.counter(
            "user_outcomes_total",
            "Per-population user workload outcomes (Table IV source data)",
            ("population", "kind"),
        )
        latency = self.registry.histogram(
            "client_latency_seconds",
            "Content-retrieval latency of legitimate clients (Fig. 5)",
        )
        for stats in collector.users.values():
            population = "attackers" if stats.is_attacker else "clients"
            for kind in USER_OUTCOMES:
                outcomes.labels(population=population, kind=kind).inc(
                    getattr(stats, kind)
                )
            if not stats.is_attacker:
                for _, sample in stats.latency_samples:
                    latency.labels().observe(sample)

    def _bridge_audit(self) -> None:
        """Decision tallies and BF misauthorization rates become
        labeled counters/gauges (the ``p_fp`` comparison gauge the
        audit layer exists to report)."""
        audit = self.audit
        if audit is None:
            return
        summary = audit.summary()
        decisions = self.registry.counter(
            "audit_decisions_total",
            "Access-control decisions by kind/outcome and oracle label",
            ("node", "role", "kind", "outcome", "label"),
        )
        observed = self.registry.gauge(
            "audit_bf_misauth_rate",
            "Empirical BF false-positive misauthorization rate per router",
            ("node",),
        )
        expected = self.registry.gauge(
            "audit_bf_expected_rate",
            "Theoretical per-router BF false-positive rate (mean p_fp)",
            ("node",),
        )
        for node_id, node in summary["nodes"].items():
            for key, count in node["decisions"].items():
                kind, outcome, label = key.split("|")
                decisions.labels(
                    node=node_id,
                    role=node["role"],
                    kind=kind,
                    outcome=outcome,
                    label=label,
                ).inc(count)
            lookups = node["bf_negative_lookups"]
            if lookups:
                observed.labels(node=node_id).set(
                    node["bf_false_positives"] / lookups
                )
                expected.labels(node=node_id).set(
                    node["expected_fp_sum"] / lookups
                )

    def finalize(self, wall_seconds: float = 0.0) -> dict:
        """Detach instruments, bridge counters, persist, return the record."""
        if self.profiler is not None:
            self.profiler.stop()
            self.sim.profiler = None
        if self.perf is not None:
            self.perf.stop()
            self.perf.uninstall()
        if self.flame is not None:
            self.flame.stop()
        if self.sampler is not None:
            self.sampler.stop()
        if self.recorder is not None:
            self.recorder.stop()
        self._bridge_collector()
        self._bridge_audit()
        record = {
            "label": self.label,
            "wall_seconds": wall_seconds,
            "virtual_seconds": self.sim.now,
            "events_executed": self.sim.events_executed,
            "metrics": self.registry.snapshot(),
            "samples": self.sampler.series_dict() if self.sampler else [],
            "profile": self.profiler.report() if self.profiler else None,
            "perf": self.perf.report() if self.perf else None,
            "flame": self.flame.report() if self.flame else None,
            "statescope": (
                self.statescope.record() if self.statescope is not None else None
            ),
        }
        self.record = record
        if self.config.collect:
            # Envelope mode: the caller ships ``record`` home inside the
            # RunSummary; no files, no stderr reports from workers.
            return record
        writer = self.config.writer()
        writer.add_run(record)
        if self.recorder is not None:
            writer.append_trace(
                self.recorder.records,
                run=self.label,
                counters=self.perf.timeline if self.perf else None,
                state_counters=(
                    self.statescope.timeline if self.statescope is not None else None
                ),
            )
        if self.flame is not None and self.config.flame_path:
            writer.add_flame(self.flame.collapsed)
        if self.profiler is not None:
            stream = self.config.stream or sys.stderr
            header = f"── profile: {self.label or 'run'} ──"
            stream.write(header + "\n" + self.profiler.render() + "\n")
        if self.perf is not None:
            stream = self.config.stream or sys.stderr
            header = f"── perf: {self.label or 'run'} ──"
            stream.write(header + "\n" + self.perf.render() + "\n")
        return record


# ----------------------------------------------------------------------
# Process-wide default (installed by the CLI, read by the runner)
# ----------------------------------------------------------------------
_default_config: Optional[TelemetryConfig] = None


def set_default_telemetry(config: Optional[TelemetryConfig]) -> None:
    """Install (or clear, with None) the process-default config."""
    global _default_config
    _default_config = config


def current_telemetry() -> Optional[TelemetryConfig]:
    """The process-default config, or None when telemetry is off."""
    return _default_config
