"""Wall-clock profiling of the event loop.

When :attr:`Simulator.profiler <repro.sim.engine.Simulator.profiler>`
is set, the engine switches to an instrumented run loop that clocks
every callback and reports the heap size at each dispatch.  The
profiler aggregates by *callback category* — the callback's
``__qualname__`` (e.g. ``Node.receive``, ``Client._pump``) — so the
report answers "where does the wall time go" at the granularity the
codebase is organized in.

The report carries:

- events executed and events/sec over the profiled window,
- per-category call count, cumulative seconds, and share of the total,
- the event-heap high-water mark,
- the process heap high-water mark (``ru_maxrss``) when the platform
  exposes :mod:`resource`.

An optional *heartbeat* writes a one-line progress pulse to a stream
every ``heartbeat`` wall seconds — the long-run liveness signal.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Callable, Dict, Optional, TextIO

try:  # pragma: no cover - platform-dependent
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None


def _category(callback: Callable) -> str:
    return getattr(callback, "__qualname__", repr(callback))


class SimProfiler:
    """Per-callback-category wall-clock accounting for one run."""

    def __init__(
        self,
        heartbeat: float = 0.0,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.clock = clock
        self.heartbeat = heartbeat
        self.stream = stream
        self.calls: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}
        self.events = 0
        self.heap_high_water = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._next_beat: Optional[float] = None

    # ------------------------------------------------------------------
    # Hooks called by the engine's instrumented loop
    # ------------------------------------------------------------------
    def observe_heap(self, size: int) -> None:
        if size > self.heap_high_water:
            self.heap_high_water = size

    def record(self, callback: Callable, elapsed: float) -> None:
        category = _category(callback)
        self.calls[category] = self.calls.get(category, 0) + 1
        self.seconds[category] = self.seconds.get(category, 0.0) + elapsed
        self.events += 1
        if self._next_beat is not None:
            now = self.clock()
            if now >= self._next_beat:
                self._next_beat = now + self.heartbeat
                self._emit_heartbeat(now)

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.started_at = self.clock()
        if self.heartbeat > 0 and self.stream is not None:
            self._next_beat = self.started_at + self.heartbeat

    def stop(self) -> None:
        self.stopped_at = self.clock()
        self._next_beat = None

    def wall_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.clock()
        return max(0.0, end - self.started_at)

    def events_per_second(self) -> float:
        wall = self.wall_seconds()
        return self.events / wall if wall > 0 else 0.0

    def max_rss_bytes(self) -> Optional[int]:
        """Process high-water resident set, or None when unavailable."""
        if resource is None:
            return None
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes; macOS reports bytes.
        return rss if rss > 1 << 32 else rss * 1024

    def _emit_heartbeat(self, now: float) -> None:
        if self.stream is None:
            return
        self.stream.write(
            f"[obs] {now - self.started_at:8.1f}s wall  "
            f"{self.events} events  {self.events_per_second():,.0f} ev/s  "
            f"heap<= {self.heap_high_water}\n"
        )
        self.stream.flush()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, top: int = 0) -> dict:
        """JSON-serializable summary; ``top`` limits categories (0 = all)."""
        total = sum(self.seconds.values()) or 1.0
        ranked = sorted(self.seconds, key=self.seconds.get, reverse=True)
        if top:
            ranked = ranked[:top]
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds(),
            "events_per_second": self.events_per_second(),
            "heap_high_water": self.heap_high_water,
            "max_rss_bytes": self.max_rss_bytes(),
            "categories": [
                {
                    "category": category,
                    "calls": self.calls[category],
                    "seconds": self.seconds[category],
                    "share": self.seconds[category] / total,
                }
                for category in ranked
            ],
        }

    def render(self, top: int = 15) -> str:
        """Human-readable report for terminal output."""
        data = self.report(top=top)
        lines = [
            f"profiled {data['events']} events in {data['wall_seconds']:.3f}s wall "
            f"({data['events_per_second']:,.0f} events/sec), "
            f"event-heap high water {data['heap_high_water']}",
        ]
        if data["max_rss_bytes"] is not None:
            lines.append(f"max RSS {data['max_rss_bytes'] / (1 << 20):.1f} MiB")
        lines.append(f"{'category':<42} {'calls':>9} {'seconds':>9} {'share':>6}")
        for row in data["categories"]:
            lines.append(
                f"{row['category']:<42.42} {row['calls']:>9} "
                f"{row['seconds']:>9.4f} {row['share']:>5.1%}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Statistical sampling (flamegraphs)
# ----------------------------------------------------------------------
def _frame_label(code) -> str:
    """``module.Qualified.name`` — stable across samples so identical
    stacks collapse (line numbers would fragment them)."""
    module = os.path.basename(code.co_filename)
    if module.endswith(".py"):
        module = module[:-3]
    # co_qualname is 3.11+; co_name alone loses the class but merges.
    name = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{name}"


class StackSampler:
    """Low-overhead statistical profiler for one thread.

    A daemon thread wakes every ``interval`` seconds, grabs the target
    thread's current frame via :func:`sys._current_frames`, and folds
    the walked stack into a collapsed-stack dict — Brendan Gregg's
    flamegraph input format (``frame;frame;frame count`` per line, root
    first).  The *target* thread pays nothing: sampling rides the GIL
    from the side, which is what makes this the honest complement to
    the phase observatory (phases tell you *which subsystem*, samples
    tell you *which line of Python*).

    Collapsed dicts from parallel workers merge by summing counts
    (:func:`merge_collapsed`), so fleet flamegraphs aggregate exactly
    like fleet metrics.
    """

    def __init__(
        self,
        interval: float = 0.005,
        max_depth: int = 120,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.interval = interval
        self.max_depth = max_depth
        self.clock = clock
        #: ``{";".join(root..leaf): samples}``
        self.collapsed: Dict[str, int] = {}
        self.samples = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._target_ident: Optional[int] = None
        self._stop_event: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    def start(self, target_ident: Optional[int] = None) -> None:
        """Begin sampling the calling thread (or ``target_ident``)."""
        if self._thread is not None:
            return
        self._target_ident = (
            target_ident if target_ident is not None else threading.get_ident()
        )
        self._stop_event = threading.Event()
        self.started_at = self.clock()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.stopped_at = self.clock()

    def _sample_loop(self) -> None:
        wait = self._stop_event.wait
        interval = self.interval
        while not wait(interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame.f_code))
                frame = frame.f_back
                depth += 1
            key = ";".join(reversed(stack))
            self.collapsed[key] = self.collapsed.get(key, 0) + 1
            self.samples += 1

    def wall_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.clock()
        return max(0.0, end - self.started_at)

    def report(self) -> dict:
        """JSON-serializable summary (rides the telemetry envelope)."""
        return {
            "interval": self.interval,
            "samples": self.samples,
            "wall_seconds": self.wall_seconds(),
            "stacks": dict(self.collapsed),
        }

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks (``--flame-out`` target); feed the
        file to ``flamegraph.pl`` or speedscope.  Returns line count."""
        return write_collapsed(path, self.collapsed)


def write_collapsed(path: str, collapsed: Dict[str, int]) -> int:
    """Write a collapsed-stack dict in Brendan Gregg's format."""
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        for stack in sorted(collapsed):
            fh.write(f"{stack} {collapsed[stack]}\n")
            lines += 1
    return lines


def merge_collapsed(into: Dict[str, int], stacks: Dict[str, int]) -> Dict[str, int]:
    """Sum one worker's collapsed stacks into an accumulator."""
    for stack, count in stacks.items():
        into[stack] = into.get(stack, 0) + count
    return into
