"""Live fleet progress for the parallel experiment engine.

:class:`FleetProgress` is the engine's completion-side observer: the
engine calls it as specs are cache-probed, dispatched, and completed,
and it renders an opt-in status line to stderr (a carriage-return
heartbeat on a TTY, plain lines otherwise) and/or appends structured
events to ``engine.events.jsonl`` for offline inspection.

Everything is derived from completion timestamps — ETA is the mean
completed-run wall time extrapolated over the remaining specs divided
by the worker count, and utilization is busy worker-seconds over
elapsed wall-seconds times the worker count — so the display needs no
cooperation from the workers themselves.

Event names are declared in :data:`FLEET_EVENTS`; simlint rule SL007
checks every emission site against this registry (a typo'd event name
fails lint instead of silently forking the schema).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, List, Optional

__all__ = ["FLEET_EVENTS", "FleetProgress"]

#: Every event ``engine.events.jsonl`` can contain.
FLEET_EVENTS = (
    "fleet.run.start",
    "fleet.spec.cached",
    "fleet.spec.start",
    "fleet.spec.done",
    "fleet.run.done",
)


class FleetProgress:
    """Completion-queue observer: status line + engine.events.jsonl.

    Parameters
    ----------
    total:
        Number of specs in the run.
    jobs:
        Worker process count (the ETA/utilization denominator).
    stream:
        Where the status line goes (``None`` = stderr).  A TTY gets a
        single ``\\r``-refreshed line; anything else gets one plain
        line per completion.
    events_path:
        Append structured events here as JSON lines (``None`` = off).
    show:
        Render the status line at all (the events file is independent).
    clock:
        Injectable wall clock for tests (defaults to
        ``time.perf_counter``).
    """

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: Optional[object] = None,
        events_path: Optional[str] = None,
        show: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.events_path = events_path
        if events_path:
            parent = os.path.dirname(events_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        self.show = show
        self.clock = clock
        self.done = 0
        self.cached = 0
        self.running = 0
        self.completed_walls: List[float] = []
        self.started_at = clock()
        self._line_open = False

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def run_started(self, figure: str = "") -> None:
        self._event(
            "fleet.run.start",
            {"figure": figure, "total": self.total, "jobs": self.jobs},
        )

    def spec_cached(self, label: str) -> None:
        self.done += 1
        self.cached += 1
        self._event("fleet.spec.cached", {"label": label})
        self._render()

    def spec_started(self, label: str) -> None:
        self.running += 1
        self._event("fleet.spec.start", {"label": label})
        self._render()

    def spec_finished(self, label: str, wall_seconds: float, mode: str) -> None:
        self.running = max(0, self.running - 1)
        self.done += 1
        self.completed_walls.append(wall_seconds)
        self._event(
            "fleet.spec.done",
            {"label": label, "wall_seconds": wall_seconds, "mode": mode},
        )
        self._render()

    def run_finished(self) -> None:
        elapsed = self.clock() - self.started_at
        self._event(
            "fleet.run.done",
            {
                "done": self.done,
                "cached": self.cached,
                "wall_seconds": elapsed,
                "utilization": self.utilization(),
            },
        )
        if self._line_open:
            self.stream.write("\n")
            self._line_open = False

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """Mean completed wall time over the remaining specs, per worker."""
        if not self.completed_walls:
            return None
        remaining = self.total - self.done
        mean = sum(self.completed_walls) / len(self.completed_walls)
        return mean * remaining / self.jobs

    def utilization(self) -> float:
        """Busy worker-seconds over elapsed capacity (0 when idle)."""
        elapsed = self.clock() - self.started_at
        if elapsed <= 0.0:
            return 0.0
        return sum(self.completed_walls) / (elapsed * self.jobs)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def _event(self, name: str, payload: dict) -> None:
        if not self.events_path:
            return
        record = {"event": name, "t": self.clock() - self.started_at, **payload}
        with open(self.events_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record))
            fh.write("\n")

    def _status_line(self) -> str:
        parts = [f"fleet {self.done}/{self.total}"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.running:
            parts.append(f"{self.running} running")
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            parts.append(f"eta {eta:.1f}s")
        if self.completed_walls:
            parts.append(f"util {self.utilization():.0%}")
        return " · ".join(parts)

    def _render(self) -> None:
        if not self.show:
            return
        line = self._status_line()
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\r\x1b[2K" + line)
            self.stream.flush()
            self._line_open = True
        else:
            self.stream.write(line + "\n")
