"""Unified observability layer for the TACTIC simulator.

One package gathers everything a run can tell you about itself:

- :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, histograms) with JSON and Prometheus-text exporters;
- :mod:`repro.obs.spans` — Interest-lifecycle spans reconstructed from
  ``span.*`` trace events, decomposing per-request latency into
  queue / serialization / propagation / compute segments;
- :mod:`repro.obs.samplers` — periodic virtual-time sampling of live
  state (PIT occupancy, CS hit ratio, Bloom-filter fill, link queues,
  pending events);
- :mod:`repro.obs.profiler` — a wall-clock profiler for the event loop
  (events/sec, per-callback-category time, heap high-water mark) plus
  a statistical stack sampler emitting collapsed-stack flamegraph
  input;
- :mod:`repro.obs.perf` — the hot-path performance observatory:
  nestable phase accounting over the engine and the NDN fast path
  (heap ops, dispatch, PIT/CS/Bloom/link/crypto), the source of
  ``BENCH_simcore.json``'s per-phase breakdown;
- :mod:`repro.obs.session` — the glue: one
  :class:`~repro.obs.session.TelemetrySession` per run, attached by the
  experiment runner and driven by ``python -m repro`` flags;
- :mod:`repro.obs.audit` — access-control decision records with a
  ground-truth oracle labeling each one correct / false-positive /
  false-negative (the empirical BF-misauthorization report);
- :mod:`repro.obs.flightrec` — a bounded ring of recent events that
  dumps a post-mortem bundle on SimSan violations, NACK storms, or on
  demand;
- :mod:`repro.obs.statescope` — the state-footprint observatory:
  periodic deep-byte accounting over every stateful structure (PIT,
  CS, Bloom filters, FIB, audit shadows, spans, event heap), linear
  trend fitting that flags unbounded growth, and conformance checks
  comparing empirical occupancy against the ``repro.analysis`` closed
  forms.

Everything is off by default; an unconfigured run pays nothing beyond
a handful of ``None`` checks.
"""

from repro.obs.audit import DECISION_KINDS, DecisionAudit, DecisionRecord
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SimProfiler, StackSampler, merge_collapsed
from repro.obs.samplers import PeriodicSampler
from repro.obs.session import (
    TelemetryConfig,
    TelemetrySession,
    current_telemetry,
    set_default_telemetry,
)
from repro.obs.spans import SPAN_EVENTS, Span, SpanBuilder, SpanRecorder

_PERF_EXPORTS = ("PERF_PHASES", "PerfObservatory", "merge_perf_reports")
_FLEETPERF_EXPORTS = (
    "FLEETPERF_PHASES",
    "FleetPerf",
    "WorkerLifecycle",
    "attribute_speedup",
    "merge_fleetperf",
)
_STATESCOPE_EXPORTS = (
    "STATESCOPE_SERIES",
    "StateScope",
    "deep_sizeof",
    "merge_statescope",
    "statescope_metrics",
)


def __getattr__(name):
    # repro.obs.perf / repro.obs.fleetperf are imported lazily (like
    # repro.obs.history) so their ``python -m`` CLIs run without
    # runpy's already-in-sys.modules warning.
    if name in _PERF_EXPORTS:
        from repro.obs import perf

        return getattr(perf, name)
    if name in _FLEETPERF_EXPORTS:
        from repro.obs import fleetperf

        return getattr(fleetperf, name)
    if name in _STATESCOPE_EXPORTS:
        from repro.obs import statescope

        return getattr(statescope, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DECISION_KINDS",
    "DecisionAudit",
    "DecisionRecord",
    "FLEETPERF_PHASES",
    "FleetPerf",
    "FlightRecorder",
    "MetricsRegistry",
    "PERF_PHASES",
    "PerfObservatory",
    "WorkerLifecycle",
    "attribute_speedup",
    "merge_fleetperf",
    "PeriodicSampler",
    "STATESCOPE_SERIES",
    "SimProfiler",
    "StackSampler",
    "StateScope",
    "SPAN_EVENTS",
    "deep_sizeof",
    "merge_statescope",
    "statescope_metrics",
    "merge_collapsed",
    "merge_perf_reports",
    "Span",
    "SpanBuilder",
    "SpanRecorder",
    "TelemetryConfig",
    "TelemetrySession",
    "current_telemetry",
    "set_default_telemetry",
]
