"""Periodic virtual-time sampling of live simulator state.

A :class:`PeriodicSampler` schedules a read-only tick every
``interval`` virtual seconds up to a horizon and evaluates a list of
*probes* — named zero-argument callables with a label set.  Samples
accumulate as ``(time, value)`` series and, when a
:class:`~repro.obs.metrics.MetricsRegistry` is attached, also back
callback gauges so the final metrics export carries last-known values.

The tick never touches protocol state or any named RNG stream, so an
enabled sampler changes ``events_executed`` but **no published figure
value** — determinism of the workload is untouched.

:meth:`PeriodicSampler.install_standard_probes` wires the default set
over a :class:`~repro.ndn.network.Network`: per-node PIT occupancy and
CS size / hit ratio, per-router Bloom-filter fill ratio and
false-positive probability, per-direction link queue depth, and the
scheduler's pending-event count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


@dataclass
class Probe:
    """One sampled quantity."""

    name: str
    fn: Callable[[], float]
    labels: Dict[str, str] = field(default_factory=dict)

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (self.name, tuple(sorted(self.labels.items())))


class PeriodicSampler:
    """Samples a probe list every ``interval`` virtual seconds."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        until: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = interval
        self.until = until
        self.registry = registry
        self.probes: List[Probe] = []
        self.series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]] = {}
        self.ticks = 0
        self._stopped = False
        self._last_tick: Optional[float] = None

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def add_probe(self, name: str, fn: Callable[[], float], **labels: str) -> Probe:
        probe = Probe(name=name, fn=fn, labels=dict(labels))
        self.probes.append(probe)
        self.series[probe.key()] = []
        if self.registry is not None:
            gauge = self.registry.gauge(
                name, labelnames=tuple(sorted(probe.labels))
            )
            gauge.labels(**probe.labels).set_function(fn)
        return probe

    def install_standard_probes(self, network) -> None:
        """The default probe set over a built network."""
        self.add_probe("sim_pending_events", self.sim.pending)
        for node_id, node in network.nodes.items():
            pit = getattr(node, "pit", None)
            if pit is not None:
                self.add_probe("pit_entries", (lambda p=pit: float(len(p))), node=node_id)
            cs = getattr(node, "cs", None)
            if cs is not None and cs.capacity > 0:
                self.add_probe("cs_entries", (lambda c=cs: float(len(c))), node=node_id)
                self.add_probe("cs_hit_ratio", (lambda c=cs: c.hit_ratio()), node=node_id)
            bloom = getattr(node, "bloom", None)
            if bloom is not None:
                self.add_probe(
                    "bf_fill_ratio", (lambda b=bloom: b.fill_ratio()), node=node_id
                )
                self.add_probe(
                    "bf_current_fpp", (lambda b=bloom: b.current_fpp()), node=node_id
                )
        for link in network.links:
            a, b = link._nodes
            for src, dst in ((a, b), (b, a)):
                self.add_probe(
                    "link_queue_seconds",
                    (lambda l=link, s=src: l.utilization(s)),
                    src=src.node_id,
                    dst=dst.node_id,
                )

    # ------------------------------------------------------------------
    # Ticking
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Schedule the first tick (defaults to one interval from now)."""
        first = self.sim.now + self.interval if at is None else at
        if self.until is None or first <= self.until:
            self.sim.schedule_at(first, self._tick)

    def stop(self) -> None:
        """Flush the final partial interval, then stop ticking."""
        self.flush()
        self._stopped = True

    def flush(self) -> int:
        """Take a last sample at the current virtual time.

        Ticks only fire on whole-interval boundaries, so without this
        the tail of a run — or all of a run shorter than one interval —
        would be invisible to sampled series.  Idempotent per instant;
        returns the number of samples taken (0 or 1).
        """
        now = self.sim.now
        if self._stopped or (self._last_tick is not None and self._last_tick >= now):
            return 0
        self.ticks += 1
        self._last_tick = now
        for probe in self.probes:
            self.series[probe.key()].append((now, float(probe.fn())))
        return 1

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        self.ticks += 1
        self._last_tick = now
        for probe in self.probes:
            self.series[probe.key()].append((now, float(probe.fn())))
        next_time = now + self.interval
        if self.until is None or next_time <= self.until:
            self.sim.schedule_at(next_time, self._tick)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def series_dict(self) -> List[dict]:
        """JSON-friendly view: one object per probe with its samples."""
        out = []
        for probe in self.probes:
            samples = self.series[probe.key()]
            out.append(
                {
                    "name": probe.name,
                    "labels": dict(probe.labels),
                    "samples": [[time, value] for time, value in samples],
                }
            )
        return out
