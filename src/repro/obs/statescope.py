"""State-footprint and capacity-model conformance observatory.

TACTIC's value proposition rests on *bounded router state*: fixed-size
Bloom filters with a predictable saturation/reset cadence instead of
per-client ACLs.  The rest of the observability stack measures time
exhaustively; this module measures state.  Three pieces:

1. **Accounting** — every stateful structure (PIT, ContentStore,
   BloomFilter, FIB, the audit shadow sets, pending spans, the event
   heap) implements a ``state_cost()`` protocol returning logical
   units (entries / records / bits set) plus deep bytes via
   :func:`deep_sizeof`, a memoized recursive sizeof that understands
   ``__slots__`` layouts.  A :class:`StateScope` samples the fleet
   totals every ``interval`` virtual seconds (with an end-of-run
   flush, so short runs are never invisible) and fits a per-series
   trend, flagging unbounded growth — a PIT-record or span leak — as a
   typed finding.

2. **tracemalloc** (optional, zero-cost off) — snapshot diffs
   attributed to ``repro.*`` modules with top-allocation-site reports
   and a peak-RSS stamp.  Wall-clock/allocator numbers are
   host-dependent, so they ride in the record's ``tracemalloc``
   section only: :func:`statescope_metrics` and
   :func:`merge_statescope` drop them, keeping history metrics and the
   serial ≡ parallel merge parity deterministic.

3. **Conformance** — at finalize the scope walks the live structures
   and compares empirical BF fill ratio, saturation-reset cadence, CS
   hit ratio, and PIT occupancy against the
   :mod:`repro.analysis.bloom_math` / :mod:`repro.analysis.cache_math`
   closed forms with binomial/normal confidence intervals (the same
   CI shape as :func:`repro.obs.audit.fp_confidence`), emitting
   ``model.*`` metrics and a pass/fail report.

Everything is off by default: an unobserved run constructs no scope,
schedules no ticks, and the structures' ``state_cost()`` methods are
never called — the off state is bit-identical to a build without this
module.

CLI::

    python -m repro.obs.statescope report out/statescope.json

exits 1 on a conformance failure or growth finding, 2 on bad input.
"""

from __future__ import annotations

import json
import math
import os
import sys
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

#: Environment toggles, mirroring ``REPRO_AUDIT``/``REPRO_AUDIT_OUT``:
#: the out-path implies the flag.
STATESCOPE_ENV = "REPRO_STATESCOPE"
STATESCOPE_OUT_ENV = "REPRO_STATESCOPE_OUT"
STATESCOPE_INTERVAL_ENV = "REPRO_STATESCOPE_INTERVAL"
STATESCOPE_TRACEMALLOC_ENV = "REPRO_STATESCOPE_TRACEMALLOC"

#: Registry of every state series a scope may emit (simlint SL016: a
#: literal passed to ``StateScope.track`` must appear here, so a typo'd
#: series name is a lint error, not a silently separate series).
STATESCOPE_SERIES = (
    "state.pit.entries",
    "state.pit.records",
    "state.pit.bytes",
    "state.cs.entries",
    "state.cs.bytes",
    "state.bf.bits_set",
    "state.bf.bytes",
    "state.fib.entries",
    "state.fib.bytes",
    "state.audit.shadow",
    "state.audit.bytes",
    "state.spans.open",
    "state.spans.bytes",
    "state.heap.pending",
    "state.heap.bytes",
    "state.total.bytes",
)

#: Series eligible for growth findings.  Only occupancy series that a
#: healthy run keeps bounded are listed; monotone-by-design series
#: (audit shadow sets, cumulative byte counters) would always "grow".
GROWTH_SERIES = (
    "state.pit.entries",
    "state.pit.records",
    "state.spans.open",
    "state.heap.pending",
)

#: Trend-fit thresholds: a growth finding needs at least this many
#: samples, this much least-squares linearity, and both an absolute and
#: a relative rise (so a PIT oscillating around a small steady state
#: never trips it).
TREND_MIN_SAMPLES = 5
TREND_MIN_R2 = 0.8
TREND_MIN_RISE = 8.0
TREND_MIN_RATIO = 2.0

_DESCEND_STOP_ATTRS = ("sim", "node_id", "_nodes")

#: Slots deep_sizeof never reads.  ``_hash`` caches ``hash(...)`` of
#: an interned tuple (:class:`~repro.ndn.name.Name`); the *magnitude*
#: of that int — and so its ``sys.getsizeof`` — depends on per-process
#: hash randomization, which would break the serial ≡ parallel
#: bit-for-bit byte parity.
_SKIP_SLOTS = frozenset({"__dict__", "__weakref__", "_hash"})


def _slot_names(cls: type) -> Tuple[str, ...]:
    names: List[str] = []
    for base in cls.__mro__:
        slots = base.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(s for s in slots if s not in _SKIP_SLOTS)
    return tuple(names)


_SLOT_CACHE: Dict[type, Tuple[str, ...]] = {}


def _descends(obj: Any) -> bool:
    """Should :func:`deep_sizeof` traverse into ``obj``'s attributes?

    Only into objects the measured structure *owns*: instances of
    ``repro.*`` data classes.  Nodes, links, faces, and the simulator
    itself (anything carrying a ``sim``/``node_id`` backref) are
    boundaries — a PIT record's in-face must not drag the whole
    network into the PIT's byte count.  Foreign-library objects and
    callables are counted shallow.
    """
    if not type(obj).__module__.startswith("repro."):
        return False
    if callable(obj):
        return False
    for attr in _DESCEND_STOP_ATTRS:
        if hasattr(obj, attr):
            return False
    return True


_VALUE_SCALARS = (str, bytes, int, float, bool, complex)


def deep_sizeof(obj: Any, seen: Optional[Set[Any]] = None) -> int:
    """Memoized recursive ``sys.getsizeof`` aware of ``__slots__``.

    Traverses built-in containers and owned ``repro.*`` instances
    (both ``__dict__`` and ``__slots__`` layouts); every object is
    counted once per ``seen`` set, so shared substructure — interned
    :class:`~repro.ndn.name.Name` components, aliased tags — is not
    double-billed.  Immutable scalars are memoized by *value* rather
    than identity: whether two equal strings share one object is an
    interning accident that differs between a serial run and a spawned
    worker unpickling the same spec, and byte totals must be
    bit-identical across the two (the serial ≡ parallel merge parity).
    Iterative (explicit stack) so a long PIT-record list cannot hit
    the recursion limit.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = deque([obj])
    while stack:
        item = stack.pop()
        if isinstance(item, _VALUE_SCALARS):
            key = (type(item), item)
            if key in seen:
                continue
            seen.add(key)
            total += sys.getsizeof(item)
            continue
        ident = id(item)
        if ident in seen:
            continue
        seen.add(ident)
        total += sys.getsizeof(item)
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        elif isinstance(item, bytearray):
            continue
        elif _descends(item):
            cls = type(item)
            slots = _SLOT_CACHE.get(cls)
            if slots is None:
                slots = _slot_names(cls)
                _SLOT_CACHE[cls] = slots
            for name in slots:
                try:
                    stack.append(getattr(item, name))
                except AttributeError:
                    pass
            inst = getattr(item, "__dict__", None)
            if inst:
                stack.append(inst)
    return total


# ---------------------------------------------------------------------------
# Trend fitting
# ---------------------------------------------------------------------------
def fit_trend(samples: List[Tuple[float, float]]) -> Dict[str, float]:
    """Least-squares line over ``(t, v)`` samples: slope, intercept, r2."""
    n = len(samples)
    if n < 2:
        return {"n": float(n), "slope": 0.0, "intercept": 0.0, "r2": 0.0}
    mean_t = sum(t for t, _ in samples) / n
    mean_v = sum(v for _, v in samples) / n
    sxx = sum((t - mean_t) ** 2 for t, _ in samples)
    sxy = sum((t - mean_t) * (v - mean_v) for t, v in samples)
    svv = sum((v - mean_v) ** 2 for _, v in samples)
    if sxx <= 0.0:
        return {"n": float(n), "slope": 0.0, "intercept": mean_v, "r2": 0.0}
    slope = sxy / sxx
    r2 = 0.0 if svv <= 0.0 else (sxy * sxy) / (sxx * svv)
    return {
        "n": float(n),
        "slope": slope,
        "intercept": mean_v - slope * mean_t,
        "r2": r2,
    }


def growth_finding(
    series: str, samples: List[Tuple[float, float]]
) -> Optional[Dict[str, Any]]:
    """A typed ``state.growth`` finding when a series grows unboundedly.

    Requires a sustained, near-linear rise: enough samples, a positive
    slope with high linearity, and both an absolute and a relative
    climb from first to last sample.  A healthy PIT oscillating around
    its steady-state occupancy fits none of these.
    """
    if len(samples) < TREND_MIN_SAMPLES:
        return None
    trend = fit_trend(samples)
    first = samples[0][1]
    last = samples[-1][1]
    rise = last - first
    if (
        trend["slope"] <= 0.0
        or trend["r2"] < TREND_MIN_R2
        or rise < TREND_MIN_RISE
        or last < TREND_MIN_RATIO * max(first, 1.0)
    ):
        return None
    return {
        "kind": "state.growth",
        "series": series,
        "slope": trend["slope"],
        "r2": trend["r2"],
        "first": first,
        "last": last,
        "samples": len(samples),
        "detail": (
            f"{series} grew {first:g} -> {last:g} over {len(samples)} samples "
            f"(slope {trend['slope']:.4g}/s, r2 {trend['r2']:.3f})"
        ),
    }


# ---------------------------------------------------------------------------
# The scope
# ---------------------------------------------------------------------------
class StateScope:
    """Samples fleet state footprint in virtual time and checks models.

    Lifecycle: :meth:`install` binds the live structures, :meth:`start`
    schedules the periodic tick, :meth:`finalize` flushes the last
    partial interval, fits trends, runs the conformance engine, and
    freezes :meth:`record`.  The tick is read-only — it never touches
    protocol state or a named RNG stream — so enabling the scope
    changes ``events_executed`` but no published figure value.
    """

    def __init__(
        self,
        interval: Optional[float] = None,
        tracemalloc: Optional[bool] = None,
        z: float = 1.96,
    ) -> None:
        if interval is None:
            raw = os.environ.get(STATESCOPE_INTERVAL_ENV, "")
            interval = float(raw) if raw else 1.0
        if interval <= 0:
            raise ValueError(f"statescope interval must be positive, got {interval!r}")
        if tracemalloc is None:
            tracemalloc = _env_flag(STATESCOPE_TRACEMALLOC_ENV)
        self.interval = interval
        self.z = z
        self.tracemalloc = tracemalloc
        self.label: Optional[str] = None
        self.timeline: List[Tuple[float, Dict[str, float]]] = []
        self.series: Dict[str, List[Tuple[float, float]]] = {
            name: [] for name in STATESCOPE_SERIES
        }
        self.sim: Optional[Any] = None
        self._network: Optional[Any] = None
        self._config: Optional[Any] = None
        self._audit: Optional[Any] = None
        self._spans: Optional[Any] = None
        self._pits: List[Tuple[str, Any]] = []
        self._stores: List[Tuple[str, Any]] = []
        self._blooms: List[Tuple[str, Any]] = []
        self._fibs: List[Tuple[str, Any]] = []
        self._until: Optional[float] = None
        self._last_sample: Optional[float] = None
        self._sampling: Optional[Dict[str, float]] = None
        self._stopped = False
        self._record: Optional[Dict[str, Any]] = None
        self._tm_baseline: Optional[Any] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(
        self,
        sim: Any,
        network: Optional[Any] = None,
        config: Optional[Any] = None,
        audit: Optional[Any] = None,
        spans: Optional[Any] = None,
        label: Optional[str] = None,
    ) -> "StateScope":
        """Bind the live structures this scope will account."""
        self.sim = sim
        self._network = network
        self._config = config
        self._audit = audit
        self._spans = spans
        self.label = label
        if network is not None:
            for node_id, node in network.nodes.items():
                pit = getattr(node, "pit", None)
                if pit is not None and hasattr(pit, "state_cost"):
                    self._pits.append((node_id, pit))
                cs = getattr(node, "cs", None)
                if cs is not None and hasattr(cs, "state_cost"):
                    self._stores.append((node_id, cs))
                bloom = getattr(node, "bloom", None)
                if bloom is not None and hasattr(bloom, "state_cost"):
                    self._blooms.append((node_id, bloom))
                fib = getattr(node, "fib", None)
                if fib is not None and hasattr(fib, "state_cost"):
                    self._fibs.append((node_id, fib))
        if self.tracemalloc:
            import tracemalloc as _tm

            if not _tm.is_tracing():
                _tm.start()
            self._tm_baseline = _tm.take_snapshot()
        return self

    def start(self, horizon: Optional[float] = None) -> None:
        """Schedule the first tick; ``horizon`` bounds rescheduling."""
        if self.sim is None:
            raise RuntimeError("StateScope.start() before install()")
        self._until = horizon
        first = self.sim.now + self.interval
        if self._until is None or first <= self._until:
            self.sim.schedule_at(first, self._tick)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def track(self, name: str, now: float, value: float) -> None:
        """Append one sample to a registered series (SL016 audits the
        ``name`` literal against :data:`STATESCOPE_SERIES`)."""
        self.series[name].append((now, value))
        if self._sampling is not None:
            self._sampling[name] = value

    def sample(self) -> Dict[str, float]:
        """Take one fleet-total sample at the current virtual time."""
        assert self.sim is not None
        now = self.sim.now
        self._sampling = values = {}

        pit_entries = pit_records = pit_bytes = 0
        for _, pit in self._pits:
            cost = pit.state_cost()
            pit_entries += cost["entries"]
            pit_records += cost["records"]
            pit_bytes += cost["bytes"]
        self.track("state.pit.entries", now, float(pit_entries))
        self.track("state.pit.records", now, float(pit_records))
        self.track("state.pit.bytes", now, float(pit_bytes))

        cs_entries = cs_bytes = 0
        for _, cs in self._stores:
            cost = cs.state_cost()
            cs_entries += cost["entries"]
            cs_bytes += cost["bytes"]
        self.track("state.cs.entries", now, float(cs_entries))
        self.track("state.cs.bytes", now, float(cs_bytes))

        bf_bits = bf_bytes = 0
        for _, bloom in self._blooms:
            cost = bloom.state_cost()
            bf_bits += cost["bits_set"]
            bf_bytes += cost["bytes"]
        self.track("state.bf.bits_set", now, float(bf_bits))
        self.track("state.bf.bytes", now, float(bf_bytes))

        fib_entries = fib_bytes = 0
        for _, fib in self._fibs:
            cost = fib.state_cost()
            fib_entries += cost["entries"]
            fib_bytes += cost["bytes"]
        self.track("state.fib.entries", now, float(fib_entries))
        self.track("state.fib.bytes", now, float(fib_bytes))

        if self._audit is not None and hasattr(self._audit, "state_cost"):
            cost = self._audit.state_cost()
            self.track("state.audit.shadow", now, float(cost["shadow"]))
            self.track("state.audit.bytes", now, float(cost["bytes"]))
        else:
            self.track("state.audit.shadow", now, 0.0)
            self.track("state.audit.bytes", now, 0.0)

        if self._spans is not None and hasattr(self._spans, "state_cost"):
            cost = self._spans.state_cost()
            self.track("state.spans.open", now, float(cost["open"]))
            self.track("state.spans.bytes", now, float(cost["bytes"]))
        else:
            self.track("state.spans.open", now, 0.0)
            self.track("state.spans.bytes", now, 0.0)

        heap = getattr(self.sim, "_heap", None)
        pending = self.sim.pending() if hasattr(self.sim, "pending") else 0
        self.track("state.heap.pending", now, float(pending))
        self.track(
            "state.heap.bytes", now,
            float(deep_sizeof(heap)) if heap is not None else 0.0,
        )

        self.track(
            "state.total.bytes", now,
            values["state.pit.bytes"]
            + values["state.cs.bytes"]
            + values["state.bf.bytes"]
            + values["state.fib.bytes"]
            + values["state.audit.bytes"]
            + values["state.spans.bytes"]
            + values["state.heap.bytes"],
        )

        self._sampling = None
        self.timeline.append((now, values))
        self._last_sample = now
        return values

    def _tick(self) -> None:
        if self._stopped or self.sim is None:
            return
        self.sample()
        next_time = self.sim.now + self.interval
        if self._until is None or next_time <= self._until:
            self.sim.schedule_at(next_time, self._tick)

    def flush(self) -> int:
        """Sample the final partial interval (idempotent per instant)."""
        if self._stopped or self.sim is None:
            return 0
        if self._last_sample is not None and self._last_sample >= self.sim.now:
            return 0
        self.sample()
        return 1

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> Dict[str, Any]:
        """Flush, fit trends, run conformance, freeze the record."""
        if self._record is not None:
            return self._record
        self.flush()
        self._stopped = True

        findings: List[Dict[str, Any]] = []
        for name in GROWTH_SERIES:
            finding = growth_finding(name, self.series[name])
            if finding is not None:
                findings.append(finding)

        series_summary: Dict[str, Dict[str, float]] = {}
        for name in STATESCOPE_SERIES:
            samples = self.series[name]
            if samples:
                peaks = [v for _, v in samples]
                series_summary[name] = {
                    "samples": float(len(samples)),
                    "peak": max(peaks),
                    "last": samples[-1][1],
                }
            else:
                series_summary[name] = {"samples": 0.0, "peak": 0.0, "last": 0.0}

        record: Dict[str, Any] = {
            "label": self.label,
            "interval": self.interval,
            "series": series_summary,
            "findings": findings,
            "conformance": self._conformance(findings),
        }
        if self.tracemalloc:
            record["tracemalloc"] = self._tracemalloc_report()
        self._record = record
        return record

    def record(self) -> Dict[str, Any]:
        """The frozen record (finalizes on first call)."""
        return self.finalize()

    # ------------------------------------------------------------------
    # Conformance engine
    # ------------------------------------------------------------------
    def _conformance(self, findings: List[Dict[str, Any]]) -> Dict[str, Any]:
        checks: List[Dict[str, Any]] = []
        checks.extend(self._check_bf_fill())
        checks.extend(self._check_bf_resets())
        cs = self._check_cs_hit_ratio()
        if cs is not None:
            checks.append(cs)
        checks.append(self._check_pit_occupancy(findings))
        failures = sum(1 for c in checks if not c["within_ci"])
        return {
            "checks": checks,
            "checks_total": len(checks),
            "failures": failures,
            "pass": failures == 0,
        }

    def _check_bf_fill(self) -> List[Dict[str, Any]]:
        """Empirical fill ratio vs ``1 - (1 - 1/m)^(kn)`` per filter.

        ``n`` is the insert count since the last reset, so the check
        holds at any point in the saturation cycle.  The normal CI uses
        ``p(1-p)/m`` variance (each of the ``m`` bits is a Bernoulli
        trial) plus a small absolute slack for double-hashing index
        collisions and duplicate inserts.
        """
        out: List[Dict[str, Any]] = []
        agg_observed = agg_expected = agg_var = 0.0
        agg_bits = 0
        for node_id, bloom in self._blooms:
            m = float(bloom.size_bits)
            if m <= 0:
                continue
            k = float(bloom.num_hashes)
            n = float(bloom.count)
            expected = 1.0 - (1.0 - 1.0 / m) ** (k * n)
            observed = bloom.fill_ratio()
            var = expected * (1.0 - expected) / m
            halfwidth = self.z * math.sqrt(max(var, 0.0)) + 0.02
            out.append(
                {
                    "check": "bf_fill",
                    "node": node_id,
                    "inserts": n,
                    "observed": observed,
                    "expected": expected,
                    "ci_halfwidth": halfwidth,
                    "within_ci": abs(observed - expected) <= halfwidth,
                }
            )
            agg_observed += observed * m
            agg_expected += expected * m
            agg_var += var * m * m
            agg_bits += int(m)
        if agg_bits:
            observed = agg_observed / agg_bits
            expected = agg_expected / agg_bits
            halfwidth = self.z * math.sqrt(max(agg_var, 0.0)) / agg_bits + 0.02
            out.append(
                {
                    "check": "bf_fill",
                    "node": "__fleet__",
                    "inserts": float(sum(b.count for _, b in self._blooms)),
                    "observed": observed,
                    "expected": expected,
                    "ci_halfwidth": halfwidth,
                    "within_ci": abs(observed - expected) <= halfwidth,
                }
            )
        return out

    def _check_bf_resets(self) -> List[Dict[str, Any]]:
        """Observed saturation resets vs ``total_inserts / budget``.

        The budget is :func:`repro.analysis.bloom_math
        .inserts_to_saturation` for the filter's sizing.  The reset
        process is deterministic given the insert stream, so the CI is
        a Poisson-style ``z*sqrt(expected) + 1`` guard against edge
        effects (a reset pending at end of run).
        """
        from repro.analysis.bloom_math import inserts_to_saturation

        out: List[Dict[str, Any]] = []
        total_inserts = 0.0
        total_observed = 0.0
        total_expected = 0.0
        for node_id, bloom in self._blooms:
            budget = float(
                inserts_to_saturation(
                    bloom.capacity,
                    bloom.max_fpp,
                    num_hashes=bloom.num_hashes,
                    sizing_fpp=bloom.sizing_fpp,
                )
            )
            if budget <= 0:
                continue
            expected = bloom.total_inserts / budget
            observed = float(bloom.reset_count)
            halfwidth = self.z * math.sqrt(max(expected, 0.0)) + 1.0
            out.append(
                {
                    "check": "bf_resets",
                    "node": node_id,
                    "inserts": float(bloom.total_inserts),
                    "observed": observed,
                    "expected": expected,
                    "ci_halfwidth": halfwidth,
                    "within_ci": abs(observed - expected) <= halfwidth,
                }
            )
            total_inserts += bloom.total_inserts
            total_observed += observed
            total_expected += expected
        if out:
            halfwidth = self.z * math.sqrt(max(total_expected, 0.0)) + float(len(out))
            out.append(
                {
                    "check": "bf_resets",
                    "node": "__fleet__",
                    "inserts": total_inserts,
                    "observed": total_observed,
                    "expected": total_expected,
                    "ci_halfwidth": halfwidth,
                    "within_ci": abs(total_observed - total_expected) <= halfwidth,
                }
            )
        return out

    def _check_cs_hit_ratio(self) -> Optional[Dict[str, Any]]:
        """Fleet CS hit ratio vs the Che approximation — upper bound.

        Che's characteristic-time model predicts the *steady-state* LRU
        hit ratio under the independent-reference model; a finite run
        additionally pays one compulsory miss per distinct chunk, so
        the empirical ratio sits below the model and converges up to
        it.  The check is therefore a corridor: ``observed <= che +
        binomial halfwidth + slack`` (a run beating steady state means
        the model's inputs are wrong).
        """
        config = self._config
        if config is None or self._network is None:
            return None
        lookups = hits = 0
        for _, cs in self._stores:
            if cs.capacity <= 0:
                continue
            lookups += cs.hits + cs.misses
            hits += cs.hits
        if lookups == 0:
            return None
        from repro.analysis.cache_math import aggregate_hit_ratio, zipf_popularities

        providers = sum(
            1
            for node in self._network.nodes.values()
            if getattr(node, "directory", None) is not None
        )
        num_objects = max(providers, 1) * config.objects_per_provider
        chunks = max(config.chunks_per_object, 1)
        object_pops = zipf_popularities(num_objects, config.zipf_alpha)
        chunk_pops = [q / chunks for q in object_pops for _ in range(chunks)]
        capacity = max(cs.capacity for _, cs in self._stores)
        expected = aggregate_hit_ratio(chunk_pops, capacity)
        observed = hits / lookups
        var = expected * (1.0 - expected) / lookups
        halfwidth = self.z * math.sqrt(max(var, 0.0)) + 0.05
        return {
            "check": "cs_hit",
            "node": "__fleet__",
            "lookups": float(lookups),
            "observed": observed,
            "expected": expected,
            "ci_halfwidth": halfwidth,
            "within_ci": observed <= expected + halfwidth,
        }

    def _check_pit_occupancy(
        self, findings: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Sampled PIT occupancy stays bounded (and under capacity)."""
        samples = self.series["state.pit.entries"]
        peak = max((v for _, v in samples), default=0.0)
        capacity = sum(
            pit.capacity for _, pit in self._pits if getattr(pit, "capacity", 0)
        )
        bound = float(capacity) if capacity else None
        leaked = any(f["series"].startswith("state.pit") for f in findings)
        within = not leaked and (bound is None or peak <= bound)
        return {
            "check": "pit_occupancy",
            "node": "__fleet__",
            "observed": peak,
            "expected": bound if bound is not None else peak,
            "ci_halfwidth": 0.0,
            "within_ci": within,
        }

    # ------------------------------------------------------------------
    # tracemalloc
    # ------------------------------------------------------------------
    def _tracemalloc_report(self, top: int = 10) -> Dict[str, Any]:
        import tracemalloc as _tm

        snapshot = _tm.take_snapshot()
        current, peak = _tm.get_traced_memory()
        stats: List[Dict[str, Any]] = []
        if self._tm_baseline is not None:
            diffs = snapshot.compare_to(self._tm_baseline, "lineno")
            repro_sep = os.sep + "repro" + os.sep
            for diff in diffs:
                frame = diff.traceback[0]
                if repro_sep not in frame.filename:
                    continue
                stats.append(
                    {
                        "site": f"{frame.filename}:{frame.lineno}",
                        "size_bytes": diff.size,
                        "size_diff_bytes": diff.size_diff,
                        "count": diff.count,
                    }
                )
                if len(stats) >= top:
                    break
        report: Dict[str, Any] = {
            "current_bytes": current,
            "peak_bytes": peak,
            "top_sites": stats,
        }
        try:
            import resource

            report["peak_rss_kb"] = resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss
        except ImportError:  # pragma: no cover - non-POSIX
            pass
        return report


# ---------------------------------------------------------------------------
# Env gating (the audit idiom: out-path implies on)
# ---------------------------------------------------------------------------
def _env_flag(name: str) -> bool:
    raw = os.environ.get(name, "")
    return bool(raw) and raw.lower() not in ("0", "false", "no", "off")


def statescope_enabled() -> bool:
    """True when ``REPRO_STATESCOPE`` is truthy or an out-path is set."""
    return _env_flag(STATESCOPE_ENV) or bool(os.environ.get(STATESCOPE_OUT_ENV))


def maybe_statescope() -> Optional[StateScope]:
    """A fresh scope when the environment asks for one, else ``None``."""
    return StateScope() if statescope_enabled() else None


# ---------------------------------------------------------------------------
# Fleet merge + metrics (deterministic: serial == parallel, bit-for-bit)
# ---------------------------------------------------------------------------
def merge_statescope(into: Dict[str, Any], record: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one worker's statescope record into a fleet accumulator.

    Called in *submission order* by the engine (never arrival order),
    so serial and ``--jobs N`` runs produce bit-identical merges.
    Series peaks/lasts sum (the fleet's aggregate footprint); findings
    and conformance checks concatenate, each stamped with the run
    label; host-dependent ``tracemalloc`` sections are dropped.
    """
    if not into:
        into.update(
            {
                "runs": 0,
                "series": {
                    name: {"samples": 0.0, "peak": 0.0, "last": 0.0}
                    for name in STATESCOPE_SERIES
                },
                "findings": [],
                "conformance": {
                    "checks": [],
                    "checks_total": 0,
                    "failures": 0,
                    "pass": True,
                },
            }
        )
    into["runs"] += 1
    label = record.get("label")
    for name, row in record.get("series", {}).items():
        slot = into["series"].setdefault(
            name, {"samples": 0.0, "peak": 0.0, "last": 0.0}
        )
        slot["samples"] += row.get("samples", 0.0)
        slot["peak"] += row.get("peak", 0.0)
        slot["last"] += row.get("last", 0.0)
    for finding in record.get("findings", []):
        into["findings"].append(dict(finding, run=label))
    conf = record.get("conformance", {})
    merged = into["conformance"]
    for check in conf.get("checks", []):
        merged["checks"].append(dict(check, run=label))
    merged["checks_total"] += conf.get("checks_total", 0)
    merged["failures"] += conf.get("failures", 0)
    merged["pass"] = merged["pass"] and conf.get("pass", True)
    return into


def statescope_metrics(record: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a record into deterministic ``state.*``/``model.*``/
    ``mem.*`` history metrics (tracemalloc values are excluded — they
    vary by host and would make ``history diff`` noisy)."""
    out: Dict[str, float] = {}
    for name in sorted(record.get("series", {})):
        row = record["series"][name]
        out[f"{name}.peak"] = float(row.get("peak", 0.0))
        out[f"{name}.last"] = float(row.get("last", 0.0))
    out["state.findings"] = float(len(record.get("findings", [])))
    conf = record.get("conformance", {})
    out["model.checks"] = float(conf.get("checks_total", 0))
    out["model.failures"] = float(conf.get("failures", 0))
    out["model.pass"] = 1.0 if conf.get("pass", True) else 0.0
    for check in conf.get("checks", []):
        if check.get("node") != "__fleet__":
            continue
        prefix = f"model.{check['check']}"
        out[f"{prefix}.observed"] = float(check["observed"])
        out[f"{prefix}.expected"] = float(check["expected"])
        out[f"{prefix}.within"] = 1.0 if check["within_ci"] else 0.0
    total = record.get("series", {}).get("state.total.bytes", {})
    out["mem.deep_bytes.peak"] = float(total.get("peak", 0.0))
    return out


# ---------------------------------------------------------------------------
# Rendering + CLI
# ---------------------------------------------------------------------------
def render_statescope_report(record: Dict[str, Any]) -> List[str]:
    """Human-readable lines for a single or fleet-merged record."""
    lines: List[str] = []
    runs = record.get("runs")
    header = "statescope"
    if runs is not None:
        header += f" ({runs} runs, fleet-merged)"
    elif record.get("label"):
        header += f" ({record['label']})"
    lines.append(header)
    lines.append("  series                    peak          last")
    for name in sorted(record.get("series", {})):
        row = record["series"][name]
        lines.append(
            f"  {name:<24} {row.get('peak', 0.0):>12,.0f} {row.get('last', 0.0):>12,.0f}"
        )
    findings = record.get("findings", [])
    if findings:
        lines.append(f"  findings: {len(findings)}")
        for finding in findings:
            run = f" [{finding['run']}]" if finding.get("run") else ""
            lines.append(f"    {finding['kind']}{run}: {finding['detail']}")
    else:
        lines.append("  findings: none")
    conf = record.get("conformance", {})
    status = "PASS" if conf.get("pass", True) else "FAIL"
    lines.append(
        f"  conformance: {status} "
        f"({conf.get('failures', 0)}/{conf.get('checks_total', 0)} checks failed)"
    )
    for check in conf.get("checks", []):
        if not check["within_ci"] or check.get("node") == "__fleet__":
            mark = "ok" if check["within_ci"] else "FAIL"
            run = f" [{check['run']}]" if check.get("run") else ""
            lines.append(
                f"    {mark:<4} {check['check']:<14} node={check['node']}{run} "
                f"observed={check['observed']:.6g} expected={check['expected']:.6g} "
                f"+-{check['ci_halfwidth']:.6g}"
            )
    tm = record.get("tracemalloc")
    if tm:
        lines.append(
            f"  tracemalloc: current={tm['current_bytes']:,}B "
            f"peak={tm['peak_bytes']:,}B rss_peak={tm.get('peak_rss_kb', 0):,}KB"
        )
        for site in tm.get("top_sites", []):
            lines.append(
                f"    {site['size_bytes']:>10,}B ({site['count']:>6} blocks) {site['site']}"
            )
    return lines


def _load_record(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    # Engine-written reports wrap the merged record in a document.
    if "record" in payload and isinstance(payload["record"], dict):
        payload = payload["record"]
    if "series" not in payload:
        raise ValueError(f"{path}: not a statescope record (no 'series' key)")
    return payload


def main(argv: Optional[Iterable[str]] = None) -> int:
    """``python -m repro.obs.statescope report <file>``.

    Exit 0 when the record is clean, 1 on a conformance failure or
    growth finding, 2 on unreadable/malformed input.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.statescope",
        description="Inspect state-footprint conformance reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render a statescope record")
    report.add_argument("path", help="statescope JSON (raw record or engine report)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    try:
        record = _load_record(args.path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"statescope: {exc}", file=sys.stderr)
        return 2

    for line in render_statescope_report(record):
        print(line)
    problems = len(record.get("findings", []))
    if not record.get("conformance", {}).get("pass", True):
        problems += 1
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
