"""A labeled metrics registry with JSON and Prometheus-text export.

The shape follows the Prometheus client-library data model in
miniature: a *family* (name + help + label names) owns *children* (one
per distinct label-value tuple), and children carry the actual state.
Three instrument kinds exist:

- :class:`Counter` — monotonically increasing totals
  (``tactic_router_ops_total{node="edge-0", role="edge", op="bf_lookups"}``);
- :class:`Gauge` — point-in-time values, settable directly or backed by
  a zero-argument callback read at snapshot time;
- :class:`Histogram` — bucketed observations with sum and count
  (cumulative ``le`` buckets in the export, as Prometheus expects).

A single :meth:`MetricsRegistry.snapshot` walks every family and
returns plain dicts; :meth:`~MetricsRegistry.to_json` and
:meth:`~MetricsRegistry.to_prometheus` render that snapshot.  Nothing
here touches the simulator — wiring lives in :mod:`repro.obs.session`.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for simulated latencies (seconds).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Every metric family name the codebase registers.  New instruments
#: must be declared here first: simlint rule SL003 checks the literal
#: name at every ``counter(...)`` / ``gauge(...)`` / ``histogram(...)``
#: / ``add_probe(...)`` call site against this registry, so a typo'd
#: name fails lint instead of silently forking a new family (see
#: docs/STATIC_ANALYSIS.md).
METRIC_NAMES = (
    # Bridged run totals (repro.obs.session).
    "tactic_router_ops_total",
    "user_outcomes_total",
    "client_latency_seconds",
    # Periodic sampler probes (repro.obs.samplers).
    "sim_pending_events",
    "pit_entries",
    "cs_entries",
    "cs_hit_ratio",
    "bf_fill_ratio",
    "bf_current_fpp",
    "link_queue_seconds",
    # Parallel experiment engine (repro.exec.engine).
    "exec_runs_total",
    "exec_cache_events_total",
    "exec_worker_wall_seconds",
    # Decision auditing (repro.obs.audit via repro.obs.session).
    "audit_decisions_total",
    "audit_bf_misauth_rate",
    "audit_bf_expected_rate",
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labelnames: Sequence[str]) -> Tuple[str, ...]:
    for label in labelnames:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(labelnames)


class _Family:
    """Shared family machinery: child lookup keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labels(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues: str) -> object:
        """The child for one label-value combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self) -> object:
        raise NotImplementedError

    def _samples(self) -> List[Tuple[Dict[str, str], object]]:
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in sorted(self._children.items())
        ]


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount!r}")
        self.value += amount


class Counter(_Family):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child (families with no labels only)."""
        if self.labelnames:
            raise ValueError(f"{self.name} has labels; use .labels(...).inc()")
        self.labels().inc(amount)


class _GaugeChild:
    __slots__ = ("value", "callback")

    def __init__(self) -> None:
        self.value = 0.0
        self.callback: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.callback = None
        self.value = value

    def set_function(self, callback: Callable[[], float]) -> None:
        """Read the gauge from ``callback()`` at snapshot time."""
        self.callback = callback

    def read(self) -> float:
        return float(self.callback()) if self.callback is not None else self.value


class Gauge(_Family):
    """A point-in-time value, settable or callback-backed."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} has labels; use .labels(...).set()")
        self.labels().set(value)


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper-bound, cumulative count) pairs, ending at +inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile by linear interpolation within buckets.

        Matches Prometheus' ``histogram_quantile``: observations landing
        in the overflow bucket clamp to the highest finite bound, and an
        empty histogram has no quantile (``None``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q!r}")
        if self.count == 0:
            return None
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self.counts):
            if count and running + count >= rank:
                fraction = (rank - running) / count
                return lower + (bound - lower) * fraction
            running += count
            lower = bound
        return self.buckets[-1]


class Histogram(_Family):
    """Bucketed observations with sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = ordered

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} has labels; use .labels(...).observe()")
        self.labels().observe(value)

    def quantile(self, q: float) -> Optional[float]:
        """Quantile of the label-less child (families with no labels only)."""
        if self.labelnames:
            raise ValueError(f"{self.name} has labels; use .labels(...).quantile()")
        return self.labels().quantile(q)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (exposition format 0.0.4)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + body + "}"


class MetricsRegistry:
    """Owns metric families and renders them as JSON or Prometheus text."""

    def __init__(self) -> None:
        self._families: "Dict[str, _Family]" = {}
        #: Hooks run immediately before every snapshot — the bridge point
        #: for state that lives elsewhere (e.g. router ``OpCounters``).
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # Family constructors (idempotent: same name returns the same family)
    # ------------------------------------------------------------------
    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family) or existing.labelnames != family.labelnames:
                raise ValueError(
                    f"metric {family.name!r} re-registered with a different "
                    f"kind or label set"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    def register_collector(self, hook: Callable[["MetricsRegistry"], None]) -> None:
        self._collectors.append(hook)

    # ------------------------------------------------------------------
    # Merge (worker telemetry round-trip)
    # ------------------------------------------------------------------
    def merge_snapshot(self, snap: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) into
        this registry.

        Counters and histogram buckets/sums add; gauges take the
        incoming value (last write wins).  Families are created on first
        sight from the snapshot's declared ``labelnames`` /
        ``bucket_bounds``; an existing family with a conflicting kind,
        label set, or bucket layout raises :class:`ValueError`.
        """
        for name in sorted(snap):
            family = snap[name]
            kind = family["kind"]
            labelnames = family.get("labelnames")
            if labelnames is None:
                samples = family["samples"]
                labelnames = sorted(samples[0]["labels"]) if samples else []
            if kind == "counter":
                target = self.counter(name, family.get("help", ""), labelnames)
                for sample in family["samples"]:
                    target.labels(**sample["labels"]).inc(sample["value"])
            elif kind == "gauge":
                target = self.gauge(name, family.get("help", ""), labelnames)
                for sample in family["samples"]:
                    target.labels(**sample["labels"]).set(sample["value"])
            elif kind == "histogram":
                bounds = family.get("bucket_bounds")
                if bounds is None:
                    bounds = [
                        pair[0]
                        for pair in family["samples"][0]["buckets"]
                        if pair[0] != float("inf")
                    ]
                target = self.histogram(
                    name, family.get("help", ""), labelnames, buckets=bounds
                )
                if list(target.buckets) != list(bounds):
                    raise ValueError(
                        f"histogram {name!r} merged with mismatched buckets"
                    )
                for sample in family["samples"]:
                    child = target.labels(**sample["labels"])
                    running = 0
                    for index, (_bound, cumulative) in enumerate(sample["buckets"]):
                        child.counts[index] += cumulative - running
                        running = cumulative
                    child.sum += sample["sum"]
                    child.count += sample["count"]
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot merge metric kind {kind!r}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's current state into this one."""
        self.merge_snapshot(other.snapshot())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Every family rendered to plain dicts (collectors run first)."""
        for hook in self._collectors:
            hook(self)
        out: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for labels, child in family._samples():
                if family.kind == "counter":
                    samples.append({"labels": labels, "value": child.value})
                elif family.kind == "gauge":
                    samples.append({"labels": labels, "value": child.read()})
                else:
                    samples.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": [
                                [bound, count] for bound, count in child.cumulative()
                            ],
                        }
                    )
            rendered = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
            if family.kind == "histogram":
                rendered["bucket_bounds"] = list(family.buckets)
            out[name] = rendered
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=_json_inf)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        snap = self.snapshot()
        for name, family in snap.items():
            if family["help"]:
                lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for sample in family["samples"]:
                labels = sample["labels"]
                if family["kind"] in ("counter", "gauge"):
                    lines.append(f"{name}{_format_labels(labels)} {sample['value']}")
                    continue
                for bound, count in sample["buckets"]:
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    lines.append(
                        f"{name}_bucket{_format_labels({**labels, 'le': le})} {count}"
                    )
                lines.append(f"{name}_sum{_format_labels(labels)} {sample['sum']}")
                lines.append(f"{name}_count{_format_labels(labels)} {sample['count']}")
        return "\n".join(lines) + "\n"


def _json_inf(value: object) -> object:  # pragma: no cover - defensive
    return repr(value)
