"""Content-addressed on-disk run cache.

Because a single seed fully determines a run (the ``repro.qa``
determinism gate proves this), a run's results are a pure function of
*(scenario spec, code)*.  The cache exploits that: each completed
:class:`~repro.exec.summary.RunSummary` is stored under a BLAKE2 key of

- the spec's canonical JSON (topology, duration, seed, scale, scheme,
  config overrides, attacker mix, latency bucket, hash-events flag),
- a **code fingerprint** — a BLAKE2 hash over every ``*.py`` file in
  the installed ``repro`` package — so any source change invalidates
  every prior entry, and
- a cache format version.

Entries are one JSON document each (human-inspectable; floats
round-trip exactly through ``repr``), written atomically via a
temp-file rename so concurrent workers never observe torn entries.
Corrupt or unreadable entries read as misses.

Set ``REPRO_CODE_FINGERPRINT`` to pin the fingerprint explicitly
(useful in tests and in CI jobs that restore caches across checkouts).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.exec.summary import RunSummary

__all__ = ["CACHE_FORMAT", "RunCache", "cache_key", "code_fingerprint"]

#: Bump to invalidate every existing cache entry on format changes.
#: 2: RunSummary grew the ``telemetry`` envelope (worker round-trip).
#: 3: RunSummary grew the ``fleetperf`` worker-lifecycle record.
#: 4: RunSummary grew the ``statescope`` state-accounting record.
CACHE_FORMAT = 4

_fingerprint_memo: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """BLAKE2 hash over the ``repro`` package sources (memoized).

    The ``REPRO_CODE_FINGERPRINT`` environment variable overrides the
    computed value.
    """
    global _fingerprint_memo
    override = os.environ.get("REPRO_CODE_FINGERPRINT", "").strip()
    if override:
        return override
    if _fingerprint_memo is None or refresh:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.blake2b(digest_size=16)
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


def cache_key(spec: Any, fingerprint: Optional[str] = None) -> str:
    """The content address of one run: BLAKE2(spec, code, format)."""
    payload = {
        "format": CACHE_FORMAT,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
        "spec": spec.canonical(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=20).hexdigest()


class RunCache:
    """A directory of content-addressed run summaries."""

    def __init__(self, directory: Any) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Entry path; the two-char shard keeps directories small."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunSummary]:
        """The cached summary for ``key``, or ``None`` (corrupt = miss)."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            summary = RunSummary.from_json_dict(payload["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: RunSummary) -> Path:
        """Store ``summary`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"format": CACHE_FORMAT, "key": key, "summary": summary.to_json_dict()}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))
