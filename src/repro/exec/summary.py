"""Compact, picklable run summaries.

A :class:`RunSummary` carries every quantity the paper's figures and
tables read off a run — and nothing else.  A live
:class:`~repro.experiments.runner.RunResult` drags the whole simulation
behind it (network, nodes, scheduler heap); a summary is a few KB of
plain data, so worker processes can hand it back over a pipe and the
run cache can round-trip it through JSON exactly.

The accessor methods mirror the :class:`RunResult` API
(``tag_rates()``, ``client_delivery_ratio()``, ``operation_counts()``
…), so sweep metric extractors and figure reducers work unchanged
against either object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.core.metrics import OpCounters

#: The scalar OpCounters fields a summary carries per router class
#: (``reset_intervals`` travels separately; ``requests_since_reset`` is
#: always zero after merging).
OP_FIELDS = (
    "bf_lookups",
    "bf_inserts",
    "signature_verifications",
    "client_sig_verifications",
    "bf_resets",
    "precheck_drops",
    "access_path_drops",
    "nacks_issued",
)


@dataclass
class RunSummary:
    """Every figure/table quantity from one run, as plain data.

    Fields marked ``compare=False`` (wall-clock, cache provenance) are
    excluded from equality, so a cache hit, a serial run, and a parallel
    run of the same spec compare equal iff their *measurements* agree.
    """

    label: str = ""
    scheme: str = "tactic"
    seed: int = 0
    duration: float = 0.0
    num_clients: int = 0
    num_attackers: int = 0
    chunk_size_bytes: int = 0
    # --- Table IV --------------------------------------------------------
    client_requested: int = 0
    client_received: int = 0
    client_usable: int = 0
    attacker_requested: int = 0
    attacker_received: int = 0
    attacker_usable: int = 0
    # --- Fig. 5 ----------------------------------------------------------
    mean_latency_s: Optional[float] = None
    latency_bucket: float = 1.0
    latency_points: Tuple[Tuple[float, float], ...] = ()
    # --- Fig. 6 ----------------------------------------------------------
    tag_request_rate: float = 0.0
    tag_receive_rate: float = 0.0
    # --- Fig. 7 / Fig. 8 / Table V ---------------------------------------
    edge_ops: Dict[str, int] = field(default_factory=dict)
    core_ops: Dict[str, int] = field(default_factory=dict)
    edge_reset_intervals: Tuple[int, ...] = ()
    core_reset_intervals: Tuple[int, ...] = ()
    # --- Table II / network level ----------------------------------------
    origin_chunks_served: int = 0
    total_network_bytes: int = 0
    total_network_drops: int = 0
    events_executed: int = 0
    #: BLAKE2 event-stream digest (set when the spec asked for
    #: ``hash_events``); the cross-process determinism check.
    event_digest: Optional[str] = None
    # --- Provenance (excluded from equality) -----------------------------
    wall_seconds: float = field(default=0.0, compare=False)
    cached: bool = field(default=False, compare=False)
    worker_pid: int = field(default=0, compare=False)
    #: The run's telemetry envelope (a :meth:`TelemetrySession.finalize`
    #: record: bridged metrics snapshot, sampler series, profile) when
    #: the engine ran with fleet telemetry on; ``None`` otherwise.
    #: Provenance-adjacent: excluded from equality so telemetered and
    #: untelemetered runs of one spec still compare equal.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: The run's decision-audit summary (a :meth:`DecisionAudit.summary`
    #: dict) when the engine ran with auditing on; ``None`` otherwise.
    #: Excluded from equality for the same reason as ``telemetry``.
    audit: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: The run's worker-lifecycle record (a
    #: :meth:`~repro.obs.fleetperf.WorkerLifecycle.finalize` dict: phase
    #: seconds, monotonic stamps, envelope byte count) when the engine
    #: ran with the fleet observatory on; ``None`` otherwise.  Excluded
    #: from equality for the same reason as ``telemetry``.
    fleetperf: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: The run's state-accounting record (a
    #: :meth:`~repro.obs.statescope.StateScope.record` dict: sampled
    #: ``state.*`` series, growth findings, model-conformance checks)
    #: when the engine ran with the statescope on; ``None`` otherwise.
    #: Excluded from equality for the same reason as ``telemetry``.
    statescope: Optional[Dict[str, Any]] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # RunResult-compatible accessors
    # ------------------------------------------------------------------
    def client_delivery_ratio(self) -> float:
        if self.client_requested == 0:
            return 0.0
        return self.client_received / self.client_requested

    def attacker_delivery_ratio(self) -> float:
        if self.attacker_requested == 0:
            return 0.0
        return self.attacker_received / self.attacker_requested

    def usable_ratio(self, attackers: bool = False) -> float:
        requested = self.attacker_requested if attackers else self.client_requested
        usable = self.attacker_usable if attackers else self.client_usable
        if requested == 0:
            return 0.0
        return usable / requested

    def total_requested(self, attackers: bool = False) -> int:
        return self.attacker_requested if attackers else self.client_requested

    def total_received(self, attackers: bool = False) -> int:
        return self.attacker_received if attackers else self.client_received

    def delivery_table_row(self) -> Dict[str, float]:
        return {
            "client_requested": self.client_requested,
            "client_received": self.client_received,
            "client_ratio": self.client_delivery_ratio(),
            "attacker_requested": self.attacker_requested,
            "attacker_received": self.attacker_received,
            "attacker_ratio": self.attacker_delivery_ratio(),
        }

    def latency_series(self, bucket: float = 1.0) -> List[Tuple[float, float]]:
        if bucket != self.latency_bucket:
            raise ValueError(
                f"summary carries the latency series at bucket="
                f"{self.latency_bucket}, not {bucket}; set "
                f"ScenarioSpec.latency_bucket before running"
            )
        return [tuple(point) for point in self.latency_points]

    def mean_latency(self) -> Optional[float]:
        return self.mean_latency_s

    def tag_rates(self) -> Tuple[float, float]:
        return (self.tag_request_rate, self.tag_receive_rate)

    def operation_counts(self, edge: bool) -> OpCounters:
        ops = self.edge_ops if edge else self.core_ops
        intervals = self.edge_reset_intervals if edge else self.core_reset_intervals
        return OpCounters(
            **{name: ops.get(name, 0) for name in OP_FIELDS},
            reset_intervals=list(intervals),
        )

    def reset_threshold(self, edge: bool) -> Optional[float]:
        intervals = self.edge_reset_intervals if edge else self.core_reset_intervals
        if not intervals:
            return None
        return sum(intervals) / len(intervals)

    def total_bf_resets(self, edge: bool) -> int:
        ops = self.edge_ops if edge else self.core_ops
        return ops.get("bf_resets", 0)

    def network_bytes(self) -> int:
        return self.total_network_bytes

    def network_drops(self) -> int:
        return self.total_network_drops

    # ------------------------------------------------------------------
    # Comparison / serialisation
    # ------------------------------------------------------------------
    def metrics_dict(self) -> Dict[str, Any]:
        """Every *deterministic* quantity as one flat dict.

        Provenance fields (wall-clock, pid, cache flag) are excluded:
        two runs of the same spec — serial, parallel, or cache-hit —
        must produce identical dicts.
        """
        out: Dict[str, Any] = {}
        for spec in fields(self):
            if not spec.compare:
                continue
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                for key in sorted(value):
                    out[f"{spec.name}.{key}"] = value[key]
            else:
                out[spec.name] = value
        return out

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "scheme": self.scheme,
            "seed": self.seed,
            "duration": self.duration,
            "num_clients": self.num_clients,
            "num_attackers": self.num_attackers,
            "chunk_size_bytes": self.chunk_size_bytes,
            "client_requested": self.client_requested,
            "client_received": self.client_received,
            "client_usable": self.client_usable,
            "attacker_requested": self.attacker_requested,
            "attacker_received": self.attacker_received,
            "attacker_usable": self.attacker_usable,
            "mean_latency_s": self.mean_latency_s,
            "latency_bucket": self.latency_bucket,
            "latency_points": [list(point) for point in self.latency_points],
            "tag_request_rate": self.tag_request_rate,
            "tag_receive_rate": self.tag_receive_rate,
            "edge_ops": dict(self.edge_ops),
            "core_ops": dict(self.core_ops),
            "edge_reset_intervals": list(self.edge_reset_intervals),
            "core_reset_intervals": list(self.core_reset_intervals),
            "origin_chunks_served": self.origin_chunks_served,
            "total_network_bytes": self.total_network_bytes,
            "total_network_drops": self.total_network_drops,
            "events_executed": self.events_executed,
            "event_digest": self.event_digest,
            "wall_seconds": self.wall_seconds,
            "telemetry": self.telemetry,
            "audit": self.audit,
            "fleetperf": self.fleetperf,
            "statescope": self.statescope,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunSummary":
        mean = payload["mean_latency_s"]
        return cls(
            label=str(payload["label"]),
            scheme=str(payload["scheme"]),
            seed=int(payload["seed"]),
            duration=float(payload["duration"]),
            num_clients=int(payload["num_clients"]),
            num_attackers=int(payload["num_attackers"]),
            chunk_size_bytes=int(payload["chunk_size_bytes"]),
            client_requested=int(payload["client_requested"]),
            client_received=int(payload["client_received"]),
            client_usable=int(payload["client_usable"]),
            attacker_requested=int(payload["attacker_requested"]),
            attacker_received=int(payload["attacker_received"]),
            attacker_usable=int(payload["attacker_usable"]),
            mean_latency_s=None if mean is None else float(mean),
            latency_bucket=float(payload["latency_bucket"]),
            latency_points=tuple(
                (float(when), float(value))
                for when, value in payload["latency_points"]
            ),
            tag_request_rate=float(payload["tag_request_rate"]),
            tag_receive_rate=float(payload["tag_receive_rate"]),
            edge_ops={key: int(val) for key, val in payload["edge_ops"].items()},
            core_ops={key: int(val) for key, val in payload["core_ops"].items()},
            edge_reset_intervals=tuple(
                int(val) for val in payload["edge_reset_intervals"]
            ),
            core_reset_intervals=tuple(
                int(val) for val in payload["core_reset_intervals"]
            ),
            origin_chunks_served=int(payload["origin_chunks_served"]),
            total_network_bytes=int(payload["total_network_bytes"]),
            total_network_drops=int(payload["total_network_drops"]),
            events_executed=int(payload["events_executed"]),
            event_digest=(
                None if payload["event_digest"] is None
                else str(payload["event_digest"])
            ),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            telemetry=payload.get("telemetry"),
            audit=payload.get("audit"),
            fleetperf=payload.get("fleetperf"),
            statescope=payload.get("statescope"),
        )


def _op_dict(counters: OpCounters) -> Dict[str, int]:
    return {name: getattr(counters, name) for name in OP_FIELDS}


def summarize(
    result: Any,
    latency_bucket: float = 1.0,
    event_digest: Optional[str] = None,
) -> RunSummary:
    """Extract a :class:`RunSummary` from a live ``RunResult``."""
    edge = result.metrics.merged_counters(edge=True)
    core = result.metrics.merged_counters(edge=False)
    request_rate, receive_rate = result.tag_rates()
    return RunSummary(
        label=result.scenario.label,
        scheme=result.scenario.scheme,
        seed=result.config.seed,
        duration=result.config.duration,
        num_clients=len(result.clients),
        num_attackers=len(result.attackers),
        chunk_size_bytes=result.config.chunk_size_bytes,
        client_requested=result.metrics.total_requested(False),
        client_received=result.metrics.total_received(False),
        client_usable=result.metrics.total_usable(False),
        attacker_requested=result.metrics.total_requested(True),
        attacker_received=result.metrics.total_received(True),
        attacker_usable=result.metrics.total_usable(True),
        mean_latency_s=result.mean_latency(),
        latency_bucket=latency_bucket,
        latency_points=tuple(
            (when, value) for when, value in result.latency_series(latency_bucket)
        ),
        tag_request_rate=request_rate,
        tag_receive_rate=receive_rate,
        edge_ops=_op_dict(edge),
        core_ops=_op_dict(core),
        edge_reset_intervals=tuple(edge.reset_intervals),
        core_reset_intervals=tuple(core.reset_intervals),
        origin_chunks_served=sum(p.stats.chunks_served for p in result.providers),
        total_network_bytes=result.network_bytes(),
        total_network_drops=result.network_drops(),
        events_executed=result.sim.events_executed,
        event_digest=event_digest,
        wall_seconds=result.wall_seconds,
    )
