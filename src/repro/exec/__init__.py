"""repro.exec — the parallel experiment engine.

Separates every experiment driver into *enumerate* (build picklable
:class:`ScenarioSpec` lists) and *reduce* (fold the returned
:class:`RunSummary` list into figure/table rows), with the engine in
between handling multiprocess fan-out (``--jobs`` / ``REPRO_JOBS``)
and the content-addressed run cache (``--cache-dir`` /
``REPRO_CACHE_DIR``).  See docs/PERFORMANCE.md.
"""

from repro.exec.cache import CACHE_FORMAT, RunCache, cache_key, code_fingerprint
from repro.exec.engine import (
    FLEET_TRACE_ENV,
    FLEETPERF_ENV,
    ExecStats,
    ExperimentEngine,
    default_registry,
    resolve_jobs,
    run_specs,
)
from repro.exec.spec import ScenarioSpec, canonical_value
from repro.exec.summary import RunSummary, summarize

__all__ = [
    "CACHE_FORMAT",
    "ExecStats",
    "ExperimentEngine",
    "FLEETPERF_ENV",
    "FLEET_TRACE_ENV",
    "RunCache",
    "RunSummary",
    "ScenarioSpec",
    "cache_key",
    "canonical_value",
    "code_fingerprint",
    "default_registry",
    "resolve_jobs",
    "run_specs",
    "summarize",
]
