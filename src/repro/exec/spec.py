"""Picklable scenario specifications.

A :class:`ScenarioSpec` is the *description* of one simulation point —
topology index, duration, seed, scale, scheme, config overrides — as
pure data.  Unlike a live :class:`~repro.experiments.scenario.Scenario`
(which already carries a generated topology plan), a spec is tiny,
cheap to pickle across a ``multiprocessing`` spawn boundary, and has a
canonical JSON form that the run cache hashes (see
:mod:`repro.exec.cache`).  Workers rebuild the full scenario with
:meth:`ScenarioSpec.build`; because a single seed fully determines a
run, the rebuilt scenario is guaranteed to reproduce the same results
the parent process would have measured in-process.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.attacker import AttackerMode


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to JSON-representable data with a stable order.

    Dataclass config objects (e.g. a ``ComputationCostModel`` override)
    are expanded field-by-field and tagged with their class name, so
    two different models never collide under one cache key.  Floats are
    passed through: ``json.dumps`` renders them via ``repr``, which
    round-trips exactly.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                key: canonical_value(val)
                for key, val in sorted(dataclasses.asdict(value).items())
            },
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, Mapping):
        return {str(key): canonical_value(val) for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to rebuild and run one scenario, as pure data.

    ``overrides`` holds :class:`~repro.core.config.TacticConfig` field
    overrides as a sorted tuple of ``(name, value)`` pairs (use
    :meth:`make` to normalise a dict).  ``attacker_modes`` carries
    :class:`~repro.core.attacker.AttackerMode` *names* (``None`` keeps
    the paper's default mix).  ``latency_bucket`` fixes the bucket the
    latency series is aggregated at; ``hash_events`` arms a collect-mode
    SimSan so the resulting summary carries the determinism digest.
    """

    topology: int = 1
    duration: float = 20.0
    seed: int = 1
    scale: float = 0.25
    scheme: str = "tactic"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    attacker_modes: Optional[Tuple[str, ...]] = None
    label: str = ""
    latency_bucket: float = 1.0
    hash_events: bool = False

    @classmethod
    def make(
        cls,
        topology: int = 1,
        duration: float = 20.0,
        seed: int = 1,
        scale: float = 0.25,
        scheme: str = "tactic",
        overrides: Optional[Mapping[str, Any]] = None,
        attacker_modes: Optional[Sequence[Any]] = None,
        label: str = "",
        latency_bucket: float = 1.0,
        hash_events: bool = False,
    ) -> "ScenarioSpec":
        """Build a spec, normalising overrides and attacker modes."""
        items = tuple(sorted((overrides or {}).items()))
        modes: Optional[Tuple[str, ...]] = None
        if attacker_modes is not None:
            modes = tuple(
                mode.name if isinstance(mode, AttackerMode) else str(mode)
                for mode in attacker_modes
            )
        return cls(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            scheme=scheme,
            overrides=items,
            attacker_modes=modes,
            label=label,
            latency_bucket=latency_bucket,
            hash_events=hash_events,
        )

    def with_overrides(self, **extra: Any) -> "ScenarioSpec":
        """A copy with additional config overrides merged in."""
        merged = dict(self.overrides)
        merged.update(extra)
        return dataclasses.replace(self, overrides=tuple(sorted(merged.items())))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def build(self) -> Any:
        """Materialise the live :class:`Scenario` this spec describes."""
        from repro.core.attacker import PAPER_MODES
        from repro.experiments.scenario import Scenario

        modes = PAPER_MODES
        if self.attacker_modes is not None:
            modes = tuple(AttackerMode[name] for name in self.attacker_modes)
        scenario = Scenario.paper_topology(
            self.topology,
            duration=self.duration,
            seed=self.seed,
            scale=self.scale,
            scheme=self.scheme,
            attacker_modes=modes,
        )
        if self.overrides:
            scenario = scenario.with_config(**dict(self.overrides))
        if self.label:
            scenario = dataclasses.replace(scenario, label=self.label)
        return scenario

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, Any]:
        """The spec as stable JSON-representable data (cache-key input)."""
        overrides: List[Any] = [
            [name, canonical_value(value)] for name, value in self.overrides
        ]
        return {
            "topology": self.topology,
            "duration": self.duration,
            "seed": self.seed,
            "scale": self.scale,
            "scheme": self.scheme,
            "overrides": overrides,
            "attacker_modes": (
                list(self.attacker_modes) if self.attacker_modes is not None else None
            ),
            "label": self.label,
            "latency_bucket": self.latency_bucket,
            "hash_events": self.hash_events,
        }
