"""The parallel experiment engine.

Every experiment driver follows the same shape now: **enumerate** the
scenario points as picklable :class:`~repro.exec.spec.ScenarioSpec`
objects, hand the list to :func:`run_specs`, and **reduce** the
returned :class:`~repro.exec.summary.RunSummary` list into figure/table
rows.  The engine owns everything in between:

- **Cache probe** — each spec is content-addressed (see
  :mod:`repro.exec.cache`); hits are returned without executing.
- **Fan-out** — cache misses run on a spawn-context
  ``multiprocessing`` pool when ``jobs > 1``; each worker rebuilds its
  scenario from the spec and returns a compact summary, never a live
  ``RunResult``.  Spawn (not fork) keeps workers free of inherited
  interpreter state, so a worker run is bit-identical to an in-process
  run of the same seed.
- **Telemetry** — per-run wall clock, run counts by execution mode, and
  cache hit/miss counters land in a
  :class:`~repro.obs.metrics.MetricsRegistry` (the module-default one,
  or any registry passed in).

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  Serial runs
execute in-process, so process-default telemetry
(:func:`repro.obs.session.set_default_telemetry`) still attaches;
parallel workers run untelemetered.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.exec.cache import RunCache, cache_key
from repro.exec.spec import ScenarioSpec
from repro.exec.summary import RunSummary, summarize
from repro.obs.metrics import MetricsRegistry

__all__ = ["ExecStats", "ExperimentEngine", "resolve_jobs", "run_specs"]

#: Environment knobs (documented in docs/PERFORMANCE.md).
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Histogram buckets for per-run wall clock (seconds); runs range from
#: sub-second CI points to minutes-long paper-scale sweeps.
WALL_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry engine instances record into."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry()
    return _default_registry


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_JOBS`` env > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def _execute_spec(spec: ScenarioSpec) -> RunSummary:
    """Run one spec end to end (the worker entry point).

    Top-level so it pickles under the spawn start method.  Imports stay
    inside the function: a freshly spawned interpreter only pays for
    the simulator once it actually runs something.
    """
    from repro.experiments.runner import run_scenario

    began = time.perf_counter()
    scenario = spec.build()
    sanitizer = None
    if spec.hash_events:
        from repro.qa.simsan import SimSan

        sanitizer = SimSan(mode="collect", hash_events=True)
    result = run_scenario(scenario, sanitizer=sanitizer)
    digest = sanitizer.stream_digest() if sanitizer is not None else None
    summary = summarize(
        result, latency_bucket=spec.latency_bucket, event_digest=digest
    )
    summary.wall_seconds = time.perf_counter() - began
    summary.worker_pid = os.getpid()
    return summary


@dataclass
class ExecStats:
    """Plain counters mirroring the engine's registry metrics."""

    serial_runs: int = 0
    parallel_runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    worker_wall_total: float = 0.0
    per_run_wall: List[float] = field(default_factory=list)


class ExperimentEngine:
    """Submit/reduce executor for scenario specs.

    Parameters
    ----------
    jobs:
        Worker process count (``None`` = ``REPRO_JOBS`` env, else 1).
    cache_dir:
        Run-cache directory (``None`` = ``REPRO_CACHE_DIR`` env, else
        no cache).
    use_cache:
        ``False`` disables the cache even when a directory is known
        (the CLI's ``--no-cache``).
    registry:
        Metrics registry to record into (``None`` = the module default).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[Any] = None,
        use_cache: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        directory = cache_dir
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, "").strip() or None
        self.cache: Optional[RunCache] = (
            RunCache(directory) if (use_cache and directory is not None) else None
        )
        self.registry = registry if registry is not None else default_registry()
        self.stats = ExecStats()
        self._runs_total = self.registry.counter(
            "exec_runs_total",
            "Scenario runs executed by the experiment engine, by mode.",
            labelnames=("mode",),
        )
        self._cache_events = self.registry.counter(
            "exec_cache_events_total",
            "Run-cache probes by result.",
            labelnames=("result",),
        )
        self._worker_wall = self.registry.histogram(
            "exec_worker_wall_seconds",
            "Per-run wall-clock seconds, by execution mode.",
            labelnames=("mode",),
            buckets=WALL_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_specs(self, specs: Iterable[ScenarioSpec]) -> List[RunSummary]:
        """Execute every spec and return summaries in submission order."""
        ordered = list(specs)
        results: List[Optional[RunSummary]] = [None] * len(ordered)
        pending: List[Tuple[int, ScenarioSpec, Optional[str]]] = []

        for index, spec in enumerate(ordered):
            key: Optional[str] = None
            if self.cache is not None:
                key = cache_key(spec)
                hit = self.cache.get(key)
                if hit is not None:
                    hit.cached = True
                    results[index] = hit
                    self.stats.cache_hits += 1
                    self._cache_events.labels(result="hit").inc()
                    continue
                self.stats.cache_misses += 1
                self._cache_events.labels(result="miss").inc()
            pending.append((index, spec, key))

        if pending:
            workers = min(self.jobs, len(pending))
            if workers > 1:
                mode = "parallel"
                context = multiprocessing.get_context("spawn")
                with context.Pool(processes=workers) as pool:
                    summaries = pool.map(
                        _execute_spec, [spec for _, spec, _ in pending], chunksize=1
                    )
            else:
                mode = "serial"
                summaries = [_execute_spec(spec) for _, spec, _ in pending]
            for (index, _, key), summary in zip(pending, summaries):
                results[index] = summary
                self._note_run(mode, summary)
                if self.cache is not None and key is not None:
                    self.cache.put(key, summary)

        return [summary for summary in results if summary is not None]

    def _note_run(self, mode: str, summary: RunSummary) -> None:
        if mode == "parallel":
            self.stats.parallel_runs += 1
        else:
            self.stats.serial_runs += 1
        self.stats.worker_wall_total += summary.wall_seconds
        self.stats.per_run_wall.append(summary.wall_seconds)
        self._runs_total.labels(mode=mode).inc()
        self._worker_wall.labels(mode=mode).observe(summary.wall_seconds)


def run_specs(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    cache_dir: Optional[Any] = None,
    use_cache: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> List[RunSummary]:
    """One-shot convenience over :class:`ExperimentEngine`."""
    engine = ExperimentEngine(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, registry=registry
    )
    return engine.run_specs(specs)
