"""The parallel experiment engine.

Every experiment driver follows the same shape now: **enumerate** the
scenario points as picklable :class:`~repro.exec.spec.ScenarioSpec`
objects, hand the list to :func:`run_specs`, and **reduce** the
returned :class:`~repro.exec.summary.RunSummary` list into figure/table
rows.  The engine owns everything in between:

- **Cache probe** — each spec is content-addressed (see
  :mod:`repro.exec.cache`); hits are returned without executing.
- **Fan-out** — cache misses run on a spawn-context
  ``multiprocessing`` pool when ``jobs > 1``; each worker rebuilds its
  scenario from the spec and returns a compact summary, never a live
  ``RunResult``.  Spawn (not fork) keeps workers free of inherited
  interpreter state, so a worker run is bit-identical to an in-process
  run of the same seed.
- **Telemetry** — per-run wall clock, run counts by execution mode, and
  cache hit/miss counters land in a
  :class:`~repro.obs.metrics.MetricsRegistry` (the module-default one,
  or any registry passed in).

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  Serial runs
execute in-process, so process-default telemetry
(:func:`repro.obs.session.set_default_telemetry`) still attaches.

**Worker telemetry round-trip** (docs/OBSERVABILITY.md, "Fleet
observability"): with fleet telemetry on — explicit
``collect_telemetry=True``, ``REPRO_FLEET_TELEMETRY=1``, or
automatically whenever a process-default telemetry config is installed
— every run (worker or in-process) attaches a
:class:`~repro.obs.session.TelemetrySession` and ships its finalize
record home inside the pickled :class:`RunSummary` (``.telemetry``).
The parent merges each envelope's metrics snapshot, in submission
order, into :attr:`ExperimentEngine.fleet_registry` via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`; the run
cache stores the envelope too, so cache hits replay the same telemetry
without re-executing.  :meth:`ExperimentEngine.merged_snapshot` is the
fleet registry folded together with the engine's own exec counters.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.cache import RunCache, cache_key
from repro.exec.spec import ScenarioSpec
from repro.exec.summary import RunSummary, summarize
from repro.obs.audit import AUDIT_ENV, AUDIT_OUT_ENV
from repro.obs.metrics import MetricsRegistry
from repro.obs.statescope import STATESCOPE_ENV, STATESCOPE_OUT_ENV

__all__ = ["ExecStats", "ExperimentEngine", "resolve_jobs", "run_specs"]

#: Environment knobs (documented in docs/PERFORMANCE.md).
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
FLEET_TELEMETRY_ENV = "REPRO_FLEET_TELEMETRY"
PROGRESS_ENV = "REPRO_PROGRESS"
ENGINE_EVENTS_ENV = "REPRO_ENGINE_EVENTS"
FLEET_METRICS_ENV = "REPRO_FLEET_METRICS"
FLEETPERF_ENV = "REPRO_FLEETPERF"
FLEET_TRACE_ENV = "REPRO_FLEET_TRACE"

#: Worker-birth stamp for the fleet observatory.  A spawn-context
#: worker imports this module while the pool boots, so in a worker this
#: is "interpreter up, engine imported" on the shared monotonic clock;
#: the parent derives spawn + import cost as this stamp minus its
#: pool-open stamp (see :mod:`repro.obs.fleetperf`).
_MODULE_IMPORTED_AT = time.perf_counter()

#: Histogram buckets for per-run wall clock (seconds); runs range from
#: sub-second CI points to minutes-long paper-scale sweeps.
WALL_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry engine instances record into."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry()
    return _default_registry


def _env_flag(name: str) -> Optional[bool]:
    """Tri-state env flag: unset = None, else truthy unless 0/false/no/off."""
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return None
    return raw not in ("0", "false", "no", "off")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_JOBS`` env > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def _execute_spec(
    spec: ScenarioSpec,
    telemetry_args: Optional[Dict[str, Any]] = None,
    audit: bool = False,
    fleetperf: bool = False,
    statescope: bool = False,
) -> RunSummary:
    """Run one spec end to end (the worker entry point).

    Top-level so it pickles under the spawn start method.  Imports stay
    inside the function: a freshly spawned interpreter only pays for
    the simulator once it actually runs something.

    ``telemetry_args`` (``{"profile": bool, "sample_interval": float}``)
    asks for the fleet telemetry round-trip: the run attaches a
    session and its finalize record travels home in
    ``summary.telemetry``.  In-process runs reuse the process-default
    config when one is installed (so files/streams keep accumulating);
    workers — where no default exists — build a collect-mode config
    that touches no files.

    ``audit`` asks for the decision-audit round-trip: the run attaches
    a :class:`~repro.obs.audit.DecisionAudit` and its summary travels
    home in ``summary.audit`` the same way.

    ``fleetperf`` asks for the worker-lifecycle round-trip: a
    :class:`~repro.obs.fleetperf.WorkerLifecycle` charges the
    simulator-stack import, scenario build, sim run, envelope build,
    and envelope pickle to fleet phases, and its record travels home in
    ``summary.fleetperf`` the same way.

    ``statescope`` asks for the state-accounting round-trip: the run
    attaches a :class:`~repro.obs.statescope.StateScope` and its frozen
    record travels home in ``summary.statescope`` the same way.
    """
    lifecycle = None
    if fleetperf:
        from repro.obs.fleetperf import WorkerLifecycle

        lifecycle = WorkerLifecycle(_MODULE_IMPORTED_AT)

    mark = time.perf_counter()
    from repro.experiments.runner import run_scenario

    if lifecycle is not None:
        lifecycle.charge("fleet.import", time.perf_counter() - mark)

    began = time.perf_counter()
    scenario = spec.build()
    if lifecycle is not None:
        lifecycle.charge("fleet.build", time.perf_counter() - began)
    sanitizer = None
    if spec.hash_events:
        from repro.qa.simsan import SimSan

        sanitizer = SimSan(mode="collect", hash_events=True)

    telemetry = None
    if telemetry_args is not None:
        from repro.obs.session import TelemetryConfig, current_telemetry

        telemetry = current_telemetry()
        if telemetry is None or not telemetry.enabled():
            telemetry = TelemetryConfig(
                collect=True,
                profile=bool(telemetry_args.get("profile", False)),
                sample_interval=telemetry_args.get("sample_interval"),
                perf=bool(telemetry_args.get("perf", False)),
                flame=bool(telemetry_args.get("flame", False)),
            )

    auditor = None
    if audit:
        from repro.obs.audit import DecisionAudit

        auditor = DecisionAudit()

    scope = None
    if statescope:
        from repro.obs.statescope import StateScope

        scope = StateScope()

    mark = time.perf_counter()
    result = run_scenario(
        scenario,
        telemetry=telemetry,
        sanitizer=sanitizer,
        audit=auditor,
        statescope=scope,
    )
    if lifecycle is not None:
        lifecycle.charge("fleet.sim", time.perf_counter() - mark)
    mark = time.perf_counter()
    digest = sanitizer.stream_digest() if sanitizer is not None else None
    summary = summarize(
        result, latency_bucket=spec.latency_bucket, event_digest=digest
    )
    if result.telemetry is not None:
        summary.telemetry = result.telemetry.record
    if result.audit is not None:
        summary.audit = result.audit.summary()
    if result.statescope is not None:
        summary.statescope = result.statescope.record()
    summary.wall_seconds = time.perf_counter() - began
    summary.worker_pid = os.getpid()
    if lifecycle is not None:
        lifecycle.charge("fleet.envelope", time.perf_counter() - mark)
        # Finalize with ``summary.fleetperf`` still None so the byte
        # count describes what the pool pipe actually carries.
        summary.fleetperf = lifecycle.finalize(summary)
    return summary


def _execute_indexed(
    payload: Tuple[int, ScenarioSpec, Optional[Dict[str, Any]], bool, bool, bool]
) -> Tuple[int, RunSummary]:
    """Pool adapter: tags each result with its pending-list slot so the
    completion queue (``imap_unordered``) can restore submission order."""
    slot, spec, telemetry_args, audit, fleetperf, statescope = payload
    return slot, _execute_spec(spec, telemetry_args, audit, fleetperf, statescope)


@dataclass
class ExecStats:
    """Plain counters mirroring the engine's registry metrics."""

    serial_runs: int = 0
    parallel_runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    worker_wall_total: float = 0.0
    per_run_wall: List[float] = field(default_factory=list)


class ExperimentEngine:
    """Submit/reduce executor for scenario specs.

    Parameters
    ----------
    jobs:
        Worker process count (``None`` = ``REPRO_JOBS`` env, else 1).
    cache_dir:
        Run-cache directory (``None`` = ``REPRO_CACHE_DIR`` env, else
        no cache).
    use_cache:
        ``False`` disables the cache even when a directory is known
        (the CLI's ``--no-cache``).
    registry:
        Metrics registry to record into (``None`` = the module default).
    collect_telemetry:
        Worker telemetry round-trip: ``True``/``False`` explicit,
        ``None`` = ``REPRO_FLEET_TELEMETRY`` env, else on automatically
        whenever a process-default telemetry config is installed.
    progress:
        Live status line on stderr (``None`` = ``REPRO_PROGRESS`` env,
        else off).
    events_path:
        Append ``fleet.*`` events here as JSON lines (``None`` =
        ``REPRO_ENGINE_EVENTS`` env, else off).
    history_dir:
        Append a run-history entry per :meth:`run_specs` call (``None``
        = ``REPRO_HISTORY_DIR`` env, else off).
    fleet_metrics_path:
        Write :meth:`merged_snapshot` as JSON after every
        :meth:`run_specs` call (``None`` = ``REPRO_FLEET_METRICS`` env,
        else off).
    audit:
        Decision-audit round-trip: ``True``/``False`` explicit,
        ``None`` = ``REPRO_AUDIT`` env, else on automatically whenever
        ``audit_out`` is set.  Per-run summaries ride home in
        ``summary.audit`` (cache hits replay them) and fold into
        :attr:`fleet_audit` in submission order — bit-identical between
        serial and parallel execution.
    audit_out:
        Write the fleet-merged audit report (summary + binomial-CI
        check + rendered text) as JSON after every :meth:`run_specs`
        call (``None`` = ``REPRO_AUDIT_OUT`` env, else off).
    fleetperf:
        Fleet scheduling observatory (worker-lifecycle phases + pool
        timeline; :mod:`repro.obs.fleetperf`): ``True``/``False``
        explicit, ``None`` = ``REPRO_FLEETPERF`` env, else on
        automatically whenever ``fleet_trace`` is set.  Per-run
        lifecycle records ride home in ``summary.fleetperf`` (cache
        hits replay them), fold into :attr:`fleet_fleetperf` in
        submission order, and the pool-timeline report lands in
        :attr:`last_fleetperf` after each :meth:`run_specs` call.
    fleet_trace:
        Write the pool timeline as a Chrome trace (one lane per
        worker, spec slices + occupancy counter) after every
        :meth:`run_specs` call (``None`` = ``REPRO_FLEET_TRACE`` env,
        else off).  Implies ``fleetperf``.
    statescope:
        State-accounting round-trip (:mod:`repro.obs.statescope`):
        ``True``/``False`` explicit, ``None`` = ``REPRO_STATESCOPE``
        env, else on automatically whenever ``statescope_out`` is set.
        Per-run records ride home in ``summary.statescope`` (cache
        hits replay them) and fold into :attr:`fleet_statescope` in
        submission order — bit-identical between serial and parallel
        execution.
    statescope_out:
        Write the fleet-merged statescope report (merged record +
        rendered text) as JSON after every :meth:`run_specs` call
        (``None`` = ``REPRO_STATESCOPE_OUT`` env, else off).
    stream:
        Progress stream (``None`` = stderr; tests pass a StringIO).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[Any] = None,
        use_cache: bool = True,
        registry: Optional[MetricsRegistry] = None,
        collect_telemetry: Optional[bool] = None,
        progress: Optional[bool] = None,
        events_path: Optional[str] = None,
        history_dir: Optional[Any] = None,
        fleet_metrics_path: Optional[str] = None,
        audit: Optional[bool] = None,
        audit_out: Optional[str] = None,
        fleetperf: Optional[bool] = None,
        fleet_trace: Optional[str] = None,
        statescope: Optional[bool] = None,
        statescope_out: Optional[str] = None,
        stream: Optional[object] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        directory = cache_dir
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, "").strip() or None
        self.cache: Optional[RunCache] = (
            RunCache(directory) if (use_cache and directory is not None) else None
        )
        self.registry = registry if registry is not None else default_registry()
        self.collect_telemetry = (
            collect_telemetry
            if collect_telemetry is not None
            else _env_flag(FLEET_TELEMETRY_ENV)
        )
        self.progress = (
            progress if progress is not None else bool(_env_flag(PROGRESS_ENV))
        )
        self.events_path = (
            events_path
            if events_path is not None
            else os.environ.get(ENGINE_EVENTS_ENV, "").strip() or None
        )
        if history_dir is None:
            from repro.obs.history import HISTORY_DIR_ENV

            history_dir = os.environ.get(HISTORY_DIR_ENV, "").strip() or None
        self.history_dir = history_dir
        self.fleet_metrics_path = (
            fleet_metrics_path
            if fleet_metrics_path is not None
            else os.environ.get(FLEET_METRICS_ENV, "").strip() or None
        )
        self.audit_out = (
            audit_out
            if audit_out is not None
            else os.environ.get(AUDIT_OUT_ENV, "").strip() or None
        )
        resolved_audit = audit if audit is not None else _env_flag(AUDIT_ENV)
        self.audit = (
            resolved_audit
            if resolved_audit is not None
            else self.audit_out is not None
        )
        #: Per-run audit summaries folded in submission order — the
        #: fleet-wide decision-audit view (same determinism contract as
        #: :attr:`fleet_registry`).
        self.fleet_audit: Dict[str, Any] = {}
        self.fleet_trace = (
            fleet_trace
            if fleet_trace is not None
            else os.environ.get(FLEET_TRACE_ENV, "").strip() or None
        )
        resolved_fleetperf = (
            fleetperf if fleetperf is not None else _env_flag(FLEETPERF_ENV)
        )
        self.fleetperf = (
            resolved_fleetperf
            if resolved_fleetperf is not None
            else self.fleet_trace is not None
        )
        #: Per-run worker-lifecycle records folded in submission order
        #: (phase calls/seconds and envelope bytes sum; see
        #: :func:`repro.obs.fleetperf.merge_fleetperf`) — the
        #: fleet-wide lifecycle view, cache hits included.
        self.fleet_fleetperf: Dict[str, Any] = {}
        #: The pool-timeline report from the most recent
        #: :meth:`run_specs` call (``None`` until one runs with the
        #: observatory on) — feeds
        #: :func:`repro.obs.fleetperf.attribute_speedup` and the
        #: Chrome-trace export.
        self.last_fleetperf: Optional[Dict[str, Any]] = None
        self.statescope_out = (
            statescope_out
            if statescope_out is not None
            else os.environ.get(STATESCOPE_OUT_ENV, "").strip() or None
        )
        resolved_statescope = (
            statescope if statescope is not None else _env_flag(STATESCOPE_ENV)
        )
        self.statescope = (
            resolved_statescope
            if resolved_statescope is not None
            else self.statescope_out is not None
        )
        #: Per-run statescope records folded in submission order (series
        #: peaks/lasts sum, findings and conformance checks concatenate;
        #: see :func:`repro.obs.statescope.merge_statescope`) — the
        #: fleet-wide state-footprint view, cache hits included.
        self.fleet_statescope: Dict[str, Any] = {}
        self.stream = stream
        #: Per-run telemetry envelopes merged in submission order — the
        #: fleet-wide metrics view.  Deterministic: for a fixed seed the
        #: serial and parallel merges are bit-identical.
        self.fleet_registry = MetricsRegistry()
        #: Fleet-wide perf-observatory view: per-run phase reports
        #: merged in submission order (counts and seconds sum; see
        #: :func:`repro.obs.perf.merge_perf_reports`).
        self.fleet_perf: Dict[str, Any] = {}
        #: Fleet-wide collapsed flamegraph stacks (sample counts sum).
        self.fleet_flame: Dict[str, int] = {}
        self.stats = ExecStats()
        self._runs_total = self.registry.counter(
            "exec_runs_total",
            "Scenario runs executed by the experiment engine, by mode.",
            labelnames=("mode",),
        )
        self._cache_events = self.registry.counter(
            "exec_cache_events_total",
            "Run-cache probes by result.",
            labelnames=("result",),
        )
        self._worker_wall = self.registry.histogram(
            "exec_worker_wall_seconds",
            "Per-run wall-clock seconds, by execution mode.",
            labelnames=("mode",),
            buckets=WALL_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_specs(
        self, specs: Iterable[ScenarioSpec], figure: str = ""
    ) -> List[RunSummary]:
        """Execute every spec and return summaries in submission order.

        ``figure`` labels the run in the history store and the fleet
        progress events (e.g. ``"fig6"``); it does not affect results.
        """
        from repro.obs.session import current_telemetry

        began = time.perf_counter()
        ordered = list(specs)
        results: List[Optional[RunSummary]] = [None] * len(ordered)
        pending: List[Tuple[int, ScenarioSpec, Optional[str]]] = []

        default_config = current_telemetry()
        if default_config is not None and not default_config.enabled():
            default_config = None
        collect = (
            self.collect_telemetry
            if self.collect_telemetry is not None
            else default_config is not None
        )
        telemetry_args: Optional[Dict[str, Any]] = None
        if collect:
            telemetry_args = {
                "profile": default_config.profile if default_config else False,
                "sample_interval": (
                    default_config.sample_interval if default_config else None
                ),
                "perf": default_config.perf if default_config else False,
                "flame": bool(
                    default_config
                    and (default_config.flame or default_config.flame_path)
                ),
            }

        progress = None
        if self.progress or self.events_path:
            from repro.obs.fleet import FleetProgress

            progress = FleetProgress(
                total=len(ordered),
                jobs=self.jobs,
                stream=self.stream,
                events_path=self.events_path,
                show=self.progress,
            )
            progress.run_started(figure)

        fleet = None
        if self.fleetperf:
            from repro.obs.fleetperf import FleetPerf

            fleet = FleetPerf(jobs=self.jobs, total=len(ordered))

        probe_began = time.perf_counter()
        for index, spec in enumerate(ordered):
            key: Optional[str] = None
            if self.cache is not None:
                key = cache_key(spec)
                hit = self.cache.get(key)
                if hit is not None:
                    hit.cached = True
                    results[index] = hit
                    self.stats.cache_hits += 1
                    self._cache_events.labels(result="hit").inc()
                    if fleet is not None:
                        fleet.spec_cached(hit.label)
                    if progress is not None:
                        progress.spec_cached(hit.label)
                    continue
                self.stats.cache_misses += 1
                self._cache_events.labels(result="miss").inc()
            pending.append((index, spec, key))
        if fleet is not None and self.cache is not None:
            fleet.charge("fleet.cache", time.perf_counter() - probe_began)

        if pending:
            workers = min(self.jobs, len(pending))
            summaries: List[Optional[RunSummary]] = [None] * len(pending)
            if workers > 1:
                mode = "parallel"
                payloads = [
                    (
                        slot,
                        spec,
                        telemetry_args,
                        self.audit,
                        self.fleetperf,
                        self.statescope,
                    )
                    for slot, (_, spec, _) in enumerate(pending)
                ]
                context = multiprocessing.get_context("spawn")
                if fleet is not None:
                    fleet.pool_opening()
                with context.Pool(processes=workers) as pool:
                    if progress is not None:
                        for _, spec, _ in pending:
                            progress.spec_started(spec.label)
                    if fleet is not None:
                        for slot, (_, spec, _) in enumerate(pending):
                            fleet.spec_submitted(slot, spec.label)
                    # Completion queue: results arrive as workers finish
                    # (live progress), then land back in their submission
                    # slot so downstream order never depends on timing.
                    for slot, summary in pool.imap_unordered(
                        _execute_indexed, payloads, chunksize=1
                    ):
                        summaries[slot] = summary
                        if fleet is not None:
                            fleet.spec_received(slot, summary)
                        if progress is not None:
                            progress.spec_finished(
                                summary.label, summary.wall_seconds, mode
                            )
            else:
                mode = "serial"
                for slot, (_, spec, _) in enumerate(pending):
                    if progress is not None:
                        progress.spec_started(spec.label)
                    if fleet is not None:
                        fleet.spec_submitted(slot, spec.label)
                    summary = _execute_spec(
                        spec,
                        telemetry_args,
                        self.audit,
                        self.fleetperf,
                        self.statescope,
                    )
                    summaries[slot] = summary
                    if fleet is not None:
                        fleet.spec_received(slot, summary)
                    if progress is not None:
                        progress.spec_finished(
                            summary.label, summary.wall_seconds, mode
                        )
            for (index, _, key), summary in zip(pending, summaries):
                results[index] = summary
                self._note_run(mode, summary)
                if self.cache is not None and key is not None:
                    self.cache.put(key, summary)

        final = [summary for summary in results if summary is not None]
        self._merge_fleet_telemetry(final, default_config)
        self._merge_fleet_audit(final)
        self._merge_fleet_statescope(final)
        wall = time.perf_counter() - began
        if fleet is not None:
            from repro.obs.fleetperf import merge_fleetperf

            # Submission order, cache hits included: replayed records
            # fold in exactly like freshly executed ones (the telemetry
            # round-trip contract).
            for summary in final:
                if summary.fleetperf:
                    merge_fleetperf(self.fleet_fleetperf, summary.fleetperf)
            self.last_fleetperf = fleet.report(wall)
            if self.fleet_trace:
                from repro.obs.export import write_fleet_trace

                write_fleet_trace(self.fleet_trace, self.last_fleetperf)
        if progress is not None:
            progress.run_finished()
        if self.history_dir is not None:
            from repro.obs.history import RunHistory

            RunHistory(self.history_dir).append(
                figure=figure,
                jobs=self.jobs,
                wall_seconds=wall,
                specs=ordered,
                summaries=final,
            )
        if self.fleet_metrics_path:
            with open(self.fleet_metrics_path, "w", encoding="utf-8") as fh:
                json.dump(self.merged_snapshot(), fh, indent=2)
                fh.write("\n")
        if self.audit_out and self.fleet_audit:
            self._write_audit_report(figure)
        if self.statescope_out and self.fleet_statescope:
            self._write_statescope_report(figure)
        return final

    def _merge_fleet_telemetry(
        self, summaries: Sequence[RunSummary], default_config: Optional[Any]
    ) -> None:
        """Fold per-run envelopes into the fleet registry (submission
        order, so gauge last-write-wins stays deterministic) and forward
        worker/cached records to the process-default writer — in-process
        sessions already persisted themselves."""
        pid = os.getpid()
        for summary in summaries:
            envelope = summary.telemetry
            if not envelope:
                continue
            metrics = envelope.get("metrics")
            if metrics:
                self.fleet_registry.merge_snapshot(metrics)
            perf = envelope.get("perf")
            if perf:
                from repro.obs.perf import merge_perf_reports

                merge_perf_reports(self.fleet_perf, perf)
            flame = envelope.get("flame")
            if flame and flame.get("stacks"):
                from repro.obs.profiler import merge_collapsed

                merge_collapsed(self.fleet_flame, flame["stacks"])
            if default_config is not None and (
                summary.cached or summary.worker_pid != pid
            ):
                default_config.writer().add_run(envelope)
                if flame and flame.get("stacks") and default_config.flame_path:
                    # Worker stacks reach the --flame-out file through
                    # the same accumulating writer in-process sessions
                    # use, so serial and parallel runs converge.
                    default_config.writer().add_flame(flame["stacks"])

    def _merge_fleet_audit(self, summaries: Sequence[RunSummary]) -> None:
        """Fold per-run audit summaries into :attr:`fleet_audit` in
        submission order — integer tallies are order-free and the float
        accumulators sum in one fixed order, so serial and ``--jobs N``
        merges are bit-for-bit identical (cache hits replay their stored
        summaries the same way)."""
        if not self.audit:
            return
        from repro.obs.audit import merge_audit_summaries

        for summary in summaries:
            if summary.audit:
                merge_audit_summaries(self.fleet_audit, summary.audit)

    def _merge_fleet_statescope(self, summaries: Sequence[RunSummary]) -> None:
        """Fold per-run statescope records into :attr:`fleet_statescope`
        in submission order — all merged quantities are order-free sums
        or concatenations keyed by submission slot, so serial and
        ``--jobs N`` merges are bit-for-bit identical (cache hits replay
        their stored records the same way)."""
        if not self.statescope:
            return
        from repro.obs.statescope import merge_statescope

        for summary in summaries:
            if summary.statescope:
                merge_statescope(self.fleet_statescope, summary.statescope)

    def _write_statescope_report(self, figure: str) -> None:
        from repro.obs.statescope import render_statescope_report

        document = {
            "figure": figure,
            "jobs": self.jobs,
            "record": self.fleet_statescope,
            "report": render_statescope_report(self.fleet_statescope),
        }
        with open(self.statescope_out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def _write_audit_report(self, figure: str) -> None:
        from repro.obs.audit import fp_confidence, render_audit_report

        document = {
            "figure": figure,
            "jobs": self.jobs,
            "summary": self.fleet_audit,
            "confidence": fp_confidence(self.fleet_audit),
            "report": render_audit_report(self.fleet_audit),
        }
        with open(self.audit_out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def merged_snapshot(self) -> Dict[str, dict]:
        """The engine's own exec counters folded together with the
        fleet-wide per-run telemetry, as one snapshot."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        merged.merge(self.fleet_registry)
        return merged.snapshot()

    def _note_run(self, mode: str, summary: RunSummary) -> None:
        if mode == "parallel":
            self.stats.parallel_runs += 1
        else:
            self.stats.serial_runs += 1
        self.stats.worker_wall_total += summary.wall_seconds
        self.stats.per_run_wall.append(summary.wall_seconds)
        self._runs_total.labels(mode=mode).inc()
        self._worker_wall.labels(mode=mode).observe(summary.wall_seconds)


def run_specs(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    cache_dir: Optional[Any] = None,
    use_cache: bool = True,
    registry: Optional[MetricsRegistry] = None,
    figure: str = "",
    collect_telemetry: Optional[bool] = None,
    audit: Optional[bool] = None,
    fleetperf: Optional[bool] = None,
    statescope: Optional[bool] = None,
) -> List[RunSummary]:
    """One-shot convenience over :class:`ExperimentEngine`."""
    engine = ExperimentEngine(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        registry=registry,
        collect_telemetry=collect_telemetry,
        audit=audit,
        fleetperf=fleetperf,
        statescope=statescope,
    )
    return engine.run_specs(specs, figure=figure)
