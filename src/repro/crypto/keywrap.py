"""Wrapping content-decryption keys under client keys.

The paper's key-delivery story: "A provider can encrypt the content
decryption key with the client's public key and send it to the client
along with her tag."  With real RSA we implement a simple hybrid KEM:
the wrap is ``ChaCha20(kek, key)`` where ``kek`` is derived from an
RSA-transported seed.  With simulated keys we derive the KEK directly
from the shared MAC key, preserving the property that only the key
holder can unwrap.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Tuple

from repro.crypto.chacha20 import chacha20_decrypt, chacha20_encrypt
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.sim_signature import SimulatedKeyPair, SimulatedPublicKey

_WRAP_NONCE = b"tacticwrap18"  # 12 bytes; unique seed per wrap makes reuse safe


class KeyWrapError(Exception):
    """Raised when unwrapping fails (wrong key or corrupted blob)."""


def _kek_from_seed(seed: bytes) -> bytes:
    return hashlib.sha256(b"kek:" + seed).digest()


def wrap_key(recipient_public: Any, content_key: bytes) -> bytes:
    """Wrap ``content_key`` so only the holder of the private key unwraps.

    Returns an opaque blob: ``seed_transport || ciphertext || mac``.
    """
    seed = os.urandom(32)
    if isinstance(recipient_public, RsaPublicKey):
        # "Encrypt" the seed with textbook RSA transport (seed < n).
        m = int.from_bytes(seed, "big")
        if m >= recipient_public.n:
            raise KeyWrapError("recipient modulus too small for seed transport")
        transport = pow(m, recipient_public.e, recipient_public.n).to_bytes(
            recipient_public.byte_length, "big"
        )
    elif isinstance(recipient_public, SimulatedPublicKey):
        # Simulated keys: transport the seed XOR-masked with a key-derived
        # pad; within the simulation only the keypair holder can recompute it.
        pad = hashlib.sha256(b"simwrap:" + recipient_public.fp).digest()
        transport = bytes(a ^ b for a, b in zip(seed, pad))
    else:
        raise TypeError(f"unsupported recipient key type: {type(recipient_public)!r}")

    kek = _kek_from_seed(seed)
    ciphertext = chacha20_encrypt(kek, _WRAP_NONCE, content_key)
    mac = hashlib.sha256(kek + ciphertext).digest()[:16]
    header = len(transport).to_bytes(2, "big")
    return header + transport + ciphertext + mac


def unwrap_key(recipient_keypair: Any, blob: bytes) -> bytes:
    """Reverse :func:`wrap_key` using the recipient's private key."""
    if len(blob) < 2:
        raise KeyWrapError("blob too short")
    tlen = int.from_bytes(blob[:2], "big")
    transport = blob[2 : 2 + tlen]
    rest = blob[2 + tlen :]
    if len(rest) < 16:
        raise KeyWrapError("blob truncated")
    ciphertext, mac = rest[:-16], rest[-16:]

    if isinstance(recipient_keypair, RsaKeyPair):
        c = int.from_bytes(transport, "big")
        seed = pow(c, recipient_keypair.d, recipient_keypair.n).to_bytes(32, "big")
    elif isinstance(recipient_keypair, SimulatedKeyPair):
        pad = hashlib.sha256(b"simwrap:" + recipient_keypair.fp).digest()
        seed = bytes(a ^ b for a, b in zip(transport, pad))
    else:
        raise TypeError(f"unsupported keypair type: {type(recipient_keypair)!r}")

    kek = _kek_from_seed(seed)
    if hashlib.sha256(kek + ciphertext).digest()[:16] != mac:
        raise KeyWrapError("MAC mismatch: wrong key or corrupted blob")
    return chacha20_decrypt(kek, _WRAP_NONCE, ciphertext)


def generate_content_key() -> Tuple[bytes, bytes]:
    """Fresh (key, nonce) pair for encrypting one content object."""
    return os.urandom(32), os.urandom(12)
