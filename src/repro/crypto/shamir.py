"""Shamir secret sharing over a prime field.

Substrate for the AccConF-style baseline (:mod:`repro.baselines.accconf`):
the paper's references [3]/[7] build client-side access control on
broadcast encryption "which leverages Shamir's secret sharing".

A secret ``s`` is split into shares of a random degree-(t-1) polynomial
``f`` with ``f(0) = s``; any ``t`` distinct shares reconstruct ``s`` by
Lagrange interpolation at zero, and fewer than ``t`` reveal nothing.

The field is GF(p) for the 256-bit prime ``2^256 - 189`` so shares can
carry SHA-256-sized secrets directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.rng import Stream, entropy_stream, seeded_stream

#: 2**256 - 189, the largest 256-bit prime.
PRIME_256 = 2**256 - 189


@dataclass(frozen=True)
class Share:
    """One evaluation point ``(x, f(x))`` of the sharing polynomial."""

    x: int
    y: int


def _eval_poly(coeffs: Sequence[int], x: int, prime: int) -> int:
    """Horner evaluation of ``coeffs[0] + coeffs[1] x + ...`` mod prime."""
    acc = 0
    for coeff in reversed(coeffs):
        acc = (acc * x + coeff) % prime
    return acc


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: Optional[Stream] = None,
    prime: int = PRIME_256,
) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    >>> rng = seeded_stream(1)
    >>> shares = split_secret(12345, threshold=3, num_shares=5, rng=rng)
    >>> recover_secret(shares[:3])
    12345
    >>> recover_secret(shares[2:5])
    12345
    """
    if not 0 <= secret < prime:
        raise ValueError("secret out of field range")
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if num_shares < threshold:
        raise ValueError("need at least `threshold` shares")
    rng = rng or entropy_stream()
    coeffs = [secret] + [rng.randrange(prime) for _ in range(threshold - 1)]
    return [Share(x=x, y=_eval_poly(coeffs, x, prime)) for x in range(1, num_shares + 1)]


def share_at(
    secret: int,
    threshold: int,
    x: int,
    rng: Stream,
    prime: int = PRIME_256,
) -> Share:
    """Deterministically sample one share at abscissa ``x`` (the caller
    owns polynomial consistency by passing the same seeded ``rng`` state
    via :func:`split_secret` in practice; exposed for tests)."""
    coeffs = [secret] + [rng.randrange(prime) for _ in range(threshold - 1)]
    return Share(x=x, y=_eval_poly(coeffs, x, prime))


def recover_secret(shares: Iterable[Share], prime: int = PRIME_256) -> int:
    """Lagrange interpolation at zero.

    Raises on duplicate abscissae; with fewer shares than the original
    threshold the result is simply wrong (information-theoretically
    uniform), which callers detect by key-verification failure.
    """
    shares = list(shares)
    if not shares:
        raise ValueError("no shares given")
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share abscissae")
    secret = 0
    for i, share_i in enumerate(shares):
        numerator, denominator = 1, 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-share_j.x)) % prime
            denominator = (denominator * (share_i.x - share_j.x)) % prime
        lagrange = numerator * pow(denominator, -1, prime)
        secret = (secret + share_i.y * lagrange) % prime
    return secret


class BroadcastEnclosure:
    """AccConF-style broadcast-encryption enclosure.

    The provider holds a (t, n) sharing of the content key.  Each
    enrolled client privately receives **one** share.  The *enclosure*
    published alongside the content carries ``t - 1`` further shares:
    any single enrolled client combines its private share with the
    enclosure to reach the threshold and recover the key, while an
    outsider holds only ``t - 1`` shares and learns nothing.

    Revocation re-shares with a fresh polynomial and redistributes
    private shares to the *remaining* clients — the expensive rekeying
    the paper contrasts TACTIC's tag expiry against.
    """

    def __init__(
        self,
        secret: int,
        threshold: int = 3,
        rng: Optional[Stream] = None,
        prime: int = PRIME_256,
    ) -> None:
        if threshold < 2:
            raise ValueError("threshold must be >= 2 for a non-trivial enclosure")
        self.secret = secret
        self.threshold = threshold
        self.prime = prime
        self.rng = rng or entropy_stream()
        self.generation = 0
        self._client_shares: Dict[str, Share] = {}
        self._public_shares: List[Share] = []
        self._next_x = 1
        self._reshare(clients=[])

    # ------------------------------------------------------------------
    # Provider side
    # ------------------------------------------------------------------
    def _reshare(self, clients: Iterable[str]) -> None:
        clients = list(clients)
        self.generation += 1
        coeffs = [self.secret] + [
            self.rng.randrange(self.prime) for _ in range(self.threshold - 1)
        ]
        self._coeffs = coeffs
        # Public enclosure: t - 1 shares at reserved negative-side xs
        # (use a distinct abscissa range from client shares).
        self._public_shares = [
            Share(x=x, y=_eval_poly(coeffs, x, self.prime))
            for x in range(10**6, 10**6 + self.threshold - 1)
        ]
        self._client_shares = {}
        self._next_x = 1
        for client in clients:
            self._issue(client)

    def _issue(self, client_id: str) -> Share:
        share = Share(
            x=self._next_x, y=_eval_poly(self._coeffs, self._next_x, self.prime)
        )
        self._next_x += 1
        self._client_shares[client_id] = share
        return share

    def enroll(self, client_id: str) -> Share:
        """Give ``client_id`` its private share (idempotent)."""
        existing = self._client_shares.get(client_id)
        if existing is not None:
            return existing
        return self._issue(client_id)

    def revoke(self, client_id: str) -> Dict[str, Share]:
        """Remove a client: re-share and return the fresh private shares
        every surviving client must now be sent (the rekey cost)."""
        survivors = [c for c in self._client_shares if c != client_id]
        self._reshare(survivors)
        return dict(self._client_shares)

    @property
    def enclosure(self) -> List[Share]:
        """The public shares published with the content."""
        return list(self._public_shares)

    def share_of(self, client_id: str) -> Optional[Share]:
        return self._client_shares.get(client_id)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    @staticmethod
    def combine(private_share: Share, enclosure: Sequence[Share],
                prime: int = PRIME_256) -> int:
        """Recover the content key from one private share + the enclosure."""
        return recover_secret([private_share, *enclosure], prime=prime)
