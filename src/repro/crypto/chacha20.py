"""ChaCha20 stream cipher (RFC 8439), implemented from scratch.

Used by providers to encrypt published content; the content key is then
wrapped under each registered client's public key (see
:mod:`repro.crypto.keywrap`).  The implementation follows the RFC 8439
quarter-round construction and passes the RFC test vector (see
``tests/test_crypto_chacha20.py``).
"""

from __future__ import annotations

import struct
from typing import List

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl32(v: int, c: int) -> int:
    return ((v << c) & _MASK32) | (v >> (32 - c))


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


class ChaCha20:
    """Stateless-block ChaCha20 keystream generator.

    Parameters
    ----------
    key:
        32-byte secret key.
    nonce:
        12-byte nonce; must be unique per (key, message).
    initial_counter:
        Starting block counter (RFC 8439 uses 1 for AEAD payloads; plain
        encryption conventionally starts at 0 or 1 — we default to 0).
    """

    def __init__(self, key: bytes, nonce: bytes, initial_counter: int = 0) -> None:
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 12:
            raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
        self._key_words = struct.unpack("<8L", key)
        self._nonce_words = struct.unpack("<3L", nonce)
        self._counter = initial_counter

    def _block(self, counter: int) -> bytes:
        state = list(_CONSTANTS) + list(self._key_words) + [counter & _MASK32]
        state += list(self._nonce_words)
        working = state[:]
        for _ in range(10):  # 20 rounds = 10 column+diagonal double-rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        out = [(w + s) & _MASK32 for w, s in zip(working, state)]
        return struct.pack("<16L", *out)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt (or decrypt — XOR is symmetric) ``plaintext``."""
        out = bytearray(len(plaintext))
        counter = self._counter
        for offset in range(0, len(plaintext), 64):
            keystream = self._block(counter)
            counter += 1
            chunk = plaintext[offset : offset + 64]
            for i, byte in enumerate(chunk):
                out[offset + i] = byte ^ keystream[i]
        self._counter = counter
        return bytes(out)

    decrypt = encrypt


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, counter: int = 0) -> bytes:
    """One-shot encryption helper."""
    return ChaCha20(key, nonce, counter).encrypt(plaintext)


def chacha20_decrypt(key: bytes, nonce: bytes, ciphertext: bytes, counter: int = 0) -> bytes:
    """One-shot decryption helper (identical to encryption)."""
    return ChaCha20(key, nonce, counter).encrypt(ciphertext)
