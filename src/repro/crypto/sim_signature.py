"""HMAC-backed *simulated* signatures for large simulation runs.

Real RSA keygen and signing in pure Python dominate runtime when a
topology provisions hundreds of clients that re-register every 10
seconds.  Inside a simulation we only need the *semantics* of a
signature — unforgeability by parties that do not hold the signing key,
and deterministic verify — not interoperability.  A keyed HMAC gives
exactly that: the "public key" carries an opaque fingerprint, the
verifier consults a process-local registry mapping fingerprints to MAC
keys (standing in for the PKI having distributed certificates), and an
attacker who fabricates bytes fails verification with overwhelming
probability.

The scheme implements the same duck-typed interface as
:class:`repro.crypto.rsa.RsaKeyPair` / ``RsaPublicKey`` (``sign``,
``verify``, ``fingerprint``) so protocol code is agnostic; select the
scheme via :class:`repro.core.config.TacticConfig`.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.rng import Stream, entropy_stream

# Process-local stand-in for "routers hold provider certificates":
# fingerprint -> MAC key.  Verification without a registered key fails.
_KEY_REGISTRY: Dict[bytes, bytes] = {}


def reset_registry() -> None:
    """Clear the simulated-PKI registry (used between test runs)."""
    _KEY_REGISTRY.clear()


@dataclass(frozen=True)
class SimulatedPublicKey:
    """Verification handle: a fingerprint resolvable via the registry."""

    fp: bytes

    def verify(self, message: bytes, signature: bytes) -> bool:
        key = _KEY_REGISTRY.get(self.fp)
        if key is None:
            return False
        expected = hmac.new(key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)

    def fingerprint(self) -> bytes:
        return self.fp

    @property
    def byte_length(self) -> int:
        return 32


@dataclass(frozen=True)
class SimulatedKeyPair:
    """Signing handle holding the MAC key."""

    mac_key: bytes
    fp: bytes = field(default=b"")

    @staticmethod
    def generate(rng: Optional[Stream] = None) -> "SimulatedKeyPair":
        rng = rng or entropy_stream()
        mac_key = rng.getrandbits(256).to_bytes(32, "big")
        fp = hashlib.sha256(b"simkey:" + mac_key).digest()
        _KEY_REGISTRY[fp] = mac_key
        return SimulatedKeyPair(mac_key=mac_key, fp=fp)

    @property
    def public(self) -> SimulatedPublicKey:
        return SimulatedPublicKey(fp=self.fp)

    @property
    def byte_length(self) -> int:
        return 32

    def sign(self, message: bytes) -> bytes:
        return hmac.new(self.mac_key, message, hashlib.sha256).digest()
