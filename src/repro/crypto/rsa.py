"""From-scratch RSA: key generation, signing, verification.

Implements textbook-plus-padding RSA over SHA-256 digests:

- key generation with Miller-Rabin primality testing,
- a deterministic EMSA-PKCS1-v1_5-style encoding of the message digest
  (DER prefix for SHA-256, ``0x00 0x01 FF.. 00`` padding),
- signing = modular exponentiation with the private exponent (CRT
  accelerated), verification with the public exponent.

This module exists because the environment is offline (no
``cryptography`` package) and the reproduction must not stub its crypto.
Key sizes default to 1024 bits, generous for a simulation and fast to
generate in pure Python; tests also exercise 512-bit keys for speed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import Stream, entropy_stream

# DER prefix for a SHA-256 DigestInfo (RFC 8017, section 9.2 notes).
_SHA256_DER_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def _is_probable_prime(n: int, rng: Stream, rounds: int = 40) -> bool:
    """Miller-Rabin probabilistic primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: Stream) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)`` with signature verification."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify an EMSA-PKCS1-v1_5 SHA-256 signature over ``message``."""
        if len(signature) != self.byte_length:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n).to_bytes(self.byte_length, "big")
        return em == _emsa_encode(message, self.byte_length)

    def fingerprint(self) -> bytes:
        """SHA-256 over the key material; used as a stable identifier."""
        material = self.n.to_bytes(self.byte_length, "big") + self.e.to_bytes(8, "big")
        return hashlib.sha256(material).digest()


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA keypair; holds the private exponent and CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """Produce an EMSA-PKCS1-v1_5 SHA-256 signature over ``message``.

        Uses the Chinese Remainder Theorem for a ~4x speedup over a
        plain ``pow(m, d, n)``.
        """
        em = _emsa_encode(message, self.byte_length)
        m = int.from_bytes(em, "big")
        # CRT: s = CRT(m^dp mod p, m^dq mod q)
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = pow(self.q, -1, self.p)
        s1 = pow(m % self.p, dp, self.p)
        s2 = pow(m % self.q, dq, self.q)
        h = (qinv * (s1 - s2)) % self.p
        s = s2 + h * self.q
        return s.to_bytes(self.byte_length, "big")


def _emsa_encode(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of the SHA-256 digest of ``message``."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DER_PREFIX + digest
    if em_len < len(t) + 11:
        raise ValueError(f"modulus too small for SHA-256 signatures: {em_len} bytes")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def generate_keypair(
    bits: int = 1024,
    e: int = 65537,
    rng: Optional[Stream] = None,
) -> RsaKeyPair:
    """Generate an RSA keypair with modulus of roughly ``bits`` bits.

    Parameters
    ----------
    bits:
        Modulus size.  1024 is the default (fast enough for pure-Python
        simulation provisioning); tests use 512 for speed.
    e:
        Public exponent; must be coprime with (p-1)(q-1) — regenerated
        primes guarantee this.
    rng:
        Optional seeded RNG for reproducible key material.
    """
    rng = rng or entropy_stream()
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; pick new primes
        return RsaKeyPair(n=p * q, e=e, d=d, p=p, q=q)
