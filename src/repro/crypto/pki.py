"""Public key infrastructure: certificates and a router-side store.

The paper assumes "the existence of a public key infrastructure (PKI)
by which routers store the providers' public keys and certificates".
A *public key locator* is "a name that points to a packet that contains
the public key or/and its digest"; routers resolve locators through
this store when validating tag signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


class PkiError(Exception):
    """Raised for unknown locators or conflicting registrations."""


@dataclass(frozen=True)
class Certificate:
    """Binds a key locator (an NDN-style name string) to a public key.

    ``subject`` is a human-readable owner label; ``issued_at`` /
    ``expires_at`` are virtual-time bounds (``None`` = unbounded, which
    providers use since the paper revokes *clients*, not providers).
    """

    locator: str
    public_key: Any  # RsaPublicKey or SimulatedPublicKey (duck-typed)
    subject: str = ""
    issued_at: float = 0.0
    expires_at: Optional[float] = None

    def is_valid_at(self, now: float) -> bool:
        if now < self.issued_at:
            return False
        return self.expires_at is None or now <= self.expires_at


class CertificateStore:
    """Locator -> certificate map shared by routers in one trust domain.

    The paper argues the universe of access-controlled providers "would
    potentially number in a few thousands", so a flat in-memory map per
    router (or shared per ISP) is faithful and scalable.
    """

    def __init__(self) -> None:
        self._certs: Dict[str, Certificate] = {}

    def __len__(self) -> int:
        return len(self._certs)

    def __contains__(self, locator: str) -> bool:
        return locator in self._certs

    def register(self, cert: Certificate, overwrite: bool = False) -> None:
        existing = self._certs.get(cert.locator)
        if existing is not None and not overwrite:
            if existing.public_key != cert.public_key:
                raise PkiError(f"conflicting certificate for locator {cert.locator!r}")
            return
        self._certs[cert.locator] = cert

    def lookup(self, locator: str) -> Certificate:
        cert = self._certs.get(locator)
        if cert is None:
            raise PkiError(f"no certificate for locator {locator!r}")
        return cert

    def get_public_key(self, locator: str, now: float = 0.0) -> Any:
        """Resolve a locator to a public key, checking validity."""
        cert = self.lookup(locator)
        if not cert.is_valid_at(now):
            raise PkiError(f"certificate for {locator!r} not valid at t={now}")
        return cert.public_key

    def try_get_public_key(self, locator: str, now: float = 0.0) -> Optional[Any]:
        """Like :meth:`get_public_key` but returns None on any failure."""
        try:
            return self.get_public_key(locator, now)
        except PkiError:
            return None
