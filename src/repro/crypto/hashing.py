"""Hashing utilities shared across the crypto and core packages."""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

Bytesish = Union[bytes, bytearray, str]

DIGEST_SIZE = 32  # SHA-256


def _as_bytes(data: Bytesish) -> bytes:
    if isinstance(data, str):
        return data.encode("utf-8")
    return bytes(data)


def sha256(data: Bytesish) -> bytes:
    """SHA-256 digest of ``data`` (strings are UTF-8 encoded)."""
    return hashlib.sha256(_as_bytes(data)).digest()


def sha256_int(data: Bytesish) -> int:
    """SHA-256 digest interpreted as a big-endian integer."""
    return int.from_bytes(sha256(data), "big")


def entity_identity_hash(identity: Bytesish) -> bytes:
    """Hash of a network entity's identity, used in access paths.

    The paper defines the access path as "the XOR of the hashed identity
    of all network entities between u and rE"; this is the per-entity
    hash being XOR-folded.
    """
    return sha256(_as_bytes(identity))


def rolling_xor_hash(identities: Iterable[Bytesish]) -> bytes:
    """XOR-fold the identity hashes of a path of network entities.

    An empty path yields the all-zero digest, matching a client directly
    attached to its edge router (no intermediate entities).
    """
    acc = bytearray(DIGEST_SIZE)
    for identity in identities:
        digest = entity_identity_hash(identity)
        for i in range(DIGEST_SIZE):
            acc[i] ^= digest[i]
    return bytes(acc)


def xor_fold(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (helper for incremental paths)."""
    length = len(a)
    if length != len(b):
        raise ValueError(f"length mismatch: {length} vs {len(b)}")
    # Single wide-integer XOR instead of a per-byte generator: this runs
    # once per Interest at every access point, so the byte loop was a
    # measurable slice of the forwarding hot path.
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(length, "big")
