"""Cryptographic substrate for the TACTIC reproduction.

The paper assumes providers sign tags with public-key signatures,
contents are encrypted, and a PKI distributes provider certificates to
routers.  This package builds those pieces from scratch:

- :mod:`~repro.crypto.rsa` -- RSA key generation (Miller-Rabin), signing
  and verification over SHA-256 digests,
- :mod:`~repro.crypto.chacha20` -- the ChaCha20 stream cipher for
  content encryption,
- :mod:`~repro.crypto.sim_signature` -- an HMAC-backed *simulated*
  signature scheme with identical semantics but negligible cost, for
  large simulation runs,
- :mod:`~repro.crypto.pki` -- certificate store keyed by public key
  locators,
- :mod:`~repro.crypto.keywrap` -- wrapping content keys under client
  public keys (the paper's "provider encrypts the content decryption
  key with the client's public key"),
- :mod:`~repro.crypto.cost_model` -- latency distributions for
  computation-based events, defaulting to the paper's benchmarked
  values (Section 8.B).
"""

from repro.crypto.chacha20 import ChaCha20, chacha20_decrypt, chacha20_encrypt
from repro.crypto.cost_model import ComputationCostModel, OpCost, PAPER_COST_MODEL
from repro.crypto.hashing import (
    entity_identity_hash,
    rolling_xor_hash,
    sha256,
    sha256_int,
)
from repro.crypto.keywrap import KeyWrapError, unwrap_key, wrap_key
from repro.crypto.pki import Certificate, CertificateStore, PkiError
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.sim_signature import SimulatedKeyPair, SimulatedPublicKey

__all__ = [
    "Certificate",
    "CertificateStore",
    "ChaCha20",
    "ComputationCostModel",
    "KeyWrapError",
    "OpCost",
    "PAPER_COST_MODEL",
    "PkiError",
    "RsaKeyPair",
    "RsaPublicKey",
    "SimulatedKeyPair",
    "SimulatedPublicKey",
    "chacha20_decrypt",
    "chacha20_encrypt",
    "entity_identity_hash",
    "generate_keypair",
    "rolling_xor_hash",
    "sha256",
    "sha256_int",
    "unwrap_key",
    "wrap_key",
]
