"""Latency model for computation-based simulation events.

ns-3 (and therefore ndnSIM) does not account for the wall-clock cost of
computation, so the TACTIC authors benchmarked their primitive
operations on a host (Intel Core-i7 2.93 GHz, Ubuntu 14.04) and injected
the measured latency distributions into the simulation:

- Bloom filter lookup        ~ N(9.14e-7, 6.51e-9)
- Bloom filter insertion     ~ N(3.35e-7, 1.73e-3)
- signature verification     ~ N(1.12e-5, 6.49e-3)

We reproduce exactly that technique.  The paper's ``N(a, b)`` notation
does not say whether ``b`` is a standard deviation or a variance, and
two of the published spreads are larger than their means (almost surely
transcription artifacts).  We interpret ``b`` as a standard deviation
and truncate samples at zero, which preserves the published means — the
quantity that drives every reported trend.  The defaults can be
re-measured on the local host with :func:`benchmark_local_costs`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.sim.rng import Stream, seeded_stream


@dataclass(frozen=True, slots=True)
class OpCost:
    """A truncated-normal latency distribution for one operation."""

    mean: float
    std: float

    def sample(self, rng: Stream) -> float:
        """Draw one latency sample; negative draws truncate to zero."""
        if self.std <= 0.0:
            return max(0.0, self.mean)
        return max(0.0, rng.gauss(self.mean, self.std))


@dataclass(slots=True)
class ComputationCostModel:
    """Named operation costs consumed by router protocol code.

    Router code calls :meth:`sample` with an operation name whenever it
    performs a computation-based event, and schedules its next action
    after the returned delay — exactly the authors' methodology.
    Unknown operations cost zero, so substrate code never crashes when a
    new op name appears before it is calibrated.
    """

    costs: Dict[str, OpCost] = field(default_factory=dict)
    #: Optional :class:`~repro.obs.perf.PerfObservatory` (``None`` =
    #: off); :meth:`sample` charges itself to the ``crypto.cost`` phase
    #: when set.  Excluded from comparison/repr: it is an instrument,
    #: not part of the model's identity.  Note PAPER_COST_MODEL is a
    #: shared module-level instance, which is why uninstall only clears
    #: hooks still pointing at the departing observatory.
    perf: Optional[Any] = field(default=None, compare=False, repr=False)

    def sample(self, op: str, rng: Stream) -> float:
        # Allocation-free charging: one dict probe plus the RNG draw.
        # The draw is inlined from OpCost.sample (bit-identical clamp and
        # gauss call) because this runs several times per forwarded
        # Interest on TACTIC routers.
        cost = self.costs.get(op)
        if cost is None:
            return 0.0
        perf = self.perf
        if perf is None:
            std = cost.std
            if std <= 0.0:
                return max(0.0, cost.mean)
            return max(0.0, rng.gauss(cost.mean, std))
        began = perf.clock()
        try:
            return cost.sample(rng)
        finally:
            perf.account("crypto.cost", perf.clock() - began)

    def mean(self, op: str) -> float:
        cost = self.costs.get(op)
        return cost.mean if cost is not None else 0.0

    def with_overrides(self, **overrides: OpCost) -> "ComputationCostModel":
        merged = dict(self.costs)
        merged.update(overrides)
        return ComputationCostModel(costs=merged)


#: The paper's published host benchmarks (Section 8.B).  Spreads are kept
#: tiny relative to the published means (see module docstring) so sampled
#: latencies stay physically sensible.
PAPER_COST_MODEL = ComputationCostModel(
    costs={
        "bf_lookup": OpCost(mean=9.14e-7, std=6.51e-9),
        "bf_insert": OpCost(mean=3.35e-7, std=3.35e-8),
        "signature_verify": OpCost(mean=1.12e-5, std=1.12e-6),
        # Pre-check field comparisons and access-path checks are a few
        # string/byte comparisons; modelled at cache-lookup scale.
        "precheck": OpCost(mean=1.0e-7, std=1.0e-8),
        "access_path_check": OpCost(mean=2.0e-7, std=2.0e-8),
        # Provider-side tag generation (one signature) — only relevant for
        # registration traffic, never on the router fast path.
        "tag_sign": OpCost(mean=2.5e-4, std=2.5e-5),
    }
)

#: The paper's ``N(a, b)`` parameters with ``b`` taken literally as the
#: standard deviation, zero-truncated.  Two of the published spreads
#: (1.73e-3 for insertion, 6.49e-3 for verification) then dwarf their
#: means, giving each operation a half-normal, millisecond-scale cost —
#: which is the only reading under which the paper's Fig. 5 latency
#: separation between Bloom-filter sizes is reproducible (Bloom resets
#: trigger re-validations whose ~ms delays move the per-second latency
#: average; with microsecond costs they cannot).  Used by the Fig. 5
#: reproduction; everything else uses the conservative PAPER_COST_MODEL.
PAPER_LITERAL_COST_MODEL = PAPER_COST_MODEL.with_overrides(
    bf_lookup=OpCost(mean=9.14e-7, std=6.51e-9),
    bf_insert=OpCost(mean=3.35e-7, std=1.73e-3),
    signature_verify=OpCost(mean=1.12e-5, std=6.49e-3),
)

#: A zero-cost model for tests that need deterministic timing.
ZERO_COST_MODEL = ComputationCostModel(costs={})


def benchmark_local_costs(
    bloom_factory: Optional[Callable[[], object]] = None,
    iterations: int = 2000,
    rsa_bits: int = 1024,
) -> ComputationCostModel:
    """Re-measure operation costs on the local host.

    Mirrors the authors' calibration step: time our own Bloom filter
    lookup/insert and *real* (RSA) signature verification — the paper's
    1.12e-5 s figure is OpenSSL-class public-key verification, so the
    HMAC-backed simulated scheme would not be a faithful stand-in here.
    Returns a cost model built from the measured means/standard
    deviations.  Imports are local to keep this module dependency-light.
    """
    import statistics

    from repro.crypto.rsa import generate_keypair
    from repro.filters.bloom import BloomFilter

    def _measure(fn: Callable[[int], None]) -> OpCost:
        samples = []
        for i in range(iterations):
            # Wall-clock is the *subject* here: calibrating real crypto
            # op costs on the host, never consulted during a sim run.
            start = time.perf_counter()  # simlint: disable=SL001
            fn(i)
            samples.append(time.perf_counter() - start)  # simlint: disable=SL001
        mean = statistics.fmean(samples)
        std = statistics.pstdev(samples)
        return OpCost(mean=mean, std=std)

    bloom = (bloom_factory() if bloom_factory else BloomFilter(capacity=1000, max_fpp=1e-4))
    for i in range(500):
        bloom.insert(f"seed-{i}".encode())

    keypair = generate_keypair(bits=rsa_bits, rng=seeded_stream(7))
    message = b"benchmark message for signature verification"
    signature = keypair.sign(message)
    public = keypair.public

    lookup_cost = _measure(lambda i: bloom.contains(f"probe-{i}".encode()))
    insert_cost = _measure(lambda i: bloom.insert(f"item-{i}".encode()))
    verify_cost = _measure(lambda i: public.verify(message, signature))

    return PAPER_COST_MODEL.with_overrides(
        bf_lookup=lookup_cost,
        bf_insert=insert_cost,
        signature_verify=verify_cost,
    )
