"""Discrete-event simulation engine.

This package is the substrate on which the NDN network model
(:mod:`repro.ndn`) runs.  It provides:

- :class:`~repro.sim.engine.Simulator` -- a heap-based discrete-event
  scheduler with a monotonically advancing virtual clock,
- :class:`~repro.sim.events.Event` -- schedulable, cancellable events,
- :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded
  random streams so that component randomness is reproducible and
  decoupled,
- :mod:`~repro.sim.tracing` -- lightweight trace hooks for metrics, and
- :mod:`~repro.sim.process` -- generator-based cooperative processes for
  writing sequential behaviours (used by workload drivers).
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event
from repro.sim.process import Process, Timeout
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceHub, TraceRecord

__all__ = [
    "Event",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceHub",
    "TraceRecord",
]
