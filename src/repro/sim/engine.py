"""The discrete-event simulator core.

The design mirrors ns-3's scheduler in miniature: a binary heap of
events ordered by virtual time, a ``now`` clock that only moves when an
event is dequeued, and helpers for scheduling relative (``schedule``)
or absolute (``schedule_at``) callbacks.
"""

from __future__ import annotations

import heapq
import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceHub

#: Compact the heap when more than this many cancelled entries linger
#: *and* they outnumber the live ones — lazy deletion stays O(1) per
#: cancel, but a timeout-heavy workload no longer drags a majority-dead
#: heap through every push/pop sift.
_COMPACT_MIN_DEAD = 64

#: Optional compiled drain loop (``SIM_KERNEL=c``).  Loaded once at
#: import; any failure (no compiler, no headers) falls back silently to
#: the Python loop, which is digest-identical by construction.
_C_KERNEL = None
if os.environ.get("SIM_KERNEL", "").strip().lower() == "c":
    try:
        from repro.sim._ckernel import load_kernel as _load_kernel

        _C_KERNEL = _load_kernel()
    except Exception:  # pragma: no cover - depends on host toolchain
        _C_KERNEL = None


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Simulator:  # simlint: disable=SL014 (SimSan patches schedule/schedule_at; C kernel reads __dict__)
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Master seed for the simulator's :class:`~repro.sim.rng.RngRegistry`.
        Every component derives its own named stream from this seed, so a
        single integer fully determines a run.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, 'b')
    >>> _ = sim.schedule(1.0, fired.append, 'a')
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, seed: int = 0) -> None:
        # Heap entries are (time, priority, seq, event) tuples so heapq
        # compares native tuples (C speed) instead of Event.__lt__.
        self._heap: list = []
        self._now: float = 0.0
        self._running = False
        self._stopped = False
        self._live = 0
        self.events_executed = 0
        self.rng = RngRegistry(seed)
        self.trace = TraceHub()
        #: Optional :class:`~repro.obs.profiler.SimProfiler`.  When set,
        #: ``run`` switches to an instrumented loop that wall-clocks every
        #: callback; the ``None`` default keeps the hot loop untouched.
        self.profiler = None
        #: Optional :class:`~repro.qa.simsan.SimSan`.  Same pattern as the
        #: profiler: when set, ``run`` uses a sanitized loop that checks
        #: clock monotonicity and hashes the event stream; ``None`` keeps
        #: the hot loop untouched.  Takes precedence over the profiler.
        self.sanitizer = None
        #: Optional :class:`~repro.obs.perf.PerfObservatory`.  When set,
        #: ``run``/``step`` switch to an observed loop that charges heap
        #: pops, dispatch, and per-handler time to named phases.  Unlike
        #: the profiler/sanitizer loops the observed loop *composes*: it
        #: honors an attached sanitizer or profiler internally (same
        #: sanitizer-over-profiler precedence).  ``None`` keeps every
        #: hot path untouched.
        self.perf: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self._now!r}"
            )
        event = Event(time, callback, args, priority)
        event.on_cancel = self._note_cancel
        perf = self.perf
        if perf is None:
            heappush(self._heap, (time, priority, event.seq, event))
        else:
            began = perf.clock()
            heappush(self._heap, (time, priority, event.seq, event))
            perf.account("engine.push", perf.clock() - began)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        event.cancel()

    def _note_cancel(self) -> None:
        self._live -= 1
        # Lazy-cancel compaction: once dead entries outnumber live ones
        # (and there are enough to matter), rebuild in place.  The slice
        # assignment keeps the list identity, so a run loop holding a
        # local reference to the heap keeps working; relative order of
        # live entries is restored by heapify (tuples are unique by
        # seq), so dispatch order — and therefore the SimSan digest —
        # is unchanged.
        heap = self._heap
        dead = len(heap) - self._live
        if dead > _COMPACT_MIN_DEAD and dead << 1 > len(heap):
            heap[:] = [entry for entry in heap if not entry[3].cancelled]
            heapify(heap)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Execute events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is then advanced to ``until`` so that a
            subsequent ``run`` resumes cleanly.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            if self.perf is not None:
                self._run_observed(until)
            elif self.sanitizer is not None:
                self._run_sanitized(until)
            elif self.profiler is not None:
                self._run_profiled(until)
            elif _C_KERNEL is not None:
                _C_KERNEL(self, until)
            else:
                self._drain(until)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def _drain(self, until: Optional[float]) -> None:
        """The plain (uninstrumented) dispatch loop — the hot path.

        Restructured for per-event cost: the heap entry tuple is read
        once (its ``[0]`` element *is* ``event.time``, so the event's
        attributes are not re-read), ``heappop`` is a preloaded global,
        and the no-deadline case drops the ``until`` comparison from
        the loop entirely.  Same-timestamp runs drain through the same
        tight body — ``heappop`` resolves time/priority/seq ties in C
        tuple comparison, so no re-heapify or tie-break work happens in
        Python.  Dispatch order, clock updates, and counter updates are
        exactly the seed loop's; the SimSan digest is bit-identical.
        """
        heap = self._heap
        pop = heappop
        if until is None:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    pop(heap)
                    continue
                pop(heap)
                self._live -= 1
                event.on_cancel = None
                self._now = entry[0]
                self.events_executed += 1
                event.callback(*event.args)
        else:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    pop(heap)
                    continue
                time = entry[0]
                if time > until:
                    break
                pop(heap)
                self._live -= 1
                event.on_cancel = None
                self._now = time
                self.events_executed += 1
                event.callback(*event.args)

    def _run_observed(self, until: Optional[float]) -> None:
        """The ``run`` loop with phase-attributed cost accounting.

        Unlike the profiler/sanitizer loops this one composes: when a
        sanitizer and/or profiler is also attached, their hooks fire
        exactly as in their dedicated loops (sanitizer precedence over
        the profiler unchanged), so the event digest and profile match
        an unobserved run.  The whole loop runs inside the
        ``engine.loop`` phase so that per-phase *self* times partition
        the loop's wall clock.
        """
        heap = self._heap
        perf = self.perf
        san = self.sanitizer
        profiler = self.profiler if san is None else None
        clock = perf.clock
        account = perf.account
        # Batched clock reads: two per dispatched event (one closing the
        # pop bookkeeping, one closing the dispatch), with the dispatch-
        # closing read carried over as the next iteration's pop-opening
        # read.  The seed loop read the clock four times per event; the
        # cost of the loop's own bookkeeping (note_event, the while
        # condition) now lands in ``engine.pop`` instead of
        # ``engine.loop`` self time — the partition invariant (self
        # times sum to the loop wall) is unchanged.
        stamp = clock()
        perf._push_at("engine.loop", stamp)
        try:
            while heap and not self._stopped:
                began = stamp
                event = heap[0][3]
                if event.cancelled:
                    heappop(heap)
                    stamp = clock()
                    account("engine.pop", stamp - began)
                    continue
                if until is not None and event.time > until:
                    account("engine.pop", clock() - began)
                    break
                if profiler is not None:
                    profiler.observe_heap(len(heap))
                heappop(heap)
                self._live -= 1
                event.on_cancel = None
                stamp = clock()
                account("engine.pop", stamp - began)
                if san is not None:
                    san.before_event(event, self._now)
                self._now = event.time
                self.events_executed += 1
                perf._push_at("engine.dispatch", stamp)
                event.callback(*event.args)
                stamp = clock()
                elapsed = perf._pop_at(stamp, handler=event.callback)
                if profiler is not None:
                    profiler.record(event.callback, elapsed)
                perf.note_event(self._now)
        finally:
            perf._pop()

    def _run_profiled(self, until: Optional[float]) -> None:
        """The ``run`` loop with per-callback wall-clock accounting.

        Kept as a separate loop so the unprofiled path pays nothing; the
        extra work per event is two clock reads and one dict update in
        the profiler.
        """
        heap = self._heap
        profiler = self.profiler
        clock = profiler.clock
        while heap and not self._stopped:
            event = heap[0][3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            profiler.observe_heap(len(heap))
            heapq.heappop(heap)
            self._live -= 1
            event.on_cancel = None
            self._now = event.time
            self.events_executed += 1
            began = clock()
            event.callback(*event.args)
            profiler.record(event.callback, clock() - began)

    def _run_sanitized(self, until: Optional[float]) -> None:
        """The ``run`` loop with SimSan invariant hooks.

        A separate loop (like ``_run_profiled``) so the unsanitized
        path pays nothing; the extra work per event is one method call
        into the sanitizer, which checks clock monotonicity and folds
        the event into the determinism hash.
        """
        heap = self._heap
        san = self.sanitizer
        while heap and not self._stopped:
            event = heap[0][3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            self._live -= 1
            event.on_cancel = None
            san.before_event(event, self._now)
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False when drained.

        Routes through the same sanitizer/profiler/perf hooks as
        ``run`` (in the same precedence order), so single-stepping a
        simulation produces the identical event digest, profile, and
        phase attribution a full ``run`` would.  (The one exception is
        the ``engine.loop`` envelope phase, which belongs to the run
        *loop* rather than to any single event and is therefore not
        entered per step.)
        """
        if self.perf is not None:
            return self._step_observed()
        heap = self._heap
        while heap:
            event = heap[0][3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            san = self.sanitizer
            profiler = self.profiler if san is None else None
            if profiler is not None:
                profiler.observe_heap(len(heap))
            heapq.heappop(heap)
            self._live -= 1
            event.on_cancel = None
            if san is not None:
                san.before_event(event, self._now)
            self._now = event.time
            self.events_executed += 1
            if profiler is not None:
                clock = profiler.clock
                began = clock()
                event.callback(*event.args)
                profiler.record(event.callback, clock() - began)
            else:
                event.callback(*event.args)
            return True
        return False

    def _step_observed(self) -> bool:
        """One :meth:`step` with the same phase accounting as
        :meth:`_run_observed` (minus the ``engine.loop`` envelope,
        which spans a whole run rather than one event)."""
        heap = self._heap
        perf = self.perf
        clock = perf.clock
        account = perf.account
        while heap:
            began = clock()
            event = heap[0][3]
            if event.cancelled:
                heappop(heap)
                account("engine.pop", clock() - began)
                continue
            san = self.sanitizer
            profiler = self.profiler if san is None else None
            if profiler is not None:
                profiler.observe_heap(len(heap))
            heappop(heap)
            self._live -= 1
            event.on_cancel = None
            stamp = clock()
            account("engine.pop", stamp - began)
            if san is not None:
                san.before_event(event, self._now)
            self._now = event.time
            self.events_executed += 1
            perf._push_at("engine.dispatch", stamp)
            event.callback(*event.args)
            elapsed = perf._pop_at(clock(), handler=event.callback)
            if profiler is not None:
                profiler.record(event.callback, elapsed)
            perf.note_event(self._now)
            return True
        return False

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when drained."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a live counter is maintained across schedule / cancel /
        execute, so samplers can poll this every tick without scanning
        the heap.
        """
        return self._live
