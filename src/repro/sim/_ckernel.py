"""Optional compiled event-drain loop (``SIM_KERNEL=c``).

The Python dispatch loop (:meth:`~repro.sim.engine.Simulator._drain`)
is already tight, but every iteration still pays interpreter overhead:
bytecode dispatch, frame bookkeeping, and boxed attribute traffic.  This
module compiles a C mirror of that exact loop on first use — same heap
entry layout ``(time, priority, seq, event)``, same lazy-cancel skip,
same ``_live`` / ``_now`` / ``events_executed`` bookkeeping per event —
so the event stream it produces is digest-identical to the Python loop
by construction (see ``tests/test_speed_equivalence.py``).

Design constraints:

- **No new dependencies.**  The kernel is a single C translation unit
  compiled with the host toolchain (``cc``/``gcc``) against the running
  interpreter's headers; there is no setuptools build step.
- **Silently optional.**  :func:`load_kernel` raises on any failure (no
  compiler, no headers, self-check mismatch) and the engine's guarded
  import falls back to the Python loop.
- **Exact heap semantics.**  The C heap-pop yields the same pop *order*
  as :func:`heapq.heappop` for any valid heap: entry keys are unique
  (``seq`` is a global counter), so the sorted order — and therefore
  the dispatch order and the SimSan digest — is uniquely determined
  regardless of the internal sift variant.  Callbacks that
  ``schedule_at`` push with Python's ``heappush`` into the same list;
  both sides maintain the same heap invariant, so they interleave
  freely.

The compiled object lands in ``build/ckernel/`` under the repo root
(override with ``SIM_KERNEL_BUILD_DIR``), keyed by source hash and
interpreter tag so edits or interpreter switches trigger a rebuild.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import subprocess
import sys
import sysconfig
from typing import Any, Callable

_C_SOURCE = r"""
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Attribute names, interned once at module init: the loop body would
 * otherwise rebuild a temporary unicode object for every
 * GetAttrString/SetAttrString call, several times per event. */
static PyObject *s_heap, *s_stopped, *s_live, *s_now, *s_executed;
static PyObject *s_cancelled, *s_on_cancel, *s_callback, *s_args;

/* Event attribute access, resolved once: Event uses __slots__, so its
 * attributes are member descriptors with fixed byte offsets into the
 * instance.  Cache the offsets from the first event's type and read
 * the slots as direct pointer loads; any other event type (or an
 * exotic descriptor layout) takes the generic PyObject_GetAttr path.
 */
static PyTypeObject *event_type = NULL;
static Py_ssize_t off_cancelled, off_on_cancel, off_callback, off_args;

static Py_ssize_t
member_offset(PyTypeObject *tp, PyObject *name)
{
    PyObject *descr = PyObject_GetAttr((PyObject *)tp, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t off = -1;
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
        if (def != NULL && def->type == T_OBJECT_EX)
            off = def->offset;
    }
    Py_DECREF(descr);
    return off;
}

static int
resolve_event_type(PyObject *event)
{
    PyTypeObject *tp = Py_TYPE(event);
    off_cancelled = member_offset(tp, s_cancelled);
    off_on_cancel = member_offset(tp, s_on_cancel);
    off_callback = member_offset(tp, s_callback);
    off_args = member_offset(tp, s_args);
    if (off_cancelled < 0 || off_on_cancel < 0 ||
        off_callback < 0 || off_args < 0)
        return 0;
    event_type = tp;  /* immortal enough: the Event class outlives runs */
    Py_INCREF((PyObject *)tp);
    return 1;
}

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Pop and return the smallest entry of a heapq-ordered list (new ref).
 * Classic sift-down: move the last element into the root slot, then
 * swap it downward with its smaller child until the heap invariant
 * holds.  heapq's C accelerator uses the sift-to-leaf variant; both
 * produce valid heaps, and with totally ordered unique keys the pop
 * order is identical. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (--n == 0)
        return last;  /* heap emptied: the last element was the min */
    PyObject *min = PyList_GET_ITEM(heap, 0);
    Py_INCREF(min);
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n) {
            int r = PyObject_RichCompareBool(
                PyList_GET_ITEM(heap, child + 1),
                PyList_GET_ITEM(heap, child), Py_LT);
            if (r < 0)
                goto fail;
            if (r)
                child += 1;
        }
        int r = PyObject_RichCompareBool(
            PyList_GET_ITEM(heap, child), last, Py_LT);
        if (r < 0)
            goto fail;
        if (!r)
            break;
        PyObject *c = PyList_GET_ITEM(heap, child);
        Py_INCREF(c);
        PyList_SetItem(heap, pos, c);  /* steals c, releases old slot */
        pos = child;
    }
    Py_INCREF(last);
    PyList_SetItem(heap, pos, last);
    Py_DECREF(last);
    return min;
fail:
    Py_INCREF(last);
    PyList_SetItem(heap, pos, last);
    Py_DECREF(last);
    Py_DECREF(min);
    return NULL;
}

/* drain(sim, until) -- the Simulator._drain loop, compiled.
 *
 * Per dispatched event, in this exact order (matching the Python
 * loop statement for statement):
 *   pop -> _live -= 1 -> on_cancel = None -> _now = entry[0]
 *   -> events_executed += 1 -> callback(*args)
 * Cancelled entries are popped and skipped without touching counters
 * (Simulator._note_cancel already adjusted _live at cancel time).
 *
 * The simulator's mutable fields (_stopped, _live, _now,
 * events_executed) are plain instance attributes with no shadowing
 * data descriptors, so the loop reads and writes them through the
 * instance __dict__ directly -- PyDict_GetItemWithError on an interned
 * key instead of the full attribute protocol.  _stopped and _live are
 * re-read every iteration because callbacks mutate them (stop(),
 * schedule_at, _note_cancel).  Event attributes live in __slots__ and
 * go through PyObject_GetAttr/SetAttr.
 */
static PyObject *
drain(PyObject *self, PyObject *args)
{
    PyObject *sim, *until;
    if (!PyArg_ParseTuple(args, "OO:drain", &sim, &until))
        return NULL;
    PyObject *ns = PyObject_GetAttrString(sim, "__dict__");
    if (ns == NULL)
        return NULL;
    if (!PyDict_Check(ns)) {
        Py_DECREF(ns);
        PyErr_SetString(PyExc_TypeError, "sim.__dict__ must be a dict");
        return NULL;
    }
    PyObject *heap = PyDict_GetItemWithError(ns, s_heap);  /* borrowed */
    if (heap == NULL || !PyList_Check(heap)) {
        Py_DECREF(ns);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "sim._heap must be a list");
        return NULL;
    }
    Py_INCREF(heap);
    int has_until = (until != Py_None);

    for (;;) {
        if (PyList_GET_SIZE(heap) == 0)
            break;
        PyObject *stopped = PyDict_GetItemWithError(ns, s_stopped);
        if (stopped == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError, "_stopped");
            goto fail;
        }
        int is_stopped = PyObject_IsTrue(stopped);
        if (is_stopped < 0)
            goto fail;
        if (is_stopped)
            break;

        PyObject *entry = PyList_GET_ITEM(heap, 0);  /* borrowed */
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 4) {
            PyErr_SetString(PyExc_TypeError,
                            "heap entries must be 4-tuples");
            goto fail;
        }
        PyObject *event = PyTuple_GET_ITEM(entry, 3);  /* borrowed */
        if (event_type == NULL && !resolve_event_type(event)) {
            PyErr_SetString(PyExc_TypeError,
                            "event type lacks __slots__ members");
            goto fail;
        }
        int fast = (Py_TYPE(event) == event_type);
        int is_cancelled;
        if (fast) {
            PyObject *c = SLOT(event, off_cancelled);
            if (c == Py_False)
                is_cancelled = 0;
            else if (c == Py_True)
                is_cancelled = 1;
            else
                fast = 0;  /* unset or exotic value: generic path */
        }
        if (!fast) {
            PyObject *cancelled = PyObject_GetAttr(event, s_cancelled);
            if (cancelled == NULL)
                goto fail;
            is_cancelled = PyObject_IsTrue(cancelled);
            Py_DECREF(cancelled);
            if (is_cancelled < 0)
                goto fail;
        }
        if (is_cancelled) {
            PyObject *dead = heap_pop(heap);
            if (dead == NULL)
                goto fail;
            Py_DECREF(dead);
            continue;
        }

        PyObject *time_obj = PyTuple_GET_ITEM(entry, 0);  /* borrowed */
        if (has_until) {
            int r = PyObject_RichCompareBool(time_obj, until, Py_GT);
            if (r < 0)
                goto fail;
            if (r)
                break;
        }

        /* Pop returns the same entry object heap[0] held; keep it (and
         * through it the event and time) alive for the dispatch. */
        PyObject *popped = heap_pop(heap);
        if (popped == NULL)
            goto fail;
        event = PyTuple_GET_ITEM(popped, 3);
        time_obj = PyTuple_GET_ITEM(popped, 0);

        PyObject *live = PyDict_GetItemWithError(ns, s_live);
        if (live == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError, "_live");
            Py_DECREF(popped);
            goto fail;
        }
        Py_ssize_t live_n = PyLong_AsSsize_t(live);
        PyObject *new_live;
        if ((live_n == -1 && PyErr_Occurred()) ||
            (new_live = PyLong_FromSsize_t(live_n - 1)) == NULL) {
            Py_DECREF(popped);
            goto fail;
        }
        if (PyDict_SetItem(ns, s_live, new_live) < 0) {
            Py_DECREF(new_live);
            Py_DECREF(popped);
            goto fail;
        }
        Py_DECREF(new_live);

        if (fast) {
            PyObject *old = SLOT(event, off_on_cancel);
            Py_INCREF(Py_None);
            SLOT(event, off_on_cancel) = Py_None;
            Py_XDECREF(old);
        }
        else if (PyObject_SetAttr(event, s_on_cancel, Py_None) < 0) {
            Py_DECREF(popped);
            goto fail;
        }
        if (PyDict_SetItem(ns, s_now, time_obj) < 0) {
            Py_DECREF(popped);
            goto fail;
        }

        PyObject *count = PyDict_GetItemWithError(ns, s_executed);
        if (count == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError, "events_executed");
            Py_DECREF(popped);
            goto fail;
        }
        Py_ssize_t count_n = PyLong_AsSsize_t(count);
        PyObject *new_count;
        if ((count_n == -1 && PyErr_Occurred()) ||
            (new_count = PyLong_FromSsize_t(count_n + 1)) == NULL) {
            Py_DECREF(popped);
            goto fail;
        }
        if (PyDict_SetItem(ns, s_executed, new_count) < 0) {
            Py_DECREF(new_count);
            Py_DECREF(popped);
            goto fail;
        }
        Py_DECREF(new_count);

        PyObject *callback, *cb_args;
        if (fast) {
            callback = SLOT(event, off_callback);
            cb_args = SLOT(event, off_args);
            if (callback == NULL || cb_args == NULL) {
                Py_DECREF(popped);
                PyErr_SetString(PyExc_AttributeError,
                                "event callback/args unset");
                goto fail;
            }
            Py_INCREF(callback);
            Py_INCREF(cb_args);
        } else {
            callback = PyObject_GetAttr(event, s_callback);
            if (callback == NULL) {
                Py_DECREF(popped);
                goto fail;
            }
            cb_args = PyObject_GetAttr(event, s_args);
            if (cb_args == NULL) {
                Py_DECREF(callback);
                Py_DECREF(popped);
                goto fail;
            }
        }
        if (!PyTuple_Check(cb_args)) {
            Py_DECREF(cb_args);
            Py_DECREF(callback);
            Py_DECREF(popped);
            PyErr_SetString(PyExc_TypeError, "event.args must be a tuple");
            goto fail;
        }
        /* Vectorcall straight off the args tuple's item array; the
         * tuple stays alive (and immutable) across the call. */
        PyObject *result = PyObject_Vectorcall(
            callback, ((PyTupleObject *)cb_args)->ob_item,
            (size_t)PyTuple_GET_SIZE(cb_args), NULL);
        Py_DECREF(cb_args);
        Py_DECREF(callback);
        Py_DECREF(popped);
        if (result == NULL)
            goto fail;
        Py_DECREF(result);
    }

    Py_DECREF(heap);
    Py_DECREF(ns);
    Py_RETURN_NONE;
fail:
    Py_DECREF(heap);
    Py_DECREF(ns);
    return NULL;
}

static PyMethodDef kernel_methods[] = {
    {"drain", drain, METH_VARARGS,
     "drain(sim, until) -- compiled Simulator._drain loop"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT, "_simkernel",
    "Compiled discrete-event drain loop.", -1, kernel_methods,
};

PyMODINIT_FUNC
PyInit__simkernel(void)
{
    s_heap = PyUnicode_InternFromString("_heap");
    s_stopped = PyUnicode_InternFromString("_stopped");
    s_live = PyUnicode_InternFromString("_live");
    s_now = PyUnicode_InternFromString("_now");
    s_executed = PyUnicode_InternFromString("events_executed");
    s_cancelled = PyUnicode_InternFromString("cancelled");
    s_on_cancel = PyUnicode_InternFromString("on_cancel");
    s_callback = PyUnicode_InternFromString("callback");
    s_args = PyUnicode_InternFromString("args");
    if (!s_heap || !s_stopped || !s_live || !s_now || !s_executed ||
        !s_cancelled || !s_on_cancel || !s_callback || !s_args)
        return NULL;
    return PyModule_Create(&kernel_module);
}
"""


def _build_dir() -> str:
    override = os.environ.get("SIM_KERNEL_BUILD_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "build", "ckernel")


def _compile(so_path: str) -> None:
    build = os.path.dirname(so_path)
    os.makedirs(build, exist_ok=True)
    c_path = so_path[: -len(".so")] + ".c"
    with open(c_path, "w", encoding="utf-8") as fh:
        fh.write(_C_SOURCE)
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_paths()["include"]
    tmp = so_path + ".tmp"
    cmd = [
        cc.split()[0], "-O2", "-shared", "-fPIC",
        f"-I{include}", c_path, "-o", tmp,
    ]
    subprocess.run(cmd, check=True, capture_output=True)
    os.replace(tmp, so_path)  # atomic: concurrent builders race safely


def _self_check(drain: Callable[[Any, Any], None]) -> None:
    """Run the kernel against a minimal fake simulator and verify the
    dispatch order, counters, and ``until`` cutoff match the Python
    loop's contract.  Any mismatch raises, which makes the engine's
    guarded import fall back to the Python loop."""
    from heapq import heappush

    from repro.sim.events import Event  # no import cycle: events != engine

    class FakeSim:  # simlint: disable=SL014 (kernel contract requires __dict__)
        pass

    sim = FakeSim()
    sim._heap = []
    sim._stopped = False
    sim._live = 0
    sim._now = 0.0
    sim.events_executed = 0

    fired = []

    def make(tag):
        return lambda: fired.append((sim._now, tag))

    order = [(2.0, "c"), (0.5, "a"), (1.0, "b"), (3.5, "d")]
    events = {}
    for time, tag in order:
        event = Event(time, make(tag), (), 0)
        heappush(sim._heap, (time, 0, event.seq, event))
        sim._live += 1
        events[tag] = event
    events["b"].cancel()  # no on_cancel hook on the fake: adjust by hand
    sim._live -= 1

    drain(sim, 3.0)
    if fired != [(0.5, "a"), (2.0, "c")]:
        raise RuntimeError(f"kernel self-check: bad until-run order {fired!r}")
    if sim.events_executed != 2 or sim._live != 1 or sim._now != 2.0:
        raise RuntimeError("kernel self-check: bad counters after until-run")
    drain(sim, None)
    if fired[-1] != (3.5, "d") or sim._live != 0 or sim.events_executed != 3:
        raise RuntimeError("kernel self-check: bad full drain")
    if sim._heap:
        raise RuntimeError("kernel self-check: heap not drained")


def load_kernel() -> Callable[[Any, Any], None]:
    """Compile (or reuse) the C drain loop and return its callable.

    Raises on any failure — missing compiler, missing headers, or a
    self-check mismatch — so callers can fall back to the Python loop.
    """
    tag = hashlib.blake2s(_C_SOURCE.encode("utf-8"), digest_size=8).hexdigest()
    cache_tag = sys.implementation.cache_tag or "python"
    so_path = os.path.join(_build_dir(), f"_simkernel.{cache_tag}.{tag}.so")
    if not os.path.exists(so_path):
        _compile(so_path)
    loader = importlib.machinery.ExtensionFileLoader("_simkernel", so_path)
    spec = importlib.util.spec_from_file_location(
        "_simkernel", so_path, loader=loader
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    _self_check(module.drain)
    return module.drain
