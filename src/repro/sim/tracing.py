"""Trace hooks: a minimal publish/subscribe bus for simulation metrics.

Components emit named trace records; metric collectors subscribe to the
names they care about.  This decouples protocol code from measurement
code, mirroring ns-3's trace-source design without its ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One emitted trace sample."""

    name: str
    time: float
    payload: Dict[str, Any] = field(default_factory=dict)


Subscriber = Callable[[TraceRecord], None]


class TraceHub:  # simlint: disable=SL014 (one per sim; instruments attach attributes)
    """Routes trace records to subscribers by exact name or wildcard.

    Subscribing to ``"*"`` receives every record; otherwise only records
    whose ``name`` matches exactly are delivered.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, List[Subscriber]] = {}
        self.enabled = True
        self._n_subs = 0
        #: Optional :class:`~repro.obs.perf.PerfObservatory`; when set,
        #: delivered emissions are charged to the ``trace.emit`` phase.
        #: The subscriber-less early-outs above stay unaccounted — they
        #: are the zero-telemetry fast path and cost one dict lookup.
        self.perf: Optional[Any] = None

    def subscribe(self, name: str, fn: Subscriber) -> None:
        self._subs.setdefault(name, []).append(fn)
        self._n_subs += 1

    def unsubscribe(self, name: str, fn: Subscriber) -> None:
        handlers = self._subs.get(name, [])
        if fn in handlers:
            handlers.remove(fn)
            self._n_subs -= 1

    @property
    def active(self) -> bool:
        """True when at least one subscriber exists (and the hub is on).

        Emitters with non-trivial payload construction check this single
        attribute first so that a run with no telemetry attached pays
        nothing beyond one attribute read.
        """
        return self.enabled and self._n_subs > 0

    def wants(self, name: str) -> bool:
        """Would a record named ``name`` reach any subscriber?

        Use this to guard emissions whose payload is expensive to build
        (span segments, per-hop detail); ``emit`` performs the same test
        internally, but only after the caller has built the payload.
        """
        if not self.enabled:
            return False
        return bool(self._subs.get(name) or self._subs.get("*"))

    def emit(self, name: str, time: float, **payload: Any) -> None:
        """Publish a record; cheap no-op when nothing is listening."""
        if not self.enabled:
            return
        exact = self._subs.get(name)
        star = self._subs.get("*")
        if not exact and not star:
            return
        perf = self.perf
        if perf is None:
            record = TraceRecord(name=name, time=time, payload=payload)
            if exact:
                for fn in list(exact):
                    fn(record)
            if star:
                for fn in list(star):
                    fn(record)
            return
        began = perf.clock()
        try:
            record = TraceRecord(name=name, time=time, payload=payload)
            if exact:
                for fn in list(exact):
                    fn(record)
            if star:
                for fn in list(star):
                    fn(record)
        finally:
            perf.account("trace.emit", perf.clock() - began)
