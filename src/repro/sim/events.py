"""Schedulable events for the discrete-event engine."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Tuple

_event_counter = itertools.count()


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, priority, sequence)``.  The sequence
    number breaks ties deterministically: two events scheduled for the
    same instant fire in scheduling order, which keeps simulations
    reproducible across runs.

    Events support cancellation: a cancelled event stays in the heap but
    is skipped when popped (lazy deletion), which is O(1) instead of the
    O(n) cost of removing from the middle of a heap.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "on_cancel")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_event_counter)
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Fired exactly once on the first ``cancel()`` of a still-pending
        #: event.  The scheduler uses it to keep its live-event count
        #: exact without scanning the heap; it is cleared when the event
        #: is popped for execution, so a late ``cancel()`` is a no-op for
        #: the count.
        self.on_cancel: Any = None

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} {name}{state}>"


def make_event(
    time: float,
    callback: Callable[..., Any],
    args: Tuple[Any, ...] = (),
    priority: int = 0,
) -> Event:
    """Convenience constructor mirroring :class:`Event`."""
    return Event(time, callback, args, priority)
