"""Named, independently seeded random streams.

A single master seed determines every stream, but each component pulls
from its own ``random.Random`` instance.  This means that, for example,
adding one extra Bloom-filter lookup in a router does not perturb the
request arrival pattern of every client — a classic reproducibility
pitfall in simulators that share one global RNG.
"""

from __future__ import annotations

import hashlib
# This module is the single sanctioned home of the stdlib RNG: every
# other sim-affecting module threads one of the streams constructed
# here (enforced by simlint rule SL002; see docs/STATIC_ANALYSIS.md).
import random  # simlint: disable=SL002
from typing import Dict

#: The stream type threaded through simulation code.  An alias rather
#: than a wrapper class: streams must stay bit-identical to
#: ``random.Random`` so that rerouting a module through this alias
#: cannot perturb published figure values.
Stream = random.Random


def seeded_stream(seed: int) -> Stream:
    """An explicitly-seeded stream.

    Produces exactly the sequence of ``random.Random(seed)`` — callers
    that previously constructed stdlib instances directly can switch to
    this helper without changing a single draw.

    >>> seeded_stream(7).random() == random.Random(7).random()
    True
    """
    return random.Random(seed)


def entropy_stream() -> Stream:
    """An OS-entropy-seeded stream for *non-simulation* contexts.

    Key generation in ad-hoc tooling is the intended user.  Never call
    this from a simulation code path: runs that draw from it are not a
    function of the master seed and cannot be reproduced.
    """
    return random.Random()


def derive_seed(master: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named random streams.

    >>> reg = RngRegistry(42)
    >>> a1 = reg.stream('clients').random()
    >>> reg2 = RngRegistry(42)
    >>> a2 = reg2.stream('clients').random()
    >>> a1 == a2
    True
    """

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the registry to a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()
