"""Named, independently seeded random streams.

A single master seed determines every stream, but each component pulls
from its own ``random.Random`` instance.  This means that, for example,
adding one extra Bloom-filter lookup in a router does not perturb the
request arrival pattern of every client — a classic reproducibility
pitfall in simulators that share one global RNG.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named random streams.

    >>> reg = RngRegistry(42)
    >>> a1 = reg.stream('clients').random()
    >>> reg2 = RngRegistry(42)
    >>> a2 = reg2.stream('clients').random()
    >>> a1 == a2
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the registry to a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()
