"""Generator-based cooperative processes.

Workload drivers (clients, attackers) are easier to express as
sequential coroutines than as event-callback state machines.  A process
is a generator that yields :class:`Timeout` objects; the engine resumes
it when the timeout elapses.

>>> from repro.sim import Simulator, Process, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     log.append(('start', sim.now))
...     yield Timeout(1.5)
...     log.append(('resumed', sim.now))
>>> _ = Process(sim, worker())
>>> sim.run()
>>> log
[('start', 0.0), ('resumed', 1.5)]
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Simulator


class Timeout:
    """Yielded by a process to sleep for ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay!r}")
        self.delay = delay


class Process:  # simlint: disable=SL014 (generator driver; kept open for subclass state)
    """Drives a generator against the simulator clock.

    The generator starts immediately (at scheduling time ``start_delay``
    from now, default 0) and is resumed every time a yielded
    :class:`Timeout` expires.  Returning (or raising ``StopIteration``)
    ends the process; :meth:`interrupt` ends it early.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Timeout, Any, Any],
        start_delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.alive = True
        self._pending_event = sim.schedule(start_delay, self._resume)

    def _resume(self) -> None:
        if not self.alive:
            return
        self._pending_event = None
        try:
            yielded = next(self.generator)
        except StopIteration:
            self.alive = False
            return
        if not isinstance(yielded, Timeout):
            self.alive = False
            raise TypeError(
                f"process yielded {yielded!r}; only Timeout is supported"
            )
        self._pending_event = self.sim.schedule(yielded.delay, self._resume)

    def interrupt(self) -> None:
        """Stop the process; any pending wakeup is cancelled."""
        self.alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.generator.close()
